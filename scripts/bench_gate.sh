#!/usr/bin/env bash
# Bench regression gate: run the fixed bench_gate suite, record this PR's
# medians to BENCH_PR10.json (committed at the repo root), and fail if any
# bench's median regressed more than the threshold against the prior PR's
# BENCH_*.json. The gate is two-sided: medians that beat the baseline past
# the same margin are printed as wins and recorded in the output JSON's
# `improvements` array. With no prior baseline the gate warns, records,
# and passes.
#
#   scripts/bench_gate.sh [OUT_JSON]            (default: BENCH_PR10.json)
#   BENCH_GATE_THRESHOLD=1.15                   (ratio; 1.15 = +15%)
#
# Baselines resolve from exactly ONE canonical location: BENCH_PR*.json at
# the repo root. A BENCH_PR*.json under results/ is an error, not a
# fallback — results/ holds regenerable artifacts, and a stray copy there
# once made the gate silently compare against the wrong file.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-1.15}"

# Ambiguity check: committed baselines live at the repo root, full stop.
strays=$(ls results/BENCH_PR*.json 2>/dev/null || true)
if [ -n "$strays" ]; then
  echo "bench_gate: ERROR: BENCH_PR*.json found under results/:" >&2
  echo "$strays" | sed 's/^/bench_gate:   /' >&2
  echo "bench_gate: baselines are committed at the repo root only;" \
       "move or delete the copies under results/ and re-run." >&2
  exit 2
fi

# Newest prior baseline = the BENCH_PR<N>.json with the highest PR number,
# excluding our own output file. Sorting by the numeric N (not mtime, not
# `sort -V` over the whole name) keeps the selection stable across
# checkouts that scramble timestamps and across N crossing a digit
# boundary (BENCH_PR9 → BENCH_PR10).
BASELINE=""
best=-1
for f in BENCH_PR*.json; do
  [ -f "$f" ] || continue
  [ "$f" = "$(basename "$OUT")" ] && continue
  n="${f#BENCH_PR}"
  n="${n%.json}"
  case "$n" in (''|*[!0-9]*) continue;; esac
  if [ "$n" -gt "$best" ]; then
    best="$n"
    BASELINE="$f"
  fi
done

cargo build --release --offline -q -p bench --bin bench_gate

if [ -n "$BASELINE" ]; then
  echo "bench_gate: gating against baseline $BASELINE (threshold ${THRESHOLD}x)"
  ./target/release/bench_gate --out "$OUT" --baseline "$BASELINE" --threshold "$THRESHOLD"
else
  echo "bench_gate: warning: no prior BENCH_PR*.json baseline; skipping gate, recording $OUT only" >&2
  ./target/release/bench_gate --out "$OUT"
fi

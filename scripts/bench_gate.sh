#!/usr/bin/env bash
# Bench regression gate: run the fixed bench_gate suite, record this PR's
# medians to BENCH_PR5.json (committed at the repo root), and fail if any
# bench's median regressed more than the threshold against the newest prior
# BENCH_*.json. With no prior baseline the gate warns, records, and passes.
#
#   scripts/bench_gate.sh [OUT_JSON]            (default: BENCH_PR5.json)
#   BENCH_GATE_THRESHOLD=1.15                   (ratio; 1.15 = +15%)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR5.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-1.15}"

# Newest prior baseline: version-sorted BENCH_*.json, excluding our own
# output file.
BASELINE="$(ls BENCH_*.json 2>/dev/null | grep -vx "$(basename "$OUT")" | sort -V | tail -1 || true)"

cargo build --release --offline -q -p bench --bin bench_gate

# A listed-but-vanished baseline (racing checkout, manual delete) is the
# same as no baseline: warn and record only. The binary double-checks this
# (missing file ⇒ warn + exit 0), so neither layer can panic a fresh repo.
if [ -n "$BASELINE" ] && [ ! -f "$BASELINE" ]; then
  echo "bench_gate: warning: baseline $BASELINE vanished; treating as no baseline" >&2
  BASELINE=""
fi

if [ -n "$BASELINE" ]; then
  echo "bench_gate: gating against baseline $BASELINE (threshold ${THRESHOLD}x)"
  ./target/release/bench_gate --out "$OUT" --baseline "$BASELINE" --threshold "$THRESHOLD"
else
  echo "bench_gate: warning: no prior BENCH_*.json baseline; skipping gate, recording $OUT only" >&2
  ./target/release/bench_gate --out "$OUT"
fi

#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablations.
# Output: printed tables + results/<name>.json for each experiment.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  tab01_workloads fig01_serving_load fig02_accuracy_curves fig03_per_class
  fig04_gamma fig09_loss_consistency fig10_packing fig11_ctx_switch
  fig12_determinism_overhead fig13_grad_copy exp_data_sharing exp_plan_model
  fig14_trace_jct fig15_alloc_timeline fig16_colocation
  abl_bucket_cap abl_overlap abl_est_balance
)

cargo build --release --offline -p bench
for b in "${BINS[@]}"; do
  echo
  echo "################ $b ################"
  cargo run --release --offline -q -p bench --bin "$b"
done
echo
echo "All experiments regenerated. JSON in results/."

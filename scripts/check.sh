#!/usr/bin/env bash
# Repo gate: thin wrapper over the quick stages of the CI pipeline
# (fmt → clippy → detlint [all 4 analyses, cached] → per-mode gates →
# build → test). Full
# pipeline, including the faultsim chaos matrix and the bench regression
# gate: scripts/ci.sh.
set -euo pipefail
exec "$(dirname "$0")/ci.sh" --quick

#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Everything runs offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> detlint (determinism contract, see docs/DETLINT.md)"
cargo run --offline -q -p detlint

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "OK: fmt, clippy, detlint, and tier-1 all green"

#!/usr/bin/env bash
# Staged CI pipeline (see docs/CI.md). Runs entirely offline.
#
#   scripts/ci.sh           full pipeline: fmt → clippy → detlint (one
#                           combined `--all` run: leaf + taint + concurrency
#                           + accum, SARIF + per-mode reports under
#                           results/) → per-mode gates → detlint_warm
#                           (cache-hit re-run; cold vs warm timing lands in
#                           ci_report.json) → build → test → kernels →
#                           faultsim chaos matrix → silent-fault detection
#                           matrix → bench gate (records + gates the full
#                           suite, per-kernel benches included)
#   scripts/ci.sh --quick   quick stages only (what scripts/check.sh runs):
#                           fmt → clippy → detlint (combined run, warm: the
#                           analysis cache under results/detlint_cache
#                           persists across quick runs) → per-mode gates →
#                           build → test → kernels (builds every
#                           crates/bench/src/bin/* and smoke-runs the
#                           per-kernel benches; no gating) → thread_faults
#                           (hand-authored supervised-pool schedules only)
#
# Per-stage wall-clock timings are written to results/ci_report.json whether
# the pipeline passes or fails; the script exits non-zero on the first
# failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "--quick" ]; then
  MODE=quick
elif [ -n "${1:-}" ]; then
  echo "usage: scripts/ci.sh [--quick]" >&2
  exit 2
fi

REPORT=results/ci_report.json
mkdir -p results
STAGES=""
STATUS=ok

write_report() {
  printf '{"pipeline":"easyscale-ci","mode":"%s","stages":[%s],"status":"%s"}\n' \
    "$MODE" "${STAGES%,}" "$STATUS" >"$REPORT"
}

stage() {
  local name="$1"
  shift
  echo
  echo "==> $name"
  local t0 t1 secs rc=0
  t0=$(date +%s%N)
  "$@" || rc=$?
  t1=$(date +%s%N)
  secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  if [ "$rc" -eq 0 ]; then
    STAGES+="$(printf '{"stage":"%s","status":"ok","seconds":%s}' "$name" "$secs"),"
  else
    STAGES+="$(printf '{"stage":"%s","status":"fail","seconds":%s}' "$name" "$secs"),"
    STATUS=fail
    write_report
    echo
    echo "CI: stage '$name' failed (rc=$rc); report in $REPORT" >&2
    exit "$rc"
  fi
}

stage fmt        cargo fmt --all --check
stage clippy     cargo clippy --workspace --all-targets --offline -- -D warnings

# One combined detlint run replaces the former detlint / taint / concurrency
# stages: `--all` shares one lex + one call graph across the leaf rules, the
# interprocedural taint flows, the static concurrency checks, and the
# float-accumulation dataflow pass (docs/DETLINT.md). It writes the same
# per-mode reports the three stages used to (results/{detlint,taint,concur,
# accum}_report.json), plus the SARIF 2.1.0 interchange document and the
# per-mode status breakdown the gate stages below read. The content-hashed
# analysis cache under results/detlint_cache makes repeat runs near-free;
# full mode clears it first so the `detlint` stage times a cold run and
# `detlint_warm` times the cache hit.
detlint_all() {
  local rc=0
  cargo run --offline -q -p detlint -- --all --quiet \
    --out-dir results --sarif results/detlint.sarif \
    --cache-dir results/detlint_cache || rc=$?
  # rc=1 means findings somewhere: let the per-mode gate stages report
  # *which* analysis is dirty. Anything else is a real failure.
  [ "$rc" -le 1 ] && [ -f results/detlint_modes.json ]
}

# Per-mode gate: fails iff results/detlint_modes.json marks the mode dirty,
# so ci_report.json keeps the per-analysis granularity the separate stages
# used to provide — without re-running anything.
mode_gate() {
  local mode="$1"
  awk -v m="$mode" '
    index($0, "\"mode\": \"" m "\"") { inmode = 1; next }
    inmode && /"status"/ { found = 1; exit ($0 ~ /"clean"/) ? 0 : 1 }
    END { if (!found) exit 2 }
  ' results/detlint_modes.json && return 0
  echo "detlint: '$mode' analysis is dirty — see results/detlint.sarif and" \
    "the per-mode reports under results/" >&2
  return 1
}

if [ "$MODE" = full ]; then
  rm -rf results/detlint_cache
fi
stage detlint     detlint_all
stage leaf_rules  mode_gate leaf
stage taint       mode_gate taint
stage concurrency mode_gate concur
stage accum       mode_gate accum
if [ "$MODE" = full ]; then
  stage detlint_warm detlint_all
fi
stage build      cargo build --release --offline
stage test       cargo test -q --offline --workspace --exclude faultsim
# The kernels stage keeps bench code honest between full runs: build every
# bench binary (cargo's default `build` skips src/bin/* of non-default
# targets only when filtered, so --bins is explicit), then smoke-run the
# per-kernel microbench family (reduce_block × algo_id × length grid plus
# dot/axpy/raw-ring) with minimal iterations — a compile+run check, no
# timings recorded, no gate. The full pipeline's bench_gate stage records
# and gates the same benches at full sample counts.
kernels_smoke() {
  cargo build --release --offline -q -p bench --bins
  ./target/release/bench_gate --smoke --only kernel_
}
stage kernels    kernels_smoke

if [ "$MODE" = quick ]; then
  # Thread-fault smoke: the hand-authored schedules of the supervised-pool
  # matrix (panic / stall / reply-drop, narrow and wide pools, composed
  # with a process crash) must stay bitwise-invisible. The full pipeline's
  # chaos stage runs the same suite plus the seeded matrix.
  stage thread_faults cargo test -q --offline -p faultsim --test thread_faults hand_
fi

if [ "$MODE" = full ]; then
  # The chaos matrix: every fault schedule must converge byte-identically
  # (crates/faultsim/tests/chaos_matrix.rs).
  stage chaos      cargo test -q --offline -p faultsim
  # The silent-fault detection matrix: faults nobody announces must be
  # detected by the AIMaster supervisor within their SimClock latency
  # bounds, still byte-identically (crates/faultsim/src/detect.rs). Fails
  # on any missed bound or byte divergence; report in
  # results/detect_report.json.
  stage detect     cargo run --release --offline -q -p faultsim -- \
                     --detect-matrix --out results/detect_report.json
  # Two-sided bench gate: fails on medians >15% over the prior PR's
  # BENCH_PR*.json, prints a wins/regressions table, and records wins in
  # the new report's `improvements` array (scripts/bench_gate.sh).
  stage bench_gate scripts/bench_gate.sh
fi

write_report
echo
echo "CI ($MODE): all stages green; report in $REPORT"

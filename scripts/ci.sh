#!/usr/bin/env bash
# Staged CI pipeline (see docs/CI.md). Runs entirely offline.
#
#   scripts/ci.sh           full pipeline: fmt → clippy → detlint → taint →
#                           concurrency → build → test → kernels →
#                           faultsim chaos matrix → silent-fault detection
#                           matrix → bench gate (records + gates the full
#                           suite, per-kernel benches included)
#   scripts/ci.sh --quick   quick stages only (what scripts/check.sh runs):
#                           fmt → clippy → detlint → taint → concurrency →
#                           build → test → kernels (builds every
#                           crates/bench/src/bin/* and smoke-runs the
#                           per-kernel benches; no gating) → thread_faults
#                           (hand-authored supervised-pool schedules only)
#
# Per-stage wall-clock timings are written to results/ci_report.json whether
# the pipeline passes or fails; the script exits non-zero on the first
# failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "--quick" ]; then
  MODE=quick
elif [ -n "${1:-}" ]; then
  echo "usage: scripts/ci.sh [--quick]" >&2
  exit 2
fi

REPORT=results/ci_report.json
mkdir -p results
STAGES=""
STATUS=ok

write_report() {
  printf '{"pipeline":"easyscale-ci","mode":"%s","stages":[%s],"status":"%s"}\n' \
    "$MODE" "${STAGES%,}" "$STATUS" >"$REPORT"
}

stage() {
  local name="$1"
  shift
  echo
  echo "==> $name"
  local t0 t1 secs rc=0
  t0=$(date +%s%N)
  "$@" || rc=$?
  t1=$(date +%s%N)
  secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  if [ "$rc" -eq 0 ]; then
    STAGES+="$(printf '{"stage":"%s","status":"ok","seconds":%s}' "$name" "$secs"),"
  else
    STAGES+="$(printf '{"stage":"%s","status":"fail","seconds":%s}' "$name" "$secs"),"
    STATUS=fail
    write_report
    echo
    echo "CI: stage '$name' failed (rc=$rc); report in $REPORT" >&2
    exit "$rc"
  fi
}

stage fmt        cargo fmt --all --check
stage clippy     cargo clippy --workspace --all-targets --offline -- -D warnings
stage detlint    cargo run --offline -q -p detlint -- --quiet --out results/detlint_report.json
# Interprocedural source→sink flow analysis over the workspace call graph:
# fails on any non-determinism source reaching a param-update / allreduce /
# checkpoint / sched-proposal sink outside a declared barrier, and on stale
# taint suppressions (docs/DETLINT.md).
stage taint      cargo run --offline -q -p detlint -- --taint --quiet \
                   --out results/taint_report.json
# Static concurrency analysis over the same call graph: channel-lifecycle
# checks (unsealed drains, send-after-seal, raw channels outside the
# audited modules), role-level blocking-cycle detection between the engine
# and the worker pool, interprocedural lock-order inversion, and
# barrier-conformance verification of every declared taint barrier
# (docs/DETLINT.md, "Concurrency mode").
stage concurrency cargo run --offline -q -p detlint -- --concurrency --quiet \
                   --out results/concur_report.json
stage build      cargo build --release --offline
stage test       cargo test -q --offline --workspace --exclude faultsim
# The kernels stage keeps bench code honest between full runs: build every
# bench binary (cargo's default `build` skips src/bin/* of non-default
# targets only when filtered, so --bins is explicit), then smoke-run the
# per-kernel microbench family (reduce_block × algo_id × length grid plus
# dot/axpy/raw-ring) with minimal iterations — a compile+run check, no
# timings recorded, no gate. The full pipeline's bench_gate stage records
# and gates the same benches at full sample counts.
kernels_smoke() {
  cargo build --release --offline -q -p bench --bins
  ./target/release/bench_gate --smoke --only kernel_
}
stage kernels    kernels_smoke

if [ "$MODE" = quick ]; then
  # Thread-fault smoke: the hand-authored schedules of the supervised-pool
  # matrix (panic / stall / reply-drop, narrow and wide pools, composed
  # with a process crash) must stay bitwise-invisible. The full pipeline's
  # chaos stage runs the same suite plus the seeded matrix.
  stage thread_faults cargo test -q --offline -p faultsim --test thread_faults hand_
fi

if [ "$MODE" = full ]; then
  # The chaos matrix: every fault schedule must converge byte-identically
  # (crates/faultsim/tests/chaos_matrix.rs).
  stage chaos      cargo test -q --offline -p faultsim
  # The silent-fault detection matrix: faults nobody announces must be
  # detected by the AIMaster supervisor within their SimClock latency
  # bounds, still byte-identically (crates/faultsim/src/detect.rs). Fails
  # on any missed bound or byte divergence; report in
  # results/detect_report.json.
  stage detect     cargo run --release --offline -q -p faultsim -- \
                     --detect-matrix --out results/detect_report.json
  # Two-sided bench gate: fails on medians >15% over the prior PR's
  # BENCH_PR*.json, prints a wins/regressions table, and records wins in
  # the new report's `improvements` array (scripts/bench_gate.sh).
  stage bench_gate scripts/bench_gate.sh
fi

write_report
echo
echo "CI ($MODE): all stages green; report in $REPORT"

//! A generic gradient/result exchange with a **canonical drain order**.
//!
//! Persistent worker threads (see `core::pool`) publish their per-step
//! results concurrently; the engine must consume them in an order that does
//! not depend on thread completion timing, or D1 (thread-order
//! nondeterminism) leaks straight into the merged gradient. The
//! [`Exchange`] is the channel-shaped sibling of
//! [`HeartbeatBus::drain_sorted`](crate::HeartbeatBus::drain_sorted): any
//! number of [`ExchangeTx`] handles publish `(key, payload)` pairs in
//! arbitrary order, and [`Exchange::drain_sorted`] — a declared detlint
//! taint barrier — blocks for an exact message count, then sorts by key, so
//! two runs that published the same *set* of messages drain identically.
//!
//! The channel itself is `std::sync::mpsc`; its arrival order is exactly
//! the thread-order entropy the barrier exists to absorb, which is why the
//! raw receiver never escapes this module.

// The one audited channel import — arrival order never escapes; every
// consumer goes through `drain_sorted` below.
// detlint::allow(no-thread-order): canonical-drain exchange, see module doc
pub use std::sync::mpsc::{channel, Receiver, Sender};

/// A cloneable publish handle onto an [`Exchange`].
#[derive(Debug)]
pub struct ExchangeTx<T> {
    tx: Sender<(u64, T)>,
}

// Manual impl: `#[derive(Clone)]` would require `T: Clone`, which publish
// handles do not need (the Sender clones regardless).
impl<T> Clone for ExchangeTx<T> {
    fn clone(&self) -> Self {
        ExchangeTx { tx: self.tx.clone() }
    }
}

impl<T> ExchangeTx<T> {
    /// Publish one payload under `key`. Publication order carries no
    /// meaning; the key decides where the payload lands in the drain.
    /// Panics if the exchange was dropped (the publisher outlived the
    /// consumer — a protocol bug, not a recoverable condition).
    pub fn publish(&self, key: u64, payload: T) {
        self.tx.send((key, payload)).expect("exchange dropped while a publisher is live");
    }
}

/// The consuming side: create, hand out [`ExchangeTx`] handles, [`seal`]
/// once every publisher exists, then drain per round.
///
/// [`seal`]: Exchange::seal
#[derive(Debug)]
pub struct Exchange<T> {
    /// The master sender; present until [`Exchange::seal`]. Kept so handles
    /// can be minted at any time before sealing, dropped at seal time so a
    /// dead publisher surfaces as a disconnect instead of a silent hang.
    tx: Option<Sender<(u64, T)>>,
    rx: Receiver<(u64, T)>,
}

impl<T> Default for Exchange<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Exchange<T> {
    /// An empty, unsealed exchange.
    // This is the audited fence around the raw channel the workspace-wide
    // clippy ban points everyone at.
    #[allow(clippy::disallowed_methods)]
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Exchange { tx: Some(tx), rx }
    }

    /// Mint a publish handle. Panics after [`Exchange::seal`].
    pub fn handle(&self) -> ExchangeTx<T> {
        ExchangeTx { tx: self.tx.as_ref().expect("exchange already sealed").clone() }
    }

    /// Drop the master sender: from now on, only the minted handles keep
    /// the channel alive, so `drain_sorted` panics (instead of deadlocking)
    /// when a publisher thread dies.
    pub fn seal(&mut self) {
        self.tx = None;
    }

    /// Receive exactly `expect` messages, then return them sorted by key —
    /// the canonical order. Thread completion order is invisible past this
    /// point, which is what lets the merge path consume concurrent workers
    /// without ever observing their scheduling. Declared as a detlint taint
    /// barrier (`TaintConfig::workspace_default`, docs/DETLINT.md).
    pub fn drain_sorted(&self, expect: usize) -> Vec<(u64, T)> {
        let mut out = Vec::with_capacity(expect);
        for _ in 0..expect {
            // This is the barrier itself — arrival order is erased by the
            // sort below before anything reads it.
            // detlint::allow(no-thread-order): sorted before consumption
            out.push(self.rx.recv().expect("exchange publisher disconnected (worker died)"));
        }
        out.sort_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_order_is_independent_of_publish_order() {
        let publish_orders: [[u64; 4]; 3] = [[0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]];
        let mut drains = Vec::new();
        for order in publish_orders {
            let ex: Exchange<String> = Exchange::new();
            let tx = ex.handle();
            for k in order {
                tx.publish(k, format!("payload-{k}"));
            }
            drains.push(ex.drain_sorted(4));
        }
        for d in &drains[1..] {
            assert_eq!(d, &drains[0]);
        }
        assert_eq!(drains[0][0], (0, "payload-0".to_string()));
        assert_eq!(drains[0][3], (3, "payload-3".to_string()));
    }

    #[test]
    // Raw spawns are exactly what this test needs: threads with no
    // ordering guarantee, to prove the drain erases their schedule.
    #[allow(clippy::disallowed_methods)]
    fn concurrent_publishers_drain_canonically() {
        let mut ex: Exchange<u64> = Exchange::new();
        let handles: Vec<_> = (0..8u64)
            .map(|k| {
                let tx = ex.handle();
                std::thread::spawn(move || tx.publish(k, k * 10))
            })
            .collect();
        ex.seal();
        for h in handles {
            h.join().unwrap();
        }
        let drained = ex.drain_sorted(8);
        assert_eq!(drained, (0..8u64).map(|k| (k, k * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn drain_only_takes_the_expected_count() {
        let ex: Exchange<u8> = Exchange::new();
        let tx = ex.handle();
        for k in 0..6u64 {
            tx.publish(k, k as u8);
        }
        assert_eq!(ex.drain_sorted(3).len(), 3, "first round");
        assert_eq!(ex.drain_sorted(3).len(), 3, "second round drains the rest");
    }

    #[test]
    #[should_panic(expected = "already sealed")]
    fn sealed_exchange_mints_no_handles() {
        let mut ex: Exchange<u8> = Exchange::new();
        let _tx = ex.handle();
        ex.seal();
        let _ = ex.handle();
    }

    #[test]
    #[should_panic(expected = "publisher disconnected")]
    fn dead_publisher_panics_the_drain() {
        let mut ex: Exchange<u8> = Exchange::new();
        let tx = ex.handle();
        ex.seal();
        drop(tx); // the only publisher dies without publishing
        let _ = ex.drain_sorted(1);
    }
}

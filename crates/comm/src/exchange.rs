//! A generic gradient/result exchange with a **canonical drain order**.
//!
//! Persistent worker threads (see `core::pool`) publish their per-step
//! results concurrently; the engine must consume them in an order that does
//! not depend on thread completion timing, or D1 (thread-order
//! nondeterminism) leaks straight into the merged gradient. The
//! [`Exchange`] is the channel-shaped sibling of
//! [`HeartbeatBus::drain_sorted`](crate::HeartbeatBus::drain_sorted): any
//! number of [`ExchangeTx`] handles publish `(key, payload)` pairs in
//! arbitrary order, and the drains — declared detlint taint barriers —
//! block for an exact message count, then sort by key, so two runs that
//! published the same *set* of messages drain identically.
//!
//! Two drain variants share that contract:
//!
//! - [`Exchange::drain_sorted`] blocks indefinitely — the original
//!   fault-oblivious drain, still the right call when the publishers are on
//!   the calling thread (tests, inline backends).
//! - [`Exchange::drain_deadline`] blocks for at most the backoff budget of
//!   a [`RetryPolicy`](crate::RetryPolicy) and returns a typed
//!   [`DrainError`] naming the keys that *did* arrive — the supervised
//!   pool's fault boundary. Messages received by a failed drain are
//!   buffered and handed to the next drain call, so a recovery retry never
//!   loses a survivor's result.
//!
//! The channel itself is `std::sync::mpsc`; its arrival order is exactly
//! the thread-order entropy the barrier exists to absorb, which is why the
//! raw receiver never escapes this module. The master sender survives
//! [`Exchange::seal`] (sealing is a protocol marker, not a channel close)
//! so a supervisor can mint [`Exchange::replacement_handle`]s for respawned
//! workers; dead publishers therefore surface as drain *deadline* errors,
//! not disconnects.

// The one audited channel import — arrival order never escapes; every
// consumer goes through the drains below.
// detlint::allow(no-thread-order): canonical-drain exchange, see module doc
pub use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};

use crate::retry::RetryPolicy;
use std::time::Duration;

/// Why a deadline drain came up short. Both variants carry the keys that
/// *did* arrive (sorted), so the caller can identify the silent publisher
/// by elimination. The undelivered messages stay buffered in the exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainError {
    /// The backoff budget elapsed with messages still missing. The
    /// publisher may be dead or merely past its deadline — the caller owns
    /// that distinction (it can see the threads; this module cannot).
    Timeout {
        /// Keys received (and buffered) before the budget ran out, sorted.
        received: Vec<u64>,
    },
    /// Every sender disconnected with messages still missing. Only
    /// reachable when the exchange's master sender was dropped — a
    /// construction this module's supervisor users never make.
    Disconnected {
        /// Keys received (and buffered) before the disconnect, sorted.
        received: Vec<u64>,
    },
}

impl DrainError {
    /// The keys that did arrive before the drain failed, sorted.
    pub fn received(&self) -> &[u64] {
        match self {
            DrainError::Timeout { received } | DrainError::Disconnected { received } => received,
        }
    }
}

impl std::fmt::Display for DrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrainError::Timeout { received } => {
                write!(f, "drain deadline elapsed; received keys {received:?}")
            }
            DrainError::Disconnected { received } => {
                write!(f, "all publishers disconnected; received keys {received:?}")
            }
        }
    }
}

impl std::error::Error for DrainError {}

/// A cloneable publish handle onto an [`Exchange`].
#[derive(Debug)]
pub struct ExchangeTx<T> {
    tx: Sender<(u64, T)>,
}

// Manual impl: `#[derive(Clone)]` would require `T: Clone`, which publish
// handles do not need (the Sender clones regardless).
impl<T> Clone for ExchangeTx<T> {
    fn clone(&self) -> Self {
        ExchangeTx { tx: self.tx.clone() }
    }
}

impl<T> ExchangeTx<T> {
    /// Publish one payload under `key`. Publication order carries no
    /// meaning; the key decides where the payload lands in the drain.
    /// Panics if the exchange was dropped (the publisher outlived the
    /// consumer — a protocol bug, not a recoverable condition).
    pub fn publish(&self, key: u64, payload: T) {
        self.tx.send((key, payload)).expect("exchange dropped while a publisher is live");
    }
}

/// The consuming side: create, hand out [`ExchangeTx`] handles, [`seal`]
/// once every publisher exists, then drain per round.
///
/// [`seal`]: Exchange::seal
#[derive(Debug)]
pub struct Exchange<T> {
    /// The master sender. Survives [`Exchange::seal`] so the supervisor can
    /// mint [`Exchange::replacement_handle`]s for respawned workers; the
    /// `sealed` flag (not a channel close) enforces the minting protocol.
    tx: Sender<(u64, T)>,
    rx: Receiver<(u64, T)>,
    /// Handle minting is closed; only replacement handles may be created.
    sealed: bool,
    /// Messages received by a failed [`Exchange::drain_deadline`] (or left
    /// over past a drain's expected count), consumed first by the next
    /// drain. Survivor results are never lost to a recovery retry.
    pending: Vec<(u64, T)>,
}

impl<T> Default for Exchange<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Exchange<T> {
    /// An empty, unsealed exchange.
    // This is the audited fence around the raw channel the workspace-wide
    // clippy ban points everyone at.
    #[allow(clippy::disallowed_methods)]
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Exchange { tx, rx, sealed: false, pending: Vec::new() }
    }

    /// Mint a publish handle. Panics after [`Exchange::seal`] — handles for
    /// supervised respawns go through [`Exchange::replacement_handle`],
    /// which demands the opposite state, so the two minting paths cannot be
    /// confused.
    pub fn handle(&self) -> ExchangeTx<T> {
        assert!(!self.sealed, "exchange already sealed");
        ExchangeTx { tx: self.tx.clone() }
    }

    /// Close ordinary handle minting: the publisher set is complete. Drains
    /// from here on may assume exactly that set (plus any supervised
    /// replacements).
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Mint a publish handle for a *replacement* publisher after a fault
    /// (supervised respawn path). Requires the exchange to be sealed: this
    /// is not a loophole around [`Exchange::seal`], it is the explicit
    /// post-seal recovery door.
    pub fn replacement_handle(&self) -> ExchangeTx<T> {
        assert!(self.sealed, "replacement handles only exist after seal()");
        ExchangeTx { tx: self.tx.clone() }
    }

    /// Sorted keys currently buffered in `pending`.
    fn pending_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.pending.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }

    /// Receive exactly `expect` messages, then return them sorted by key —
    /// the canonical order. Thread completion order is invisible past this
    /// point, which is what lets the merge path consume concurrent workers
    /// without ever observing their scheduling. Declared as a detlint taint
    /// barrier (`TaintConfig::workspace_default`, docs/DETLINT.md).
    ///
    /// Blocks indefinitely if a publisher never delivers; supervised
    /// callers use [`Exchange::drain_deadline`] instead.
    pub fn drain_sorted(&mut self, expect: usize) -> Vec<(u64, T)> {
        while self.pending.len() < expect {
            // This is the barrier itself — arrival order is erased by the
            // sort below before anything reads it.
            // detlint::allow(no-thread-order): sorted before consumption
            self.pending.push(self.rx.recv().expect("exchange publisher disconnected"));
        }
        let rest = self.pending.split_off(expect);
        let mut out = std::mem::replace(&mut self.pending, rest);
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// [`Exchange::drain_sorted`] with a deadline: receive `expect`
    /// messages, waiting at most one `policy` backoff window per empty
    /// read, for at most `policy.max_attempts` empty windows — so total
    /// blocking on a silent publisher is bounded by
    /// [`RetryPolicy::total_backoff_us`]. A successful drain returns the
    /// messages sorted by key, exactly like `drain_sorted`. A failed drain
    /// returns a [`DrainError`] listing the keys that did arrive; their
    /// messages stay buffered for the next drain call (recovery retries
    /// never lose survivor results). Deadlines are policy backoff windows —
    /// pure functions of the attempt index — so no wall clock is ever read.
    /// Also a declared detlint taint barrier.
    pub fn drain_deadline(
        &mut self,
        expect: usize,
        policy: &RetryPolicy,
    ) -> Result<Vec<(u64, T)>, DrainError> {
        let mut empty_windows = 0u32;
        while self.pending.len() < expect {
            let window = Duration::from_micros(policy.backoff_us(empty_windows + 1));
            // Same barrier as drain_sorted: arrival order dies in the sort.
            // detlint::allow(no-thread-order): sorted before consumption
            match self.rx.recv_timeout(window) {
                Ok(msg) => self.pending.push(msg),
                Err(RecvTimeoutError::Timeout) => {
                    empty_windows += 1;
                    if empty_windows >= policy.max_attempts {
                        return Err(DrainError::Timeout { received: self.pending_keys() });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DrainError::Disconnected { received: self.pending_keys() });
                }
            }
        }
        let rest = self.pending.split_off(expect);
        let mut out = std::mem::replace(&mut self.pending, rest);
        out.sort_by_key(|&(k, _)| k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deadline policy for tests: 4 windows of 1ms, 2ms, 4ms, 8ms —
    /// 15ms worst case, long past any same-process publish latency.
    fn tiny_policy() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_backoff_us: 1_000, backoff_multiplier: 2 }
    }

    #[test]
    fn drain_order_is_independent_of_publish_order() {
        let publish_orders: [[u64; 4]; 3] = [[0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]];
        let mut drains = Vec::new();
        for order in publish_orders {
            let mut ex: Exchange<String> = Exchange::new();
            let tx = ex.handle();
            for k in order {
                tx.publish(k, format!("payload-{k}"));
            }
            drains.push(ex.drain_sorted(4));
        }
        for d in &drains[1..] {
            assert_eq!(d, &drains[0]);
        }
        assert_eq!(drains[0][0], (0, "payload-0".to_string()));
        assert_eq!(drains[0][3], (3, "payload-3".to_string()));
    }

    #[test]
    // Raw spawns are exactly what this test needs: threads with no
    // ordering guarantee, to prove the drain erases their schedule.
    #[allow(clippy::disallowed_methods)]
    fn concurrent_publishers_drain_canonically() {
        let mut ex: Exchange<u64> = Exchange::new();
        let handles: Vec<_> = (0..8u64)
            .map(|k| {
                let tx = ex.handle();
                std::thread::spawn(move || tx.publish(k, k * 10))
            })
            .collect();
        ex.seal();
        for h in handles {
            h.join().unwrap();
        }
        let drained = ex.drain_sorted(8);
        assert_eq!(drained, (0..8u64).map(|k| (k, k * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn drain_only_takes_the_expected_count() {
        let mut ex: Exchange<u8> = Exchange::new();
        let tx = ex.handle();
        for k in 0..6u64 {
            tx.publish(k, k as u8);
        }
        assert_eq!(ex.drain_sorted(3).len(), 3, "first round");
        assert_eq!(ex.drain_sorted(3).len(), 3, "second round drains the rest");
    }

    #[test]
    #[should_panic(expected = "already sealed")]
    fn sealed_exchange_mints_no_handles() {
        let mut ex: Exchange<u8> = Exchange::new();
        let _tx = ex.handle();
        ex.seal();
        let _ = ex.handle();
    }

    #[test]
    #[should_panic(expected = "only exist after seal")]
    fn replacement_handles_require_a_sealed_exchange() {
        let ex: Exchange<u8> = Exchange::new();
        let _ = ex.replacement_handle();
    }

    #[test]
    fn dead_publisher_times_out_the_deadline_drain() {
        // The PR 9 contract replacing the old drain panic: a publisher that
        // dies without publishing turns into a typed timeout naming the
        // survivors, never a hang and never a panic.
        let mut ex: Exchange<u8> = Exchange::new();
        let alive = ex.handle();
        let dead = ex.handle();
        ex.seal();
        alive.publish(3, 33);
        drop(dead); // dies without publishing
        let err = ex.drain_deadline(2, &tiny_policy()).unwrap_err();
        assert_eq!(err, DrainError::Timeout { received: vec![3] });
        // The survivor's message is still buffered: once the supervisor
        // respawns the dead publisher, the retry completes with both.
        let retry = ex.replacement_handle();
        retry.publish(7, 77);
        assert_eq!(ex.drain_deadline(2, &tiny_policy()).unwrap(), vec![(3, 33), (7, 77)]);
    }

    #[test]
    fn deadline_drain_is_byte_identical_to_blocking_drain_when_fault_free() {
        let publish_orders: [[u64; 4]; 2] = [[2, 0, 3, 1], [1, 3, 0, 2]];
        for order in publish_orders {
            let mut a: Exchange<u64> = Exchange::new();
            let mut b: Exchange<u64> = Exchange::new();
            let (ta, tb) = (a.handle(), b.handle());
            a.seal();
            b.seal();
            for k in order {
                ta.publish(k, k * 7);
                tb.publish(k, k * 7);
            }
            assert_eq!(a.drain_deadline(4, &tiny_policy()).unwrap(), b.drain_sorted(4));
        }
    }
}

//! ElasticDDP: the gradient-synchronization substrate.
//!
//! This crate reproduces the communication-layer non-determinism the paper's
//! §3.3 identifies, and EasyScale's fix for it:
//!
//! * Gradients are packed into **buckets** (à la PyTorch DDP's 25 MB
//!   buckets). The initial gradient→bucket mapping follows the reversed
//!   topological parameter order; at the end of the first mini-batch DDP
//!   **rebuilds** the mapping from the order gradient tensors actually
//!   became ready — an order that depends on kernel-completion timing and
//!   therefore changes when workers restart.
//! * Each bucket is all-reduced with a **ring** algorithm: the bucket is cut
//!   into `nranks` chunks, and the rank-summation order of each chunk is a
//!   rotation determined by its chunk index. Change the bucket layout (or
//!   the rank count) and the f32 addition orders change ⇒ different bits.
//!
//! EasyScale's D1 remedy, implemented here: give every EST a constant
//! **virtual rank**, run the ring over virtual ranks (so physical placement
//! is invisible), record the bucket layout in the checkpoint, and disable
//! the rebuild after a restart.

#![deny(missing_docs)]

pub mod allreduce;
pub mod bucket;
pub mod exchange;
pub mod heartbeat;
pub mod retry;

pub use allreduce::{ring_allreduce, ring_allreduce_gather, ring_allreduce_scalar, RingSpec};
pub use bucket::{BucketLayout, DEFAULT_BUCKET_CAP_BYTES};
pub use exchange::{DrainError, Exchange, ExchangeTx};
pub use heartbeat::{Heartbeat, HeartbeatBus};
pub use retry::{retry_reduce, CommError, FaultScript, RetryPolicy, RetryStats};

use serde::{Deserialize, Serialize};

/// The ElasticDDP communicator: bucket layout + virtual world size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticDdp {
    layout: BucketLayout,
    /// Number of *virtual* ranks (== number of ESTs == the logical worker
    /// count the user tuned hyper-parameters for).
    vworld: u32,
    /// Whether the post-warmup rebuild already happened (or was restored).
    rebuilt: bool,
}

impl ElasticDdp {
    /// Communicator with the initial (reversed-topological) bucket layout.
    pub fn new(param_sizes: &[usize], vworld: u32, bucket_cap_bytes: usize) -> Self {
        assert!(vworld > 0, "need at least one virtual rank");
        ElasticDdp {
            layout: BucketLayout::initial(param_sizes, bucket_cap_bytes),
            vworld,
            rebuilt: false,
        }
    }

    /// Virtual world size.
    pub fn vworld(&self) -> u32 {
        self.vworld
    }

    /// Current bucket layout.
    pub fn layout(&self) -> &BucketLayout {
        &self.layout
    }

    /// Whether the warmup rebuild has happened.
    pub fn is_rebuilt(&self) -> bool {
        self.rebuilt
    }

    /// DDP's end-of-first-mini-batch rebuild: adopt a layout derived from
    /// the observed gradient-ready order. A no-op if already rebuilt (which
    /// is how D1 disables reconstruction after a checkpoint restore).
    pub fn rebuild_from_ready_order(&mut self, ready_order: &[usize], bucket_cap_bytes: usize) {
        if self.rebuilt {
            return;
        }
        self.layout = BucketLayout::from_ready_order(
            self.layout.param_sizes(),
            ready_order,
            bucket_cap_bytes,
        );
        self.rebuilt = true;
    }

    /// All-reduce (average) the per-virtual-rank flat gradients. `grads`
    /// must hold exactly `vworld` equal-length vectors indexed by virtual
    /// rank. The result's bits depend only on (gradient values, bucket
    /// layout, vworld) — never on physical placement.
    pub fn allreduce_avg(&self, grads: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(grads.len(), self.vworld as usize, "expected one gradient per virtual rank");
        let n = grads[0].len();
        assert!(grads.iter().all(|g| g.len() == n), "gradient length mismatch across ranks");
        let _t = obs::span("comm.allreduce");
        obs::counter_add("comm.allreduce_calls", 1);
        obs::counter_add("comm.allreduce_bytes", (n * grads.len() * 4) as u64);
        obs::counter_add("comm.bucket_fills", self.layout.num_buckets() as u64);
        let views: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
        let mut out = vec![0.0f32; n];
        for bucket in self.layout.buckets() {
            let spec = RingSpec { nranks: self.vworld as usize };
            ring_allreduce(&views, &self.layout.bucket_positions(bucket), &spec, &mut out);
        }
        let scale = 1.0 / self.vworld as f32;
        for v in &mut out {
            *v *= scale;
        }
        out
    }

    /// The bucket indices partition `part` (of `parts`) owns under the
    /// fixed round-robin merge partition: bucket `b` belongs to partition
    /// `b % parts`. The assignment is a pure function of (layout, parts),
    /// never of timing, so splitting the merge-side reduction across
    /// workers cannot move a bucket between accumulation trees.
    pub fn partition_buckets(&self, part: usize, parts: usize) -> Vec<usize> {
        assert!(parts > 0, "need at least one partition");
        assert!(part < parts, "partition index out of range");
        (0..self.layout.num_buckets()).filter(|b| b % parts == part).collect()
    }

    /// Ring-reduce only the given `buckets`, returning each bucket's summed
    /// values in bucket-position order. Every bucket's accumulation tree is
    /// the same [`ring_allreduce`] the monolithic [`ElasticDdp::allreduce_avg`]
    /// runs — per-element and in fixed chunk order — so reducing a bucket
    /// here or there produces identical bits; only *where* it is computed
    /// changes. Pairs with [`ElasticDdp::assemble_avg`].
    pub fn reduce_buckets(&self, grads: &[Vec<f32>], buckets: &[usize]) -> Vec<(usize, Vec<f32>)> {
        assert_eq!(grads.len(), self.vworld as usize, "expected one gradient per virtual rank");
        let n = grads[0].len();
        assert!(grads.iter().all(|g| g.len() == n), "gradient length mismatch across ranks");
        let views: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
        let spec = RingSpec { nranks: self.vworld as usize };
        let mut out = Vec::with_capacity(buckets.len());
        for &b in buckets {
            let positions = self.layout.bucket_positions(&self.layout.buckets()[b]);
            // Bucket-ordered reduction: same per-element tree as the
            // monolithic path, no full-gradient-width scratch in between.
            out.push((b, ring_allreduce_gather(&views, &positions, &spec)));
        }
        obs::counter_add("comm.bucket_fills", buckets.len() as u64);
        out
    }

    /// Assemble per-bucket partial sums (from any number of
    /// [`ElasticDdp::reduce_buckets`] calls, in any order) into the averaged
    /// flat gradient. Placement of values is keyed by bucket position —
    /// buckets are disjoint — and the final scale is the same single
    /// multiply [`ElasticDdp::allreduce_avg`] applies, so the result is
    /// bitwise identical to the monolithic reduction. Panics unless the
    /// parts cover every bucket exactly once.
    pub fn assemble_avg(&self, parts: &[(usize, Vec<f32>)]) -> Vec<f32> {
        let n = self.layout.total_elements();
        let mut out = vec![0.0f32; n];
        let mut seen = vec![false; self.layout.num_buckets()];
        for (b, values) in parts {
            assert!(!seen[*b], "bucket {b} reduced twice");
            seen[*b] = true;
            let positions = self.layout.bucket_positions(&self.layout.buckets()[*b]);
            assert_eq!(positions.len(), values.len(), "bucket {b} value count mismatch");
            // Placement by maximal contiguous runs: bucket positions are
            // concatenations of whole-parameter ranges, so this is a handful
            // of memcpys instead of one scatter store per element.
            let mut i = 0;
            while i < positions.len() {
                let start = positions[i];
                let mut j = i + 1;
                while j < positions.len() && positions[j] == positions[j - 1] + 1 {
                    j += 1;
                }
                out[start..start + (j - i)].copy_from_slice(&values[i..j]);
                i = j;
            }
        }
        assert!(seen.iter().all(|&s| s), "partial reduction must cover every bucket");
        let scale = 1.0 / self.vworld as f32;
        for v in &mut out {
            *v *= scale;
        }
        obs::counter_add("comm.allreduce_calls", 1);
        obs::counter_add("comm.allreduce_bytes", (n * self.vworld as usize * 4) as u64);
        out
    }

    /// Checkpoint: the D1-critical state (bucket layout + rebuild flag).
    pub fn checkpoint(&self) -> CommCheckpoint {
        CommCheckpoint { layout: self.layout.clone(), vworld: self.vworld, rebuilt: self.rebuilt }
    }

    /// Restore a communicator from a checkpoint (the D1 path: reinstate the
    /// recorded gradient-bucket mapping and disable reconstruction).
    pub fn restore(ckpt: CommCheckpoint) -> Self {
        ElasticDdp { layout: ckpt.layout, vworld: ckpt.vworld, rebuilt: ckpt.rebuilt }
    }
}

/// Serializable communicator state for on-demand checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommCheckpoint {
    /// Bucket layout (the "indices that make up the gradient buckets").
    pub layout: BucketLayout,
    /// Virtual world size.
    pub vworld: u32,
    /// Rebuild-done flag.
    pub rebuilt: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(vworld: usize, n: usize) -> Vec<Vec<f32>> {
        (0..vworld)
            .map(|r| {
                (0..n)
                    .map(|i| {
                        ((i * 31 + r * 7) % 97) as f32 * 0.013 * 10f32.powi((i % 5) as i32 - 2)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn allreduce_is_mathematically_the_average() {
        let ddp = ElasticDdp::new(&[100, 50, 200], 4, 1024);
        let g = grads(4, 350);
        let out = ddp.allreduce_avg(&g);
        for i in 0..350 {
            let expect: f64 = g.iter().map(|r| r[i] as f64).sum::<f64>() / 4.0;
            assert!((out[i] as f64 - expect).abs() < 1e-4, "element {i}");
        }
    }

    #[test]
    fn allreduce_is_deterministic() {
        let ddp = ElasticDdp::new(&[64, 64, 64], 4, 512);
        let g = grads(4, 192);
        let a = ddp.allreduce_avg(&g);
        let b = ddp.allreduce_avg(&g);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn different_layouts_change_bits() {
        let g = grads(4, 1000);
        let sizes = [100usize; 10];
        let a = ElasticDdp::new(&sizes, 4, 4000).allreduce_avg(&g); // 1 bucket
        let b = ElasticDdp::new(&sizes, 4, 400).allreduce_avg(&g); // 10 buckets
        let differs = a.iter().zip(&b).any(|(x, y)| x.to_bits() != y.to_bits());
        assert!(differs, "bucket layout must influence bits (the D1 hazard)");
        // While staying the same real numbers.
        let max: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max);
        assert!(max < 1e-3);
    }

    #[test]
    fn rank_count_changes_bits() {
        // 2-GPU DDP and 4-GPU DDP genuinely disagree bitwise even on the
        // same total gradient set — the reason elastic training must pin a
        // virtual world size.
        let g4 = grads(4, 400);
        let out4 = ElasticDdp::new(&[400], 4, 1600).allreduce_avg(&g4);
        // Combine pairs as a 2-rank world would see them (pre-summed pairs),
        // then average with vworld 2 — mimics "4 workers on 2 GPUs" naively.
        let g2: Vec<Vec<f32>> = vec![
            (0..400).map(|i| g4[0][i] + g4[1][i]).collect(),
            (0..400).map(|i| g4[2][i] + g4[3][i]).collect(),
        ];
        let mut out2 = ElasticDdp::new(&[400], 2, 1600).allreduce_avg(&g2);
        for v in &mut out2 {
            *v *= 0.5; // rescale sum-of-pairs average to per-worker average
        }
        let differs = out4.iter().zip(&out2).any(|(x, y)| x.to_bits() != y.to_bits());
        assert!(differs);
    }

    #[test]
    fn rebuild_changes_layout_then_sticks() {
        let mut ddp = ElasticDdp::new(&[10, 20, 30, 40], 2, 128);
        let initial = ddp.layout().clone();
        ddp.rebuild_from_ready_order(&[2, 0, 3, 1], 128);
        assert_ne!(*ddp.layout(), initial);
        let rebuilt = ddp.layout().clone();
        // Second rebuild attempt is ignored (D1's "reconstruction disabled").
        ddp.rebuild_from_ready_order(&[0, 1, 2, 3], 128);
        assert_eq!(*ddp.layout(), rebuilt);
    }

    #[test]
    fn checkpoint_restores_layout_and_flag() {
        let mut ddp = ElasticDdp::new(&[10, 20, 30], 4, 64);
        ddp.rebuild_from_ready_order(&[1, 2, 0], 64);
        let ckpt = ddp.checkpoint();
        let restored = ElasticDdp::restore(ckpt);
        assert_eq!(restored.layout(), ddp.layout());
        assert!(restored.is_rebuilt(), "restored communicator must not rebuild again");
        let g = grads(4, 60);
        let a = ddp.allreduce_avg(&g);
        let b = restored.allreduce_avg(&g);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    #[should_panic(expected = "one gradient per virtual rank")]
    fn world_size_is_enforced() {
        let ddp = ElasticDdp::new(&[10], 4, 64);
        ddp.allreduce_avg(&grads(3, 10));
    }

    #[test]
    fn partition_covers_every_bucket_exactly_once() {
        let ddp = ElasticDdp::new(&[100, 50, 200, 30], 4, 256);
        for parts in 1..=5 {
            let mut seen = vec![0u32; ddp.layout().num_buckets()];
            for part in 0..parts {
                for b in ddp.partition_buckets(part, parts) {
                    seen[b] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "parts={parts} cover {seen:?}");
        }
    }

    #[test]
    fn partitioned_reduce_matches_monolithic_bitwise() {
        // The tentpole's correctness core: splitting the merge reduction
        // across any number of partitions — the parallel engine uses one
        // per worker thread — and reassembling must reproduce the
        // monolithic allreduce bit-for-bit, because each bucket keeps its
        // fixed accumulation tree no matter which partition runs it.
        let ddp = ElasticDdp::new(&[128, 64, 300, 17, 90], 4, 512);
        let g = grads(4, 599);
        let plain = ddp.allreduce_avg(&g);
        for parts in 1..=5 {
            let partials: Vec<(usize, Vec<f32>)> = (0..parts)
                .flat_map(|p| ddp.reduce_buckets(&g, &ddp.partition_buckets(p, parts)))
                .collect();
            let assembled = ddp.assemble_avg(&partials);
            assert!(
                plain.iter().zip(&assembled).all(|(a, b)| a.to_bits() == b.to_bits()),
                "parts={parts} changed bits"
            );
        }
    }

    #[test]
    fn assemble_is_insensitive_to_part_arrival_order() {
        // The engine drains partials in canonical key order, but assembly
        // itself keys placement by bucket index, so even a permuted drain
        // would assemble the same bits — defense in depth against D1.
        let ddp = ElasticDdp::new(&[64, 64, 64], 2, 128);
        let g = grads(2, 192);
        let mut partials: Vec<(usize, Vec<f32>)> =
            (0..3).flat_map(|p| ddp.reduce_buckets(&g, &ddp.partition_buckets(p, 3))).collect();
        let forward = ddp.assemble_avg(&partials);
        partials.reverse();
        let reversed = ddp.assemble_avg(&partials);
        assert!(forward.iter().zip(&reversed).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    #[should_panic(expected = "cover every bucket")]
    fn assemble_rejects_missing_buckets() {
        let ddp = ElasticDdp::new(&[100, 100], 2, 128);
        let g = grads(2, 200);
        let partials = ddp.reduce_buckets(&g, &ddp.partition_buckets(0, 2));
        let _ = ddp.assemble_avg(&partials);
    }
}

//! Gradient-bucket layout.
//!
//! A layout assigns each parameter tensor (identified by its index in the
//! flat reverse-topological order) to a bucket, capped at a byte budget.
//! Bucket membership *and order within the bucket* both matter: the ring
//! all-reduce chunks each bucket by byte position, so moving a parameter
//! changes which rotation its elements are summed with.

use serde::{Deserialize, Serialize};

/// PyTorch DDP's default bucket size (25 MB).
pub const DEFAULT_BUCKET_CAP_BYTES: usize = 25 * 1024 * 1024;

const F32_BYTES: usize = 4;

/// A gradient→bucket mapping over a fixed parameter list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketLayout {
    /// Element counts of each parameter tensor (flat order).
    param_sizes: Vec<usize>,
    /// Flat-order element offset of each parameter.
    param_offsets: Vec<usize>,
    /// Buckets: each is an ordered list of parameter indices.
    buckets: Vec<Vec<usize>>,
}

impl BucketLayout {
    /// The initial mapping: parameters in reversed-topological order (the
    /// order `param_sizes` is given in), greedily packed into buckets of at
    /// most `cap_bytes` (a parameter larger than the cap gets its own
    /// bucket).
    pub fn initial(param_sizes: &[usize], cap_bytes: usize) -> Self {
        Self::pack(param_sizes, (0..param_sizes.len()).collect(), cap_bytes)
    }

    /// The rebuilt mapping DDP adopts after the first mini-batch: same
    /// greedy packing, but in the order gradients became ready.
    pub fn from_ready_order(
        param_sizes: &[usize],
        ready_order: &[usize],
        cap_bytes: usize,
    ) -> Self {
        assert_eq!(ready_order.len(), param_sizes.len(), "ready order must cover all params");
        let mut seen = vec![false; param_sizes.len()];
        for &p in ready_order {
            assert!(p < param_sizes.len() && !seen[p], "ready order must be a permutation");
            seen[p] = true;
        }
        Self::pack(param_sizes, ready_order.to_vec(), cap_bytes)
    }

    fn pack(param_sizes: &[usize], order: Vec<usize>, cap_bytes: usize) -> Self {
        assert!(cap_bytes >= F32_BYTES, "bucket cap below one element");
        let mut offsets = Vec::with_capacity(param_sizes.len());
        let mut off = 0;
        for &s in param_sizes {
            offsets.push(off);
            off += s;
        }
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut cur_bytes = 0usize;
        for p in order {
            let bytes = param_sizes[p] * F32_BYTES;
            if !cur.is_empty() && cur_bytes + bytes > cap_bytes {
                buckets.push(std::mem::take(&mut cur));
                cur_bytes = 0;
            }
            cur.push(p);
            cur_bytes += bytes;
        }
        if !cur.is_empty() {
            buckets.push(cur);
        }
        // Every emitted bucket is one "flush" of the greedy packer (layout
        // construction happens at job start and at the warmup rebuild).
        obs::counter_add("comm.bucket_flushes", buckets.len() as u64);
        BucketLayout { param_sizes: param_sizes.to_vec(), param_offsets: offsets, buckets }
    }

    /// Parameter sizes the layout was built over.
    pub fn param_sizes(&self) -> &[usize] {
        &self.param_sizes
    }

    /// The buckets (ordered lists of parameter indices).
    pub fn buckets(&self) -> &[Vec<usize>] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Flat-gradient element positions of a bucket, in bucket order: the
    /// concatenation of each member parameter's element range.
    pub fn bucket_positions(&self, bucket: &[usize]) -> Vec<usize> {
        let total: usize = bucket.iter().map(|&p| self.param_sizes[p]).sum();
        let mut pos = Vec::with_capacity(total);
        for &p in bucket {
            let start = self.param_offsets[p];
            pos.extend(start..start + self.param_sizes[p]);
        }
        pos
    }

    /// Total element count.
    pub fn total_elements(&self) -> usize {
        self.param_sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_packs_greedily_in_order() {
        // Sizes in elements; cap 40 bytes = 10 elements.
        let l = BucketLayout::initial(&[4, 4, 4, 4], 40);
        assert_eq!(l.buckets(), &[vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn oversized_param_gets_own_bucket() {
        let l = BucketLayout::initial(&[100, 2, 2], 40);
        assert_eq!(l.num_buckets(), 2);
        assert_eq!(l.buckets()[0], vec![0]);
        assert_eq!(l.buckets()[1], vec![1, 2]);
    }

    #[test]
    fn ready_order_changes_packing() {
        let a = BucketLayout::initial(&[4, 4, 4, 4], 40);
        let b = BucketLayout::from_ready_order(&[4, 4, 4, 4], &[3, 1, 0, 2], 40);
        assert_ne!(a, b);
        assert_eq!(b.buckets(), &[vec![3, 1], vec![0, 2]]);
    }

    #[test]
    fn bucket_positions_concatenate_ranges() {
        let l = BucketLayout::from_ready_order(&[2, 3, 1], &[2, 0, 1], 1024);
        // Offsets: p0 at 0..2, p1 at 2..5, p2 at 5..6. Bucket order 2,0,1.
        assert_eq!(l.bucket_positions(&l.buckets()[0]), vec![5, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_element_appears_exactly_once() {
        let sizes = [7usize, 13, 1, 29, 4];
        let l = BucketLayout::from_ready_order(&sizes, &[4, 2, 0, 3, 1], 64);
        let mut seen = vec![0u8; sizes.iter().sum()];
        for b in l.buckets() {
            for pos in l.bucket_positions(b) {
                seen[pos] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn ready_order_must_be_permutation() {
        BucketLayout::from_ready_order(&[1, 1], &[0, 0], 64);
    }
}

//! Bounded retry with exponential backoff for transient all-reduce faults.
//!
//! Real elastic clusters see transient NCCL failures — a flaky NIC, a
//! container eviction racing a collective — and the standard remedy is to
//! retry the collective a bounded number of times before declaring the
//! worker dead. The determinism constraint makes the *shape* of the remedy
//! matter: a retried all-reduce must produce exactly the bits the first
//! attempt would have produced, and the backoff schedule must be a pure
//! function of the attempt index (no wall-clock sampling). Both hold here:
//! [`ElasticDdp::allreduce_avg_with_retry`] recomputes the same pure ring
//! reduction on every attempt, and [`RetryPolicy::backoff_us`] is integer
//! arithmetic on the attempt number.
//!
//! Fault *injection* is explicit: a [`FaultScript`] says which attempts
//! fail. Production code passes [`FaultScript::none`]; the faultsim harness
//! arms scripts from its seeded schedule.

use crate::ElasticDdp;
use serde::{Deserialize, Serialize};

/// Why a collective ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommError {
    /// Every attempt permitted by the [`RetryPolicy`] faulted.
    RetriesExhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RetriesExhausted { attempts } => {
                write!(f, "allreduce failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Bounded-retry policy: how many attempts, and how long (in simulated
/// microseconds) to back off between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated microseconds.
    pub base_backoff_us: u64,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_us: 200, backoff_multiplier: 2 }
    }
}

impl RetryPolicy {
    /// Backoff consumed before retry number `retry` (1-based; retry 1 is
    /// the second attempt). A pure function — no jitter, so two runs of the
    /// same fault schedule spend identical simulated time.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        debug_assert!(retry >= 1);
        self.base_backoff_us
            .saturating_mul((self.backoff_multiplier as u64).saturating_pow(retry - 1))
    }

    /// Total backoff the policy can ever spend: the sum of every window,
    /// `Σ backoff_us(r)` for `r` in `1..=max_attempts`. This is the
    /// worst-case blocking budget of a deadline drain built on this policy
    /// (`Exchange::drain_deadline`), and therefore the deterministic
    /// virtual-time detection latency charged for a thread fault — once the
    /// budget is spent, the drain *must* have returned an error.
    pub fn total_backoff_us(&self) -> u64 {
        (1..=self.max_attempts).fold(0u64, |acc, r| acc.saturating_add(self.backoff_us(r)))
    }
}

/// A deterministic script of attempt outcomes: the next `remaining`
/// attempts fault, everything after succeeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScript {
    remaining: u32,
}

impl FaultScript {
    /// No injected faults (the production path).
    pub fn none() -> Self {
        FaultScript { remaining: 0 }
    }

    /// Fail the next `n` attempts, then succeed.
    pub fn failures(n: u32) -> Self {
        FaultScript { remaining: n }
    }

    /// Injected failures not yet consumed.
    pub fn pending(&self) -> u32 {
        self.remaining
    }

    /// Consume one attempt; returns true if that attempt faults.
    fn attempt_faults(&mut self) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }
}

/// What a (successful) retried collective cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = no fault seen).
    pub attempts: u32,
    /// Total simulated backoff consumed, in microseconds.
    pub backoff_us: u64,
}

/// Run any reduction closure under a bounded-retry policy with scripted
/// fault injection. The closure runs only on a clean attempt, so a retried
/// reduction is recomputed from scratch — for a pure reduction (everything
/// in this workspace) the retried result is bitwise identical to a
/// first-try success. This is the engine-agnostic core behind
/// [`ElasticDdp::allreduce_avg_with_retry`]; the parallel engine hands it a
/// closure that fans the reduction out across the worker pool instead.
pub fn retry_reduce<T>(
    policy: &RetryPolicy,
    faults: &mut FaultScript,
    mut reduce: impl FnMut() -> T,
) -> Result<(T, RetryStats), CommError> {
    assert!(policy.max_attempts >= 1, "policy must allow at least one attempt");
    let mut backoff_us = 0u64;
    for attempt in 1..=policy.max_attempts {
        if faults.attempt_faults() {
            obs::counter_add("comm.allreduce_faults_injected", 1);
            if attempt < policy.max_attempts {
                let wait = policy.backoff_us(attempt);
                backoff_us += wait;
                obs::counter_add("comm.allreduce_retries", 1);
                obs::observe("comm.retry_backoff_us", wait as f64);
            }
            continue;
        }
        return Ok((reduce(), RetryStats { attempts: attempt, backoff_us }));
    }
    obs::counter_add("comm.allreduce_exhausted", 1);
    Err(CommError::RetriesExhausted { attempts: policy.max_attempts })
}

impl ElasticDdp {
    /// [`ElasticDdp::allreduce_avg`] under a bounded-retry policy with
    /// scripted fault injection. On success the returned gradient is
    /// bitwise identical to the plain call — retries recompute the same
    /// pure reduction — so transient comm faults are invisible to training.
    /// Returns [`CommError::RetriesExhausted`] when the script outlasts the
    /// policy; the caller escalates (worker-crash recovery path).
    pub fn allreduce_avg_with_retry(
        &self,
        grads: &[Vec<f32>],
        policy: &RetryPolicy,
        faults: &mut FaultScript,
    ) -> Result<(Vec<f32>, RetryStats), CommError> {
        retry_reduce(policy, faults, || self.allreduce_avg(grads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(vworld: usize, n: usize) -> Vec<Vec<f32>> {
        (0..vworld)
            .map(|r| (0..n).map(|i| ((i * 13 + r * 5) % 41) as f32 * 0.027).collect())
            .collect()
    }

    #[test]
    fn no_faults_is_one_attempt_and_identical_bits() {
        let ddp = ElasticDdp::new(&[64, 64], 4, 256);
        let g = grads(4, 128);
        let plain = ddp.allreduce_avg(&g);
        let (out, stats) = ddp
            .allreduce_avg_with_retry(&g, &RetryPolicy::default(), &mut FaultScript::none())
            .unwrap();
        assert_eq!(stats, RetryStats { attempts: 1, backoff_us: 0 });
        assert!(plain.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn transient_faults_are_bitwise_invisible() {
        let ddp = ElasticDdp::new(&[100, 50], 2, 200);
        let g = grads(2, 150);
        let plain = ddp.allreduce_avg(&g);
        for n_faults in 1..=3u32 {
            let (out, stats) = ddp
                .allreduce_avg_with_retry(
                    &g,
                    &RetryPolicy::default(),
                    &mut FaultScript::failures(n_faults),
                )
                .unwrap();
            assert_eq!(stats.attempts, n_faults + 1);
            assert!(
                plain.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{n_faults} faults changed bits"
            );
        }
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy { max_attempts: 5, base_backoff_us: 100, backoff_multiplier: 3 };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 300);
        assert_eq!(p.backoff_us(3), 900);
        assert_eq!(p.total_backoff_us(), 100 + 300 + 900 + 2700 + 8100);
        let ddp = ElasticDdp::new(&[32], 2, 128);
        let g = grads(2, 32);
        let (_, stats) =
            ddp.allreduce_avg_with_retry(&g, &p, &mut FaultScript::failures(3)).unwrap();
        assert_eq!(stats.backoff_us, 100 + 300 + 900);
    }

    #[test]
    fn exhausted_retries_error_out() {
        let ddp = ElasticDdp::new(&[32], 2, 128);
        let g = grads(2, 32);
        let p = RetryPolicy::default();
        let err = ddp
            .allreduce_avg_with_retry(&g, &p, &mut FaultScript::failures(p.max_attempts))
            .unwrap_err();
        assert_eq!(err, CommError::RetriesExhausted { attempts: p.max_attempts });
    }

    #[test]
    fn script_persists_across_calls() {
        // A script armed with more failures than one call consumes keeps
        // failing the next call — the harness relies on this to model a
        // fault burst spanning steps.
        let ddp = ElasticDdp::new(&[32], 2, 128);
        let g = grads(2, 32);
        let p = RetryPolicy { max_attempts: 2, base_backoff_us: 10, backoff_multiplier: 2 };
        let mut script = FaultScript::failures(3);
        assert!(ddp.allreduce_avg_with_retry(&g, &p, &mut script).is_err());
        assert_eq!(script.pending(), 1);
        let (_, stats) = ddp.allreduce_avg_with_retry(&g, &p, &mut script).unwrap();
        assert_eq!(stats.attempts, 2);
    }
}

//! Ring all-reduce with honest floating-point semantics.
//!
//! In NCCL's ring algorithm a bucket is cut into `nranks` chunks; chunk `c`
//! is reduced by circulating around the ring, so its values are summed in a
//! rank order *rotated by the chunk index*. Two consequences this module
//! reproduces exactly:
//!
//! 1. Moving an element to a different chunk (because the bucket layout
//!    changed) changes its addition order ⇒ different f32 bits.
//! 2. Changing the rank count changes both the chunking and the number of
//!    addends ⇒ different bits.

/// Ring topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSpec {
    /// Number of ranks in the ring.
    pub nranks: usize,
}

/// All-reduce (sum) the elements at `positions` (a bucket's flat-gradient
/// positions, in bucket order) across `grads[rank][...]`, writing sums into
/// `out` at the same positions.
///
/// The reduction order of the element at bucket-relative position `p` is the
/// ring order of chunk `p / chunk_len`: starting at rank `(chunk + 1) % n`
/// and proceeding around the ring — matching the reduce-scatter phase of a
/// ring all-reduce where chunk `c` ends fully reduced at rank `c`.
pub fn ring_allreduce(grads: &[&[f32]], positions: &[usize], spec: &RingSpec, out: &mut [f32]) {
    let n = spec.nranks;
    assert!(n > 0, "empty ring");
    assert_eq!(grads.len(), n, "one gradient slice per rank");
    if positions.is_empty() {
        return;
    }
    let chunk_len = positions.len().div_ceil(n);
    for (bp, &pos) in positions.iter().enumerate() {
        let chunk = bp / chunk_len;
        // Ring order for this chunk: (chunk+1)%n, (chunk+2)%n, …, chunk.
        let mut acc = 0.0f32;
        for k in 1..=n {
            let rank = (chunk + k) % n;
            acc += grads[rank][pos];
        }
        out[pos] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_grads(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((i + r * 13) as f32).sin() * 10f32.powi(((i + r) % 5) as i32 - 2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sums_are_correct() {
        let g = mk_grads(4, 32);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let positions: Vec<usize> = (0..32).collect();
        let mut out = vec![0.0; 32];
        ring_allreduce(&views, &positions, &RingSpec { nranks: 4 }, &mut out);
        for i in 0..32 {
            let expect: f64 = g.iter().map(|r| r[i] as f64).sum();
            assert!((out[i] as f64 - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn chunk_rotation_affects_bits() {
        // The same element, placed in different chunks (by permuting the
        // bucket positions), is summed in a different rank order.
        let g = mk_grads(3, 300);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let forward: Vec<usize> = (0..300).collect();
        let reversed: Vec<usize> = (0..300).rev().collect();
        let mut out_f = vec![0.0; 300];
        let mut out_r = vec![0.0; 300];
        ring_allreduce(&views, &forward, &RingSpec { nranks: 3 }, &mut out_f);
        ring_allreduce(&views, &reversed, &RingSpec { nranks: 3 }, &mut out_r);
        let differs = out_f.iter().zip(&out_r).any(|(a, b)| a.to_bits() != b.to_bits());
        assert!(differs, "chunk placement must influence addition order");
    }

    #[test]
    fn single_rank_is_identity() {
        let g = mk_grads(1, 16);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let positions: Vec<usize> = (0..16).collect();
        let mut out = vec![0.0; 16];
        ring_allreduce(&views, &positions, &RingSpec { nranks: 1 }, &mut out);
        assert!(out.iter().zip(&g[0]).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sparse_positions_only_touch_their_slots() {
        let g = mk_grads(2, 10);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![f32::NAN; 10];
        ring_allreduce(&views, &[3, 7], &RingSpec { nranks: 2 }, &mut out);
        assert!(!out[3].is_nan() && !out[7].is_nan());
        assert!(out
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 7)
            .all(|(_, v)| v.is_nan()));
    }

    #[test]
    fn empty_positions_is_noop() {
        let g = mk_grads(2, 4);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0.0; 4];
        ring_allreduce(&views, &[], &RingSpec { nranks: 2 }, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}

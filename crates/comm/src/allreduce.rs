//! Ring all-reduce with honest floating-point semantics.
//!
//! In NCCL's ring algorithm a bucket is cut into `nranks` chunks; chunk `c`
//! is reduced by circulating around the ring, so its values are summed in a
//! rank order *rotated by the chunk index*. Two consequences this module
//! reproduces exactly:
//!
//! 1. Moving an element to a different chunk (because the bucket layout
//!    changed) changes its addition order ⇒ different f32 bits.
//! 2. Changing the rank count changes both the chunking and the number of
//!    addends ⇒ different bits.

/// Ring topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSpec {
    /// Number of ranks in the ring.
    pub nranks: usize,
}

/// All-reduce (sum) the elements at `positions` (a bucket's flat-gradient
/// positions, in bucket order; positions must be distinct) across
/// `grads[rank][...]`, writing sums into `out` at the same positions.
///
/// The reduction order of the element at bucket-relative position `p` is the
/// ring order of chunk `p / chunk_len`: starting at rank `(chunk + 1) % n`
/// and proceeding around the ring — matching the reduce-scatter phase of a
/// ring all-reduce where chunk `c` ends fully reduced at rank `c`.
///
/// This is the vectorized evaluator: the loop nest is chunk-outer /
/// rank-middle / element-inner, with elements walked by maximal *contiguous
/// runs* of positions so the inner loop is a straight slice-add the compiler
/// auto-vectorizes (bucket positions are concatenations of whole-parameter
/// ranges, so runs are long in practice). Every element still receives its
/// addends in exactly the chunk's ring order starting from 0.0 — element
/// chains are independent, so hoisting the rank loop outward interleaves
/// chains without reassociating any of them. Bit-identical to
/// [`ring_allreduce_scalar`], the in-tree oracle.
pub fn ring_allreduce(grads: &[&[f32]], positions: &[usize], spec: &RingSpec, out: &mut [f32]) {
    let n = spec.nranks;
    assert!(n > 0, "empty ring");
    assert_eq!(grads.len(), n, "one gradient slice per rank");
    if positions.is_empty() {
        return;
    }
    let chunk_len = positions.len().div_ceil(n);
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for (chunk, cp) in positions.chunks(chunk_len).enumerate() {
        collect_runs(cp, &mut runs);
        for &(start, len) in &runs {
            out[start..start + len].iter_mut().for_each(|x| *x = 0.0);
        }
        for k in 1..=n {
            let rank = (chunk + k) % n;
            let g = grads[rank];
            for &(start, len) in &runs {
                let o = &mut out[start..start + len];
                let s = &g[start..start + len];
                for (x, &v) in o.iter_mut().zip(s) {
                    *x += v;
                }
            }
        }
    }
}

/// The scalar reference evaluator: element-outer, rank-inner, exactly the
/// pre-vectorization implementation. Kept in-tree as the oracle for the
/// `scalar ≡ vectorized` bit-equality proptests.
pub fn ring_allreduce_scalar(
    grads: &[&[f32]],
    positions: &[usize],
    spec: &RingSpec,
    out: &mut [f32],
) {
    let n = spec.nranks;
    assert!(n > 0, "empty ring");
    assert_eq!(grads.len(), n, "one gradient slice per rank");
    if positions.is_empty() {
        return;
    }
    let chunk_len = positions.len().div_ceil(n);
    for (bp, &pos) in positions.iter().enumerate() {
        let chunk = bp / chunk_len;
        // Ring order for this chunk: (chunk+1)%n, (chunk+2)%n, …, chunk.
        let mut acc = 0.0f32;
        for k in 1..=n {
            let rank = (chunk + k) % n;
            acc += grads[rank][pos];
        }
        out[pos] = acc;
    }
}

/// Ring-reduce `positions` into a freshly allocated *bucket-ordered* vector:
/// `result[i]` is the reduced value of `positions[i]`. Same per-element
/// accumulation tree as [`ring_allreduce`] (chunking by bucket-relative
/// index, ring order rotated by chunk), but the output is dense — the shape
/// the bucketed reduce path wants, without a full-gradient-width scratch
/// buffer between reduction and gather.
pub fn ring_allreduce_gather(grads: &[&[f32]], positions: &[usize], spec: &RingSpec) -> Vec<f32> {
    let n = spec.nranks;
    assert!(n > 0, "empty ring");
    assert_eq!(grads.len(), n, "one gradient slice per rank");
    let mut out = vec![0.0f32; positions.len()];
    if positions.is_empty() {
        return out;
    }
    let chunk_len = positions.len().div_ceil(n);
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for (chunk, cp) in positions.chunks(chunk_len).enumerate() {
        let dst_base = chunk * chunk_len;
        collect_runs(cp, &mut runs);
        debug_assert_eq!(runs.iter().map(|r| r.1).sum::<usize>(), cp.len());
        for k in 1..=n {
            let rank = (chunk + k) % n;
            let g = grads[rank];
            let mut dst = dst_base;
            for &(start, len) in &runs {
                let o = &mut out[dst..dst + len];
                let s = &g[start..start + len];
                for (x, &v) in o.iter_mut().zip(s) {
                    *x += v;
                }
                dst += len;
            }
        }
    }
    out
}

/// Split `positions` into maximal runs of consecutive indices, as
/// `(start_position, length)` pairs appended to `runs` (cleared first).
fn collect_runs(positions: &[usize], runs: &mut Vec<(usize, usize)>) {
    runs.clear();
    let mut i = 0;
    while i < positions.len() {
        let start = positions[i];
        let mut j = i + 1;
        while j < positions.len() && positions[j] == positions[j - 1] + 1 {
            j += 1;
        }
        runs.push((start, j - i));
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_grads(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((i + r * 13) as f32).sin() * 10f32.powi(((i + r) % 5) as i32 - 2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sums_are_correct() {
        let g = mk_grads(4, 32);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let positions: Vec<usize> = (0..32).collect();
        let mut out = vec![0.0; 32];
        ring_allreduce(&views, &positions, &RingSpec { nranks: 4 }, &mut out);
        for i in 0..32 {
            let expect: f64 = g.iter().map(|r| r[i] as f64).sum();
            assert!((out[i] as f64 - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn chunk_rotation_affects_bits() {
        // The same element, placed in different chunks (by permuting the
        // bucket positions), is summed in a different rank order.
        let g = mk_grads(3, 300);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let forward: Vec<usize> = (0..300).collect();
        let reversed: Vec<usize> = (0..300).rev().collect();
        let mut out_f = vec![0.0; 300];
        let mut out_r = vec![0.0; 300];
        ring_allreduce(&views, &forward, &RingSpec { nranks: 3 }, &mut out_f);
        ring_allreduce(&views, &reversed, &RingSpec { nranks: 3 }, &mut out_r);
        let differs = out_f.iter().zip(&out_r).any(|(a, b)| a.to_bits() != b.to_bits());
        assert!(differs, "chunk placement must influence addition order");
    }

    #[test]
    fn single_rank_is_identity() {
        let g = mk_grads(1, 16);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let positions: Vec<usize> = (0..16).collect();
        let mut out = vec![0.0; 16];
        ring_allreduce(&views, &positions, &RingSpec { nranks: 1 }, &mut out);
        assert!(out.iter().zip(&g[0]).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sparse_positions_only_touch_their_slots() {
        let g = mk_grads(2, 10);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![f32::NAN; 10];
        ring_allreduce(&views, &[3, 7], &RingSpec { nranks: 2 }, &mut out);
        assert!(!out[3].is_nan() && !out[7].is_nan());
        assert!(out
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 7)
            .all(|(_, v)| v.is_nan()));
    }

    #[test]
    fn empty_positions_is_noop() {
        let g = mk_grads(2, 4);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0.0; 4];
        ring_allreduce(&views, &[], &RingSpec { nranks: 2 }, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vectorized_matches_scalar_bitwise() {
        // Contiguous, strided, reversed-run, and singleton position shapes;
        // the randomized sweep lives in tests/vectorized_equiv.rs.
        for nranks in [1usize, 2, 3, 4, 7] {
            let g = mk_grads(nranks, 400);
            let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
            let spec = RingSpec { nranks };
            let shapes: Vec<Vec<usize>> = vec![
                (0..400).collect(),
                (0..400).step_by(3).collect(),
                (100..200).chain(0..50).chain(300..301).collect(),
                vec![7],
                (0..399).rev().collect(),
            ];
            for positions in shapes {
                let mut fast = vec![f32::NAN; 400];
                let mut slow = vec![f32::NAN; 400];
                ring_allreduce(&views, &positions, &spec, &mut fast);
                ring_allreduce_scalar(&views, &positions, &spec, &mut slow);
                assert!(
                    fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "nranks={nranks} positions len={}",
                    positions.len()
                );
                // The gather variant agrees element-for-element too.
                let gathered = ring_allreduce_gather(&views, &positions, &spec);
                assert!(gathered
                    .iter()
                    .zip(positions.iter())
                    .all(|(v, &p)| v.to_bits() == slow[p].to_bits()));
            }
        }
    }
}

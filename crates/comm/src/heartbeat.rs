//! Worker heartbeats: the liveness/progress signal the AIMaster's failure
//! detector consumes.
//!
//! Every physical worker emits a [`Heartbeat`] after each local step (and a
//! bare liveness ping while idle). Beats are timestamped on the virtual
//! [`SimClock`](../device/simtime) — never a wall clock — and carry the
//! worker's *deterministic* step duration (derived from its EST load
//! through the perf model), so the entire detection path is a pure function
//! of the run's inputs.
//!
//! The [`HeartbeatBus`] is the one place delivery order could leak
//! nondeterminism into detection: workers finish in arbitrary thread order,
//! so the bus **canonicalizes** on drain — beats come out sorted by
//! `(sent_at_us, device, step)` no matter what order they were published
//! in. This is what makes the health-event log byte-identical across
//! shuffled worker start orders.
//!
//! Payloads are integers only: `comm` is float-accumulation-linted
//! (detlint `no-raw-float-accum`), and nothing about liveness needs floats.

use serde::{Deserialize, Serialize};

/// One heartbeat from one physical worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Stable physical device id (survives rescales; not a worker index).
    pub device: u32,
    /// Global step the beat reports on (last completed, or current while
    /// idle).
    pub step: u64,
    /// Virtual send time (`SimClock` microseconds).
    pub sent_at_us: u64,
    /// Deterministic duration of the worker's last local step, if it
    /// stepped this round; `None` for idle liveness pings.
    pub step_time_us: Option<u64>,
}

/// An in-memory heartbeat channel with canonical drain order.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatBus {
    inflight: Vec<Heartbeat>,
}

impl HeartbeatBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish one beat. Publication order carries no meaning.
    pub fn publish(&mut self, beat: Heartbeat) {
        self.inflight.push(beat);
    }

    /// Beats currently in flight.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no beats are in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Drain every in-flight beat in canonical order: `(sent_at_us, device,
    /// step)`. Two runs that published the same *set* of beats — in any
    /// order — drain identically, which is what keeps the detector
    /// deterministic.
    pub fn drain_sorted(&mut self) -> Vec<Heartbeat> {
        let mut out = std::mem::take(&mut self.inflight);
        out.sort_by_key(|b| (b.sent_at_us, b.device, b.step));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(device: u32, step: u64, at: u64) -> Heartbeat {
        Heartbeat { device, step, sent_at_us: at, step_time_us: Some(100 + device as u64) }
    }

    #[test]
    fn drain_order_is_independent_of_publish_order() {
        let beats = [beat(2, 1, 50), beat(0, 1, 50), beat(1, 1, 40), beat(3, 2, 60)];
        let orders: [[usize; 4]; 4] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]];
        let mut drains = Vec::new();
        for order in orders {
            let mut bus = HeartbeatBus::new();
            for i in order {
                bus.publish(beats[i]);
            }
            drains.push(bus.drain_sorted());
        }
        for d in &drains[1..] {
            assert_eq!(d, &drains[0], "drain order must not depend on publish order");
        }
        assert_eq!(drains[0][0], beat(1, 1, 40), "earliest send time first");
    }

    #[test]
    fn drain_empties_the_bus() {
        let mut bus = HeartbeatBus::new();
        bus.publish(beat(0, 0, 1));
        assert_eq!(bus.len(), 1);
        assert!(!bus.is_empty());
        assert_eq!(bus.drain_sorted().len(), 1);
        assert!(bus.is_empty());
    }

    #[test]
    fn heartbeat_serializes_round_trip() {
        let b = beat(7, 42, 12345);
        let json = serde_json::to_string(&b).unwrap();
        let back: Heartbeat = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

//! Property tests for `Exchange` publisher-death semantics (PR 9).
//!
//! The supervised pool's fault boundary is `Exchange::drain_deadline`: when
//! k of n publishers die silently, the drain must return a typed error
//! naming the n−k keys that did arrive — never hang, never panic — and the
//! fault-free path must stay byte-identical to the blocking `drain_sorted`
//! it replaced.

use comm::exchange::{DrainError, Exchange};
use comm::RetryPolicy;
use proptest::prelude::*;

/// Deadline policy for tests: 4 windows of 1ms/2ms/4ms/8ms = 15ms worst
/// case per missing publisher — far past same-process publish latency, tiny
/// against test wall-clock budgets.
fn tiny_policy() -> RetryPolicy {
    RetryPolicy { max_attempts: 4, base_backoff_us: 1_000, backoff_multiplier: 2 }
}

/// Deterministic permutation of `0..n` from a seed (Fisher–Yates with a
/// splitmix-style mixer).
fn permutation(n: usize, mut seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
        let j = (seed >> 33) as usize % (i + 1);
        keys.swap(i, j);
    }
    keys
}

proptest! {
    /// Dropping k of n publishers without publishing yields a typed
    /// timeout whose `received` list is exactly the n−k surviving keys,
    /// for every k — including k = n (nobody publishes at all). The
    /// drain never hangs and never panics.
    #[test]
    fn k_dead_publishers_yield_a_typed_timeout(n in 1usize..6, k_seed in 0usize..64) {
        let k = k_seed % (n + 1); // 0..=n dead
        let mut ex: Exchange<u64> = Exchange::new();
        let handles: Vec<_> = (0..n).map(|_| ex.handle()).collect();
        ex.seal();
        for (i, h) in handles.into_iter().enumerate() {
            if i < k {
                drop(h); // dies without publishing
            } else {
                h.publish(i as u64, (i as u64) * 100);
            }
        }
        let survivors: Vec<u64> = (k..n).map(|i| i as u64).collect();
        if k == 0 {
            let out = ex.drain_deadline(n, &tiny_policy()).unwrap();
            prop_assert_eq!(out.len(), n);
        } else {
            let err = ex.drain_deadline(n, &tiny_policy()).unwrap_err();
            prop_assert_eq!(err, DrainError::Timeout { received: survivors });
        }
    }

    /// Fault-free: `drain_deadline` is byte-identical to the pre-PR9
    /// blocking `drain_sorted` for any publish order.
    #[test]
    fn fault_free_deadline_drain_matches_blocking_drain(seed in 0u64..1_000_000) {
        let keys = permutation(8, seed);
        let mut a: Exchange<u64> = Exchange::new();
        let mut b: Exchange<u64> = Exchange::new();
        let (ta, tb) = (a.handle(), b.handle());
        a.seal();
        b.seal();
        for &key in &keys {
            ta.publish(key, key.wrapping_mul(0x9E37_79B9));
            tb.publish(key, key.wrapping_mul(0x9E37_79B9));
        }
        let da = a.drain_deadline(8, &tiny_policy()).unwrap();
        let db = b.drain_sorted(8);
        prop_assert_eq!(da, db);
    }

    /// A failed drain loses nothing: after a respawned publisher fills the
    /// gap, the retry returns the full sorted round including the
    /// survivors' buffered messages.
    #[test]
    fn failed_drain_buffers_survivors_for_the_retry(n in 2usize..6, dead_seed in 0usize..64) {
        let dead = dead_seed % n;
        let mut ex: Exchange<u64> = Exchange::new();
        let handles: Vec<_> = (0..n).map(|_| ex.handle()).collect();
        ex.seal();
        for (i, h) in handles.into_iter().enumerate() {
            if i == dead {
                drop(h);
            } else {
                h.publish(i as u64, i as u64 + 1000);
            }
        }
        prop_assert!(ex.drain_deadline(n, &tiny_policy()).is_err());
        let replacement = ex.replacement_handle();
        replacement.publish(dead as u64, dead as u64 + 1000);
        let out = ex.drain_deadline(n, &tiny_policy()).unwrap();
        let want: Vec<(u64, u64)> = (0..n).map(|i| (i as u64, i as u64 + 1000)).collect();
        prop_assert_eq!(out, want);
    }
}

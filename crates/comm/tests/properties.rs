//! Property-based tests for ElasticDDP: bucket layouts must always
//! partition the gradient space, and the all-reduce must always compute the
//! average regardless of layout, world size, or ready order.

use comm::{BucketLayout, ElasticDdp};
use proptest::prelude::*;

fn sizes_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..200, 1..12)
}

fn permutation_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    /// Every bucket layout partitions the element space exactly once,
    /// whatever the sizes, cap, and ready order.
    #[test]
    fn layouts_partition((sizes, cap) in sizes_strategy().prop_flat_map(|s| {
        (Just(s), 4usize..4096)
    })) {
        let layout = BucketLayout::initial(&sizes, cap);
        let total: usize = sizes.iter().sum();
        let mut seen = vec![0u8; total];
        for b in layout.buckets() {
            for pos in layout.bucket_positions(b) {
                seen[pos] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// The same, for rebuilt layouts from arbitrary ready orders.
    #[test]
    fn rebuilt_layouts_partition(sizes in sizes_strategy(), cap in 4usize..4096, seed in any::<u64>()) {
        let n = sizes.len();
        // Build a deterministic permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let layout = BucketLayout::from_ready_order(&sizes, &order, cap);
        let total: usize = sizes.iter().sum();
        let mut seen = vec![0u8; total];
        for b in layout.buckets() {
            for pos in layout.bucket_positions(b) {
                seen[pos] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// All-reduce computes the average to f32 tolerance for any world size,
    /// bucket cap, and gradient values.
    #[test]
    fn allreduce_is_average(
        vworld in 1u32..9,
        sizes in prop::collection::vec(1usize..64, 1..6),
        cap in 16usize..1024,
        seed in any::<u32>(),
    ) {
        let total: usize = sizes.iter().sum();
        let grads: Vec<Vec<f32>> = (0..vworld)
            .map(|r| {
                (0..total)
                    .map(|i| {
                        let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed ^ r);
                        (x % 2000) as f32 * 0.01 - 10.0
                    })
                    .collect()
            })
            .collect();
        let ddp = ElasticDdp::new(&sizes, vworld, cap);
        let out = ddp.allreduce_avg(&grads);
        for i in 0..total {
            let reference: f64 =
                grads.iter().map(|g| g[i] as f64).sum::<f64>() / vworld as f64;
            prop_assert!((out[i] as f64 - reference).abs() < 1e-3, "elem {i}");
        }
    }

    /// Checkpoint/restore preserves all-reduce bits exactly.
    #[test]
    fn checkpoint_preserves_bits(
        vworld in 1u32..6,
        permseed in any::<u64>(),
        sizes in prop::collection::vec(1usize..64, 2..6),
    ) {
        let n = sizes.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = permseed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut ddp = ElasticDdp::new(&sizes, vworld, 64);
        ddp.rebuild_from_ready_order(&order, 64);
        let restored = ElasticDdp::restore(ddp.checkpoint());
        let total: usize = sizes.iter().sum();
        let grads: Vec<Vec<f32>> = (0..vworld)
            .map(|r| (0..total).map(|i| ((i + r as usize) as f32 * 0.7).sin()).collect())
            .collect();
        let a = ddp.allreduce_avg(&grads);
        let b = restored.allreduce_avg(&grads);
        prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    /// Ready-order rebuild never loses or duplicates parameters (sanity of
    /// the permutation check itself).
    #[test]
    fn ready_order_membership(sizes in sizes_strategy()) {
        let n = sizes.len();
        let strategy_result = permutation_strategy(n);
        let _ = strategy_result; // permutation generation exercised above
        let layout = BucketLayout::initial(&sizes, 256);
        let members: usize = layout.buckets().iter().map(|b| b.len()).sum();
        prop_assert_eq!(members, n);
    }
}

//! Randomized `scalar ≡ vectorized` bit-equality sweep for the ring kernels.
//!
//! `ring_allreduce` (chunk-outer / rank-middle / contiguous-run-inner) and
//! `ring_allreduce_gather` (same tree, bucket-ordered dense output) claim to
//! reproduce the scalar oracle `ring_allreduce_scalar` — element-outer,
//! rank-inner — bit for bit: every element keeps its chunk's ring order
//! starting from 0.0, only the interleaving across independent element
//! chains differs. These proptests sweep that claim across random rank
//! counts, gradient widths, and position shapes (contiguous prefixes,
//! shuffled run boundaries, sparse subsets, singletons, empty), and push it
//! up one level: the bucketed reduce path (`reduce_buckets` +
//! `assemble_avg`) against the monolithic `allreduce_avg`, both against a
//! from-scratch scalar oracle.

use comm::{ring_allreduce, ring_allreduce_gather, ring_allreduce_scalar, ElasticDdp, RingSpec};
use proptest::prelude::*;

/// Mixed-magnitude per-rank gradients (deterministic in `seed`): regrouping
/// the rank sums over such data almost always changes the bits.
fn mk_grads(nranks: usize, n: usize, seed: u32) -> Vec<Vec<f32>> {
    (0..nranks)
        .map(|r| {
            (0..n)
                .map(|i| {
                    let h = (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(seed ^ (r as u32).wrapping_mul(0x9E3779B9));
                    ((h % 1999) as f32 * 0.01 - 10.0) * 10f32.powi((h % 7) as i32 - 3)
                })
                .collect()
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Distinct positions inside `0..n`: a shuffled permutation truncated to a
/// random length. Exercises ragged chunking, run boundaries at arbitrary
/// places, and (at `keep = 0`) the empty-bucket path.
fn positions_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    (Just((0..n).collect::<Vec<usize>>()).prop_shuffle(), 0usize..=n).prop_map(
        |(mut perm, keep)| {
            perm.truncate(keep);
            perm
        },
    )
}

proptest! {
    /// ring_allreduce and ring_allreduce_gather ≡ ring_allreduce_scalar,
    /// bitwise, for random distinct positions.
    #[test]
    fn ring_vectorized_eq_scalar(
        (n, positions) in (1usize..500).prop_flat_map(|n| (Just(n), positions_strategy(n))),
        nranks in 1usize..8,
        seed in any::<u32>(),
    ) {
        let g = mk_grads(nranks, n, seed);
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let spec = RingSpec { nranks };
        let mut fast = vec![f32::NAN; n];
        let mut slow = vec![f32::NAN; n];
        ring_allreduce(&views, &positions, &spec, &mut fast);
        ring_allreduce_scalar(&views, &positions, &spec, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow), "nranks={} n={} plen={}",
            nranks, n, positions.len());
        let gathered = ring_allreduce_gather(&views, &positions, &spec);
        prop_assert_eq!(gathered.len(), positions.len());
        for (v, &p) in gathered.iter().zip(&positions) {
            prop_assert_eq!(v.to_bits(), slow[p].to_bits(), "gather diverged at position {}", p);
        }
    }

    /// The bucketed reduce path end to end: `allreduce_avg` (vectorized ring
    /// per bucket) and every partitioning of `reduce_buckets` +
    /// `assemble_avg` must all reproduce a from-scratch oracle built on the
    /// scalar ring kernel, bit for bit, across random layouts.
    #[test]
    fn bucketed_reduce_eq_scalar_oracle(
        param_sizes in prop::collection::vec(1usize..150, 1..8),
        vworld in 1u32..6,
        cap_words in 4usize..200,
        seed in any::<u32>(),
    ) {
        let ddp = ElasticDdp::new(&param_sizes, vworld, cap_words * 4);
        let n: usize = param_sizes.iter().sum();
        let g = mk_grads(vworld as usize, n, seed);

        // Oracle: scalar ring over each bucket's positions, then the same
        // single average multiply — no vectorized code on this path.
        let views: Vec<&[f32]> = g.iter().map(|v| v.as_slice()).collect();
        let spec = RingSpec { nranks: vworld as usize };
        let mut oracle = vec![0.0f32; n];
        for bucket in ddp.layout().buckets() {
            ring_allreduce_scalar(&views, &ddp.layout().bucket_positions(bucket), &spec, &mut oracle);
        }
        for v in &mut oracle {
            *v *= 1.0 / vworld as f32;
        }

        let monolithic = ddp.allreduce_avg(&g);
        prop_assert_eq!(bits(&monolithic), bits(&oracle), "monolithic path diverged");

        for parts in 1..=3usize {
            let partials: Vec<(usize, Vec<f32>)> = (0..parts)
                .flat_map(|p| ddp.reduce_buckets(&g, &ddp.partition_buckets(p, parts)))
                .collect();
            let assembled = ddp.assemble_avg(&partials);
            prop_assert_eq!(bits(&assembled), bits(&oracle), "parts={} diverged", parts);
        }
    }
}

//! RNG-bearing data augmentation.
//!
//! Augmentation is the reason data-worker *state* matters at all: every
//! random flip/crop consumes generator draws, so reproducing a batch after
//! an elastic restart requires restoring the exact generator position the
//! batch was (or would have been) prepared with. The paper tracks those
//! positions (Ri-j) in the queuing buffer; [`crate::loader`] does the same
//! with [`esrng::RngState`]s.

use esrng::EsRng;
use tensor::Tensor;

/// Augmentation configuration (CIFAR-style flip + shift + brightness noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of horizontal flip.
    pub flip_prob: f32,
    /// Maximum |shift| in pixels for the random translation ("random crop
    /// with padding" equivalent).
    pub max_shift: usize,
    /// Stddev of additive brightness noise (0 disables the draw).
    pub brightness_sigma: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig { flip_prob: 0.5, max_shift: 1, brightness_sigma: 0.05 }
    }
}

/// Applies augmentations, consuming draws from a caller-provided generator.
#[derive(Debug, Clone)]
pub struct Augmenter {
    config: AugmentConfig,
}

impl Augmenter {
    /// Build an augmenter.
    pub fn new(config: AugmentConfig) -> Self {
        Augmenter { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AugmentConfig {
        &self.config
    }

    /// Augment one `[c,h,w]` image in place of a fresh tensor. The number of
    /// RNG draws consumed is *constant* per call (draws happen even when the
    /// flip doesn't trigger), so generator positions advance identically on
    /// every path — a property the restore logic relies on.
    pub fn apply(&self, img: &Tensor, rng: &mut EsRng) -> Tensor {
        let s = img.shape();
        assert_eq!(s.len(), 3, "augmenter expects [c,h,w]");
        let (c, h, w) = (s[0], s[1], s[2]);
        let flip = rng.bernoulli(self.config.flip_prob);
        let span = 2 * self.config.max_shift as u32 + 1;
        let dy = rng.next_below(span) as isize - self.config.max_shift as isize;
        let dx = rng.next_below(span) as isize - self.config.max_shift as isize;
        let bright = if self.config.brightness_sigma > 0.0 {
            rng.normal_f32() * self.config.brightness_sigma
        } else {
            0.0
        };

        let id = img.data();
        let mut out = Tensor::zeros(s);
        let od = out.data_mut();
        for ch in 0..c {
            for y in 0..h {
                let sy = y as isize + dy;
                for x in 0..w {
                    let xx = if flip { w - 1 - x } else { x };
                    let sx = xx as isize + dx;
                    let v = if sy >= 0 && (sy as usize) < h && sx >= 0 && (sx as usize) < w {
                        id[(ch * h + sy as usize) * w + sx as usize]
                    } else {
                        0.0
                    };
                    od[(ch * h + y) * w + x] = v + bright;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{StreamKey, StreamKind};

    fn img() -> Tensor {
        Tensor::from_vec((0..48).map(|i| i as f32).collect(), &[3, 4, 4])
    }

    fn rng_at(pos: u64) -> EsRng {
        let mut r = EsRng::for_stream(11, StreamKey::ranked(StreamKind::Augmentation, 0));
        r.skip(pos);
        r
    }

    #[test]
    fn same_rng_state_same_output() {
        let a = Augmenter::new(AugmentConfig::default());
        let out1 = a.apply(&img(), &mut rng_at(0));
        let out2 = a.apply(&img(), &mut rng_at(0));
        assert!(out1.bitwise_eq(&out2));
    }

    #[test]
    fn different_rng_state_usually_differs() {
        let a = Augmenter::new(AugmentConfig::default());
        let outs: Vec<Tensor> = (0..8).map(|i| a.apply(&img(), &mut rng_at(i * 10))).collect();
        let distinct = outs.iter().filter(|o| !o.bitwise_eq(&outs[0])).count();
        assert!(distinct > 0, "augmentation should vary with generator position");
    }

    #[test]
    fn draw_count_is_constant() {
        // Whatever the random outcomes, the generator advances by the same
        // number of draws — verified by checking the state after two apply()
        // calls from different positions advanced equally.
        let a = Augmenter::new(AugmentConfig::default());
        let mut r1 = rng_at(0);
        let mut r2 = rng_at(1000);
        // Record deltas via a paired reference rng.
        let s1_before = r1.state();
        a.apply(&img(), &mut r1);
        let s1_after = r1.state();
        let s2_before = r2.state();
        a.apply(&img(), &mut r2);
        let s2_after = r2.state();
        let delta = |b: esrng::RngState, a: esrng::RngState| {
            (a.counter_lo - b.counter_lo) * 4 + (a.lane as u64) - (b.lane as u64)
        };
        // Note: next_below may consume a variable number of draws under
        // rejection; with span=3 rejection is astronomically rare, and the
        // flip/brightness draws are unconditional.
        assert_eq!(delta(s1_before, s1_after), delta(s2_before, s2_after));
    }

    #[test]
    fn no_augment_config_is_identity_without_shift() {
        let cfg = AugmentConfig { flip_prob: 0.0, max_shift: 0, brightness_sigma: 0.0 };
        let a = Augmenter::new(cfg);
        let out = a.apply(&img(), &mut rng_at(0));
        assert!(out.bitwise_eq(&img()));
    }

    #[test]
    fn flip_reverses_rows() {
        let cfg = AugmentConfig { flip_prob: 1.0, max_shift: 0, brightness_sigma: 0.0 };
        let a = Augmenter::new(cfg);
        let out = a.apply(&img(), &mut rng_at(0));
        // First row of channel 0 was [0,1,2,3]; flipped is [3,2,1,0].
        assert_eq!(&out.data()[0..4], &[3.0, 2.0, 1.0, 0.0]);
    }
}

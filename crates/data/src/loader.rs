//! The data-loading pipeline: sharded loader, shared data-worker pool, and
//! the queuing buffer of RNG states.
//!
//! Layout mirrors the paper's Figure 7. A [`ShardedLoader`] produces the
//! mini-batches of each virtual rank in order, consuming a per-rank
//! augmentation RNG stream. A [`DataWorkerPool`] shares `n_workers` workers
//! among *all* ESTs of one EasyScale worker (instead of `n_workers × n_ests`
//! as naive scaling would), prefetching batches ahead of training. Because
//! workers run ahead, the generator state each prepared batch *started from*
//! is parked in a [`QueuingBuffer`]; checkpoints cut at the *consumption*
//! frontier, so a restore regenerates the exact same batches the ESTs had
//! not yet consumed.

use crate::{Augmenter, Dataset, DistributedSampler};
use esrng::{RngState, RngStream, StreamKey, StreamKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use tensor::Tensor;

/// One prepared mini-batch for one virtual rank.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Epoch this batch belongs to.
    pub epoch: u64,
    /// Batch index within the epoch (per replica).
    pub batch_idx: usize,
    /// Owning virtual rank.
    pub vrank: u32,
    /// `[batch, …feature_shape]` features (augmented).
    pub features: Tensor,
    /// Labels.
    pub labels: Vec<u32>,
    /// Dataset indices the batch was drawn from.
    pub indices: Vec<u32>,
}

/// Position of one virtual rank's data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CursorState {
    /// Epoch.
    pub epoch: u64,
    /// Next batch index within the epoch.
    pub batch: usize,
    /// Augmentation generator state at that point.
    pub aug_state: RngState,
}

/// Checkpointable state of a loader/pool: one cursor per virtual rank at the
/// consumption frontier. This is part of the "extra states" of the paper's
/// on-demand checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoaderCheckpoint {
    /// Per-vrank cursors, indexed by vrank.
    pub cursors: Vec<CursorState>,
    /// Global seed the streams were opened under.
    pub seed: u64,
}

struct Cursor {
    epoch: u64,
    batch: usize,
    aug: RngStream,
}

/// Produces each virtual rank's mini-batches in order.
pub struct ShardedLoader {
    dataset: Arc<dyn Dataset>,
    sampler: DistributedSampler,
    augmenter: Option<Augmenter>,
    batch_size: usize,
    seed: u64,
    cursors: Vec<Cursor>,
    /// Cached epoch permutations (different ranks may sit in different
    /// epochs, so a couple of entries are kept). Pure cache: contents are a
    /// deterministic function of (seed, epoch), so this cannot affect bits.
    perm_cache: Vec<(u64, Vec<u32>)>,
}

impl ShardedLoader {
    /// Build a loader for `n_replicas` virtual ranks with per-replica
    /// `batch_size`.
    pub fn new(
        dataset: Arc<dyn Dataset>,
        n_replicas: u32,
        batch_size: usize,
        seed: u64,
        shuffle: bool,
        augmenter: Option<Augmenter>,
    ) -> Self {
        let sampler = DistributedSampler::new(dataset.len(), n_replicas, seed, shuffle);
        let cursors = (0..n_replicas)
            .map(|r| Cursor {
                epoch: 0,
                batch: 0,
                aug: RngStream::open(seed, StreamKey::indexed(StreamKind::Augmentation, r, 0)),
            })
            .collect();
        ShardedLoader {
            dataset,
            sampler,
            augmenter,
            batch_size,
            seed,
            cursors,
            perm_cache: Vec::new(),
        }
    }

    /// Ensure the permutation for `epoch` is the last cache entry.
    fn ensure_perm(&mut self, epoch: u64) {
        if let Some(i) = self.perm_cache.iter().position(|(e, _)| *e == epoch) {
            let entry = self.perm_cache.remove(i);
            self.perm_cache.push(entry);
        } else {
            self.perm_cache.push((epoch, self.sampler.epoch_permutation(epoch)));
            if self.perm_cache.len() > 3 {
                self.perm_cache.remove(0);
            }
        }
    }

    /// Per-replica batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of virtual ranks.
    pub fn n_replicas(&self) -> u32 {
        self.sampler.n_replicas()
    }

    /// Mini-batches each replica contributes per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.sampler.batches_per_epoch(self.batch_size)
    }

    /// The cursor (epoch, batch, RNG state) of a rank — the state a batch
    /// prepared *next* would start from.
    pub fn cursor(&self, vrank: u32) -> CursorState {
        let c = &self.cursors[vrank as usize];
        CursorState { epoch: c.epoch, batch: c.batch, aug_state: c.aug.capture().rng }
    }

    /// Prepare the next mini-batch of `vrank`, advancing its cursor.
    pub fn next_batch(&mut self, vrank: u32) -> Batch {
        let bpe = self.batches_per_epoch();
        assert!(bpe > 0, "batch size {} exceeds shard size", self.batch_size);
        let (epoch, batch_idx) = {
            let c = &self.cursors[vrank as usize];
            (c.epoch, c.batch)
        };
        self.ensure_perm(epoch);
        let perm = &self.perm_cache.last().expect("ensure_perm populated").1;
        let indices = self.sampler.batch_indices_in(perm, vrank, batch_idx, self.batch_size);
        let c = &mut self.cursors[vrank as usize];

        let feat_shape = self.dataset.feature_shape();
        let feat_len: usize = feat_shape.iter().product();
        let mut features = Vec::with_capacity(self.batch_size * feat_len);
        let mut labels = Vec::with_capacity(self.batch_size);
        for &idx in &indices {
            let (x, y) = self.dataset.sample(idx);
            let x = match &self.augmenter {
                Some(a) => a.apply(&x, c.aug.rng()),
                None => x,
            };
            features.extend_from_slice(x.data());
            labels.push(y);
        }
        let mut shape = vec![self.batch_size];
        shape.extend_from_slice(&feat_shape);

        // Advance the cursor; epoch rollover re-opens the augmentation
        // stream at the new epoch index so state is a pure function of
        // (seed, vrank, epoch) + batches consumed.
        c.batch += 1;
        if c.batch >= bpe {
            c.batch = 0;
            c.epoch += 1;
            c.aug = RngStream::open(
                self.seed,
                StreamKey::indexed(StreamKind::Augmentation, vrank, c.epoch),
            );
        }

        Batch {
            epoch,
            batch_idx,
            vrank,
            features: Tensor::from_vec(features, &shape),
            labels,
            indices,
        }
    }

    /// Capture every rank's cursor.
    pub fn checkpoint(&self) -> LoaderCheckpoint {
        LoaderCheckpoint {
            cursors: (0..self.n_replicas()).map(|r| self.cursor(r)).collect(),
            seed: self.seed,
        }
    }

    /// Restore cursors from a checkpoint (dataset/sampler config must match;
    /// only positions are restored).
    pub fn restore(&mut self, ckpt: &LoaderCheckpoint) {
        assert_eq!(ckpt.cursors.len(), self.cursors.len(), "replica count mismatch in restore");
        assert_eq!(ckpt.seed, self.seed, "seed mismatch in restore");
        for (c, s) in self.cursors.iter_mut().zip(&ckpt.cursors) {
            c.epoch = s.epoch;
            c.batch = s.batch;
            c.aug = RngStream::restore(esrng::stream::StreamState {
                key: c.aug.key(),
                rng: s.aug_state,
            });
        }
    }
}

/// The queuing buffer of Figure 7: generator states (Ri-j) for mini-batches
/// that have been prepared by data workers but not yet consumed by ESTs.
#[derive(Debug, Clone, Default)]
pub struct QueuingBuffer {
    entries: Vec<BufferEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufferEntry {
    vrank: u32,
    epoch: u64,
    batch: usize,
    state: RngState,
    /// Which data worker prepared it (round-robin attribution — the paper's
    /// "data workers take turns").
    worker: u32,
}

impl QueuingBuffer {
    /// Record a prepared batch's starting RNG state.
    fn push(&mut self, vrank: u32, epoch: u64, batch: usize, state: RngState, worker: u32) {
        self.entries.push(BufferEntry { vrank, epoch, batch, state, worker });
    }

    /// Drop the entry for a consumed batch.
    fn consume(&mut self, vrank: u32, epoch: u64, batch: usize) {
        self.entries.retain(|e| !(e.vrank == vrank && e.epoch == epoch && e.batch == batch));
    }

    /// Number of prepared-but-unconsumed batches tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The earliest (consumption-frontier) entry for a rank, if any.
    pub fn frontier(&self, vrank: u32) -> Option<(u64, usize, RngState)> {
        self.entries
            .iter()
            .filter(|e| e.vrank == vrank)
            .min_by_key(|e| (e.epoch, e.batch))
            .map(|e| (e.epoch, e.batch, e.state))
    }
}

struct PreparedBatch {
    batch: Batch,
    rng_before: RngState,
}

/// Shared data-worker pool: `n_workers` workers serve *all* local ESTs,
/// prefetching `prefetch_depth` batches per rank.
pub struct DataWorkerPool {
    loader: ShardedLoader,
    n_workers: u32,
    prefetch_depth: usize,
    queues: Vec<VecDeque<PreparedBatch>>,
    buffer: QueuingBuffer,
    rr_worker: u32,
    prepared: u64,
    consumed: u64,
}

impl DataWorkerPool {
    /// Wrap a loader with a pool of `n_workers` shared workers.
    pub fn new(loader: ShardedLoader, n_workers: u32, prefetch_depth: usize) -> Self {
        let n = loader.n_replicas() as usize;
        DataWorkerPool {
            loader,
            n_workers: n_workers.max(1),
            prefetch_depth: prefetch_depth.max(1),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            buffer: QueuingBuffer::default(),
            rr_worker: 0,
            prepared: 0,
            consumed: 0,
        }
    }

    /// Worker count (the quantity data-worker sharing reduces from
    /// `per_worker × n_ests` to `per_worker`, §5.1.2).
    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// Batches prepared so far.
    pub fn prepared_count(&self) -> u64 {
        self.prepared
    }

    /// Batches consumed so far.
    pub fn consumed_count(&self) -> u64 {
        self.consumed
    }

    /// The queuing buffer (inspection/checkpoint).
    pub fn buffer(&self) -> &QueuingBuffer {
        &self.buffer
    }

    /// Mini-batches per epoch per rank.
    pub fn batches_per_epoch(&self) -> usize {
        self.loader.batches_per_epoch()
    }

    fn fill(&mut self, vrank: u32) {
        while self.queues[vrank as usize].len() < self.prefetch_depth {
            let before = self.loader.cursor(vrank);
            let batch = self.loader.next_batch(vrank);
            self.buffer.push(vrank, batch.epoch, batch.batch_idx, before.aug_state, self.rr_worker);
            self.rr_worker = (self.rr_worker + 1) % self.n_workers;
            self.prepared += 1;
            self.queues[vrank as usize]
                .push_back(PreparedBatch { batch, rng_before: before.aug_state });
        }
    }

    /// Deliver the next batch for `vrank` (prefetching as needed).
    pub fn next_batch(&mut self, vrank: u32) -> Batch {
        self.fill(vrank);
        let prepared = self.queues[vrank as usize].pop_front().expect("fill guarantees a batch");
        self.buffer.consume(vrank, prepared.batch.epoch, prepared.batch.batch_idx);
        self.consumed += 1;
        prepared.batch
    }

    /// Checkpoint at the *consumption* frontier: prefetched-but-unconsumed
    /// batches are represented by their starting RNG states so a restore
    /// regenerates them bit-identically.
    pub fn checkpoint(&self) -> LoaderCheckpoint {
        let mut ckpt = self.loader.checkpoint();
        for (r, q) in self.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                ckpt.cursors[r] = CursorState {
                    epoch: front.batch.epoch,
                    batch: front.batch.batch_idx,
                    aug_state: front.rng_before,
                };
            }
        }
        ckpt
    }

    /// Restore: reposition the loader at the consumption frontier and drop
    /// all in-flight prefetched work (it will be regenerated identically).
    pub fn restore(&mut self, ckpt: &LoaderCheckpoint) {
        self.loader.restore(ckpt);
        for q in &mut self.queues {
            q.clear();
        }
        self.buffer = QueuingBuffer::default();
    }

    /// Consume the inner loader back out (e.g. to rebuild with a different
    /// worker count after re-scaling).
    pub fn into_loader(self) -> ShardedLoader {
        self.loader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AugmentConfig, SyntheticImageDataset};

    fn dataset() -> Arc<dyn Dataset> {
        Arc::new(SyntheticImageDataset::cifar_like(3, 256))
    }

    fn loader(n: u32) -> ShardedLoader {
        ShardedLoader::new(
            dataset(),
            n,
            8,
            99,
            true,
            Some(Augmenter::new(AugmentConfig::default())),
        )
    }

    #[test]
    fn batches_are_deterministic_across_loader_instances() {
        let mut a = loader(4);
        let mut b = loader(4);
        for r in 0..4 {
            for _ in 0..5 {
                let ba = a.next_batch(r);
                let bb = b.next_batch(r);
                assert!(ba.features.bitwise_eq(&bb.features));
                assert_eq!(ba.labels, bb.labels);
            }
        }
    }

    #[test]
    fn rank_interleaving_order_does_not_matter() {
        // Placement independence: whether rank 0's batches are produced
        // before or after rank 1's, contents are identical.
        let mut a = loader(2);
        let mut b = loader(2);
        let a0: Vec<Batch> = (0..3).map(|_| a.next_batch(0)).collect();
        let _a1: Vec<Batch> = (0..3).map(|_| a.next_batch(1)).collect();
        let _b1: Vec<Batch> = (0..3).map(|_| b.next_batch(1)).collect();
        let b0: Vec<Batch> = (0..3).map(|_| b.next_batch(0)).collect();
        for (x, y) in a0.iter().zip(&b0) {
            assert!(x.features.bitwise_eq(&y.features));
        }
    }

    #[test]
    fn checkpoint_restore_resumes_identical_stream() {
        let mut a = loader(2);
        for _ in 0..7 {
            a.next_batch(0);
            a.next_batch(1);
        }
        let ckpt = a.checkpoint();
        let expect: Vec<Batch> = (0..5).map(|_| a.next_batch(0)).collect();

        let mut b = loader(2);
        b.restore(&ckpt);
        let got: Vec<Batch> = (0..5).map(|_| b.next_batch(0)).collect();
        for (x, y) in expect.iter().zip(&got) {
            assert!(x.features.bitwise_eq(&y.features), "restored stream must match");
            assert_eq!(x.indices, y.indices);
        }
    }

    #[test]
    fn epoch_rollover_reshuffles() {
        let mut l = ShardedLoader::new(dataset(), 2, 8, 99, true, None);
        let bpe = l.batches_per_epoch();
        let first_epoch0 = l.next_batch(0).indices.clone();
        for _ in 1..bpe {
            l.next_batch(0);
        }
        let first_epoch1 = l.next_batch(0);
        assert_eq!(first_epoch1.epoch, 1);
        assert_eq!(first_epoch1.batch_idx, 0);
        assert_ne!(first_epoch1.indices, first_epoch0);
    }

    #[test]
    fn pool_delivers_same_batches_as_bare_loader() {
        let mut bare = loader(4);
        let mut pool = DataWorkerPool::new(loader(4), 3, 2);
        for r in 0..4 {
            for _ in 0..6 {
                let a = bare.next_batch(r);
                let b = pool.next_batch(r);
                assert!(a.features.bitwise_eq(&b.features), "prefetching must not change contents");
            }
        }
    }

    #[test]
    fn pool_tracks_inflight_states() {
        let mut pool = DataWorkerPool::new(loader(2), 3, 4);
        pool.next_batch(0);
        // Depth 4: after one consume, 3 batches for rank 0 remain in flight.
        assert_eq!(pool.buffer().len(), 3);
        assert!(pool.buffer().frontier(0).is_some());
        assert!(pool.buffer().frontier(1).is_none(), "rank 1 never requested");
    }

    #[test]
    fn pool_checkpoint_cuts_at_consumption_frontier() {
        let mut pool = DataWorkerPool::new(loader(2), 3, 4);
        for _ in 0..5 {
            pool.next_batch(0);
            pool.next_batch(1);
        }
        let ckpt = pool.checkpoint();
        let expect: Vec<Batch> = (0..6).map(|_| pool.next_batch(0)).collect();

        let mut fresh = DataWorkerPool::new(loader(2), 5, 2); // different pool shape on purpose
        fresh.restore(&ckpt);
        let got: Vec<Batch> = (0..6).map(|_| fresh.next_batch(0)).collect();
        for (x, y) in expect.iter().zip(&got) {
            assert!(
                x.features.bitwise_eq(&y.features),
                "worker count/prefetch depth must not matter"
            );
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.batch_idx, y.batch_idx);
        }
    }

    #[test]
    fn shared_pool_worker_count_is_independent_of_est_count() {
        // The §5.1.2 point: 16 ESTs share the configured workers instead of
        // multiplying them.
        let pool = DataWorkerPool::new(loader(16), 4, 2);
        assert_eq!(pool.n_workers(), 4);
    }
}

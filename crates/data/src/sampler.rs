//! The distributed sampler: epoch permutation + per-virtual-rank sharding.
//!
//! Mirrors `torch.utils.data.DistributedSampler`: one global permutation per
//! epoch (seeded by `seed + epoch`), padded so every replica gets the same
//! number of samples, then sharded by *virtual* rank with stride `n`. The
//! virtual rank — not the physical worker id — is the sharding key, which is
//! the property that makes the data order placement-independent.

use esrng::{EsRng, StreamKey, StreamKind};

/// Per-epoch sharded index generator.
#[derive(Debug, Clone)]
pub struct DistributedSampler {
    dataset_len: usize,
    n_replicas: u32,
    seed: u64,
    shuffle: bool,
}

impl DistributedSampler {
    /// Build a sampler for `n_replicas` logical workers (ESTs).
    pub fn new(dataset_len: usize, n_replicas: u32, seed: u64, shuffle: bool) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        assert!(dataset_len > 0, "empty dataset");
        DistributedSampler { dataset_len, n_replicas, seed, shuffle }
    }

    /// Number of logical replicas.
    pub fn n_replicas(&self) -> u32 {
        self.n_replicas
    }

    /// Samples each replica sees per epoch (dataset padded up to a multiple
    /// of `n_replicas` by wrapping, as PyTorch does with `drop_last=False`).
    pub fn samples_per_replica(&self) -> usize {
        self.dataset_len.div_ceil(self.n_replicas as usize)
    }

    /// Mini-batches per replica per epoch for a given per-replica batch size
    /// (partial trailing batches dropped, PyTorch `drop_last=True` style —
    /// the common distributed-training configuration).
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.samples_per_replica() / batch_size
    }

    /// The global permutation for an epoch (identity when shuffling is off).
    pub fn epoch_permutation(&self, epoch: u64) -> Vec<u32> {
        let padded = self.samples_per_replica() * self.n_replicas as usize;
        let mut base: Vec<u32> = if self.shuffle {
            let mut rng =
                EsRng::for_stream(self.seed, StreamKey::indexed(StreamKind::Sampler, 0, epoch));
            rng.permutation(self.dataset_len)
        } else {
            (0..self.dataset_len as u32).collect()
        };
        // Pad by wrapping from the front, like DistributedSampler.
        for i in 0..(padded - self.dataset_len) {
            let v = base[i % self.dataset_len];
            base.push(v);
        }
        base
    }

    /// The indices of mini-batch `batch` for replica `vrank` in `epoch`.
    ///
    /// Sharding is strided: replica r takes positions r, r+n, r+2n, … of the
    /// padded permutation.
    pub fn batch_indices(
        &self,
        epoch: u64,
        vrank: u32,
        batch: usize,
        batch_size: usize,
    ) -> Vec<u32> {
        self.batch_indices_in(&self.epoch_permutation(epoch), vrank, batch, batch_size)
    }

    /// Like [`DistributedSampler::batch_indices`], against a permutation the
    /// caller already computed with [`DistributedSampler::epoch_permutation`]
    /// — avoids regenerating the O(dataset) permutation per batch (callers
    /// that iterate a whole epoch should cache it).
    pub fn batch_indices_in(
        &self,
        perm: &[u32],
        vrank: u32,
        batch: usize,
        batch_size: usize,
    ) -> Vec<u32> {
        assert!(vrank < self.n_replicas, "vrank {vrank} out of range");
        assert!(
            batch * batch_size + batch_size <= self.samples_per_replica(),
            "batch {batch} (size {batch_size}) exceeds the {}-sample shard",
            self.samples_per_replica()
        );
        assert_eq!(
            perm.len(),
            self.samples_per_replica() * self.n_replicas as usize,
            "permutation length mismatch"
        );
        let n = self.n_replicas as usize;
        (0..batch_size)
            .map(|i| {
                let shard_pos = batch * batch_size + i;
                perm[shard_pos * n + vrank as usize]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_padded_permutation() {
        let s = DistributedSampler::new(103, 4, 9, true);
        let per = s.samples_per_replica();
        assert_eq!(per, 26);
        let mut all: Vec<u32> = Vec::new();
        for r in 0..4 {
            for b in 0..per {
                all.extend(s.batch_indices(0, r, b, 1));
            }
        }
        assert_eq!(all.len(), 104);
        // Every dataset index appears at least once; padding duplicates one.
        let mut seen = vec![0u32; 103];
        for &i in &all {
            seen[i as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c >= 1));
        assert_eq!(seen.iter().sum::<u32>(), 104);
    }

    #[test]
    fn epochs_reshuffle_deterministically() {
        let s = DistributedSampler::new(100, 2, 5, true);
        let e0 = s.epoch_permutation(0);
        let e1 = s.epoch_permutation(1);
        assert_ne!(e0, e1, "different epochs shuffle differently");
        assert_eq!(e0, s.epoch_permutation(0), "same epoch always identical");
    }

    #[test]
    fn no_shuffle_is_identity_order() {
        let s = DistributedSampler::new(8, 2, 5, false);
        assert_eq!(s.batch_indices(0, 0, 0, 2), vec![0, 2]);
        assert_eq!(s.batch_indices(0, 1, 0, 2), vec![1, 3]);
        assert_eq!(s.batch_indices(3, 1, 1, 2), vec![5, 7], "epoch doesn't matter without shuffle");
    }

    #[test]
    fn vrank_sharding_is_placement_independent() {
        // The same (epoch, vrank, batch) triple yields the same indices no
        // matter how the sampler object was created or used before.
        let s1 = DistributedSampler::new(1000, 8, 77, true);
        let s2 = DistributedSampler::new(1000, 8, 77, true);
        let _ = s2.epoch_permutation(5); // unrelated use
        assert_eq!(s1.batch_indices(2, 3, 6, 16), s2.batch_indices(2, 3, 6, 16));
    }

    #[test]
    fn batches_per_epoch_drops_partial() {
        let s = DistributedSampler::new(100, 4, 0, false);
        // 25 per replica; batch 8 → 3 full batches.
        assert_eq!(s.batches_per_epoch(8), 3);
    }

    #[test]
    #[should_panic(expected = "vrank")]
    fn vrank_bounds_checked() {
        DistributedSampler::new(10, 2, 0, false).batch_indices(0, 2, 0, 1);
    }
}

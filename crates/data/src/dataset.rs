//! Synthetic datasets standing in for CIFAR10 / ImageNet / SQuAD /
//! MovieLens (per the substitution table in DESIGN.md).
//!
//! Samples are *pure functions* of `(dataset seed, index)` — generated on
//! demand from a Philox stream, never stored. This keeps multi-GB "datasets"
//! free while exercising exactly the code paths real data would: indexing,
//! sharding, shuffling, augmentation, label handling.

use esrng::{EsRng, StreamKey, StreamKind};
use tensor::Tensor;

/// A labelled dataset with deterministic random access.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;
    /// True if empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Shape of one sample's features.
    fn feature_shape(&self) -> Vec<usize>;
    /// Number of label classes.
    fn num_classes(&self) -> u32;
    /// Fetch sample `idx` (features, label). Must be pure: same `idx`, same
    /// bits, forever.
    fn sample(&self, idx: u32) -> (Tensor, u32);
}

/// CIFAR-like synthetic image classification: `num_classes` Gaussian
/// clusters in pixel space. Each class has a fixed prototype image; a sample
/// is its class prototype plus per-sample noise. Linearly separable enough
/// for small models to show real learning curves (Figs 2–4 need accuracy to
/// *move*), noisy enough that per-class accuracy varies.
#[derive(Debug, Clone)]
pub struct SyntheticImageDataset {
    seed: u64,
    len: usize,
    channels: usize,
    height: usize,
    width: usize,
    classes: u32,
    noise_sigma: f32,
    prototypes: Vec<Vec<f32>>,
    /// Index offset: sample `i` is generated as underlying sample
    /// `i + offset`, letting train/eval splits share prototypes (same task)
    /// while drawing disjoint samples.
    offset: u32,
}

impl SyntheticImageDataset {
    /// Build a dataset. `seed` fixes the prototypes and every sample.
    pub fn new(
        seed: u64,
        len: usize,
        channels: usize,
        height: usize,
        width: usize,
        classes: u32,
    ) -> Self {
        let dim = channels * height * width;
        let prototypes = (0..classes)
            .map(|c| {
                let mut rng =
                    EsRng::for_stream(seed, StreamKey::indexed(StreamKind::User, 0, c as u64));
                (0..dim).map(|_| rng.normal_f32()).collect()
            })
            .collect();
        SyntheticImageDataset {
            seed,
            len,
            channels,
            height,
            width,
            classes,
            noise_sigma: 0.6,
            prototypes,
            offset: 0,
        }
    }

    /// The standard CIFAR10-like configuration used across the experiments:
    /// 3×8×8 images, 10 classes.
    pub fn cifar_like(seed: u64, len: usize) -> Self {
        Self::new(seed, len, 3, 8, 8, 10)
    }

    /// Override the per-sample noise level.
    pub fn with_noise(mut self, sigma: f32) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Shift the underlying sample indices by `offset` — the held-out split
    /// of the same task (same prototypes, disjoint samples).
    pub fn with_offset(mut self, offset: u32) -> Self {
        self.offset = offset;
        self
    }

    /// The standard held-out evaluation split: same task as the training
    /// set of `train_len` samples, `len` fresh samples beyond it.
    pub fn eval_split(seed: u64, train_len: usize, len: usize) -> Self {
        Self::cifar_like(seed, len).with_offset(train_len as u32)
    }
}

impl Dataset for SyntheticImageDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn feature_shape(&self) -> Vec<usize> {
        vec![self.channels, self.height, self.width]
    }

    fn num_classes(&self) -> u32 {
        self.classes
    }

    fn sample(&self, idx: u32) -> (Tensor, u32) {
        assert!((idx as usize) < self.len, "sample index {idx} out of range {}", self.len);
        let mut rng = EsRng::for_stream(
            self.seed,
            StreamKey::indexed(StreamKind::User, 1, (idx + self.offset) as u64),
        );
        let label = rng.next_below(self.classes);
        let proto = &self.prototypes[label as usize];
        let data: Vec<f32> =
            proto.iter().map(|&p| p + self.noise_sigma * rng.normal_f32()).collect();
        (Tensor::from_vec(data, &self.feature_shape()), label)
    }
}

/// SQuAD/MovieLens-like synthetic sequence data: token-id sequences with a
/// class label correlated with the token distribution. Consumed by the
/// attention/embedding workload proxies (Bert, Electra, NeuMF, SwinTr).
#[derive(Debug, Clone)]
pub struct SyntheticSequenceDataset {
    seed: u64,
    len: usize,
    seq_len: usize,
    vocab: u32,
    classes: u32,
    offset: u32,
}

impl SyntheticSequenceDataset {
    /// Build a dataset of `len` sequences of `seq_len` tokens over `vocab`.
    pub fn new(seed: u64, len: usize, seq_len: usize, vocab: u32, classes: u32) -> Self {
        SyntheticSequenceDataset { seed, len, seq_len, vocab, classes, offset: 0 }
    }

    /// Shift the underlying sample indices (held-out split of the same task).
    pub fn with_offset(mut self, offset: u32) -> Self {
        self.offset = offset;
        self
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Token ids of sample `idx` (features are the embedded-token *indices*
    /// encoded as f32 for transport; models embed them).
    pub fn tokens(&self, idx: u32) -> (Vec<u32>, u32) {
        let mut rng = EsRng::for_stream(
            self.seed,
            StreamKey::indexed(StreamKind::User, 2, (idx + self.offset) as u64),
        );
        let label = rng.next_below(self.classes);
        // Bias token draws by label so the task is learnable: class c prefers
        // the vocabulary band starting at c * vocab / classes.
        let band = self.vocab / self.classes;
        let tokens = (0..self.seq_len)
            .map(|_| {
                if rng.bernoulli(0.65) {
                    label * band + rng.next_below(band.max(1))
                } else {
                    rng.next_below(self.vocab)
                }
            })
            .collect();
        (tokens, label)
    }
}

impl Dataset for SyntheticSequenceDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn feature_shape(&self) -> Vec<usize> {
        vec![self.seq_len]
    }

    fn num_classes(&self) -> u32 {
        self.classes
    }

    fn sample(&self, idx: u32) -> (Tensor, u32) {
        let (tokens, label) = self.tokens(idx);
        let data = tokens.into_iter().map(|t| t as f32).collect();
        (Tensor::from_vec(data, &[self.seq_len]), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_pure_functions_of_index() {
        let d = SyntheticImageDataset::cifar_like(7, 100);
        let (a, la) = d.sample(42);
        let (b, lb) = d.sample(42);
        assert!(a.bitwise_eq(&b));
        assert_eq!(la, lb);
    }

    #[test]
    fn different_indices_differ() {
        let d = SyntheticImageDataset::cifar_like(7, 100);
        let (a, _) = d.sample(1);
        let (b, _) = d.sample(2);
        assert!(!a.bitwise_eq(&b));
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = SyntheticImageDataset::cifar_like(7, 2000);
        let mut seen = [false; 10];
        for i in 0..2000 {
            seen[d.sample(i).1 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_class_samples_cluster() {
        let d = SyntheticImageDataset::cifar_like(7, 5000);
        // Find two samples of class 0 and one of another class; within-class
        // distance must beat across-class distance on average.
        let mut class0 = Vec::new();
        let mut class1 = Vec::new();
        for i in 0..5000 {
            let (x, l) = d.sample(i);
            if l == 0 && class0.len() < 20 {
                class0.push(x);
            } else if l == 1 && class1.len() < 20 {
                class1.push(x);
            }
            if class0.len() >= 20 && class1.len() >= 20 {
                break;
            }
        }
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data().iter().zip(b.data()).map(|(x, y)| (x - y).powi(2)).sum()
        };
        let within: f32 = class0.windows(2).map(|w| dist(&w[0], &w[1])).sum::<f32>() / 19.0;
        let across: f32 = class0.iter().zip(&class1).map(|(a, b)| dist(a, b)).sum::<f32>() / 20.0;
        assert!(across > within * 1.2, "across {across} should exceed within {within}");
    }

    #[test]
    fn sequence_dataset_tokens_in_vocab() {
        let d = SyntheticSequenceDataset::new(3, 100, 16, 1000, 10);
        for i in 0..100 {
            let (tokens, label) = d.tokens(i);
            assert_eq!(tokens.len(), 16);
            assert!(tokens.iter().all(|&t| t < 1000));
            assert!(label < 10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        SyntheticImageDataset::cifar_like(7, 10).sample(10);
    }
}

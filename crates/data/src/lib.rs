//! Data pipeline: datasets, distributed sampling, augmentation, and shared
//! data workers.
//!
//! This is the part of the training stack the paper's §3.2 "Optimizing data
//! pre-processing" is about. PyTorch-style pipelines run asynchronous data
//! workers ahead of the trainer; those workers consume RNG (augmentation),
//! which makes their *progress* part of the training state. EasyScale (a)
//! shares one data-worker pool among all ESTs of a worker instead of scaling
//! workers with ESTs, and (b) tracks the RNG state of every prepared-but-
//! unconsumed mini-batch in a queuing buffer so elastic restarts reproduce
//! the exact same augmented batches.
//!
//! Determinism contract: the content of mini-batch `b` of virtual rank `r`
//! in epoch `e` is a pure function of `(seed, dataset, e, r, b)` — never of
//! which physical data worker prepared it, how many there are, or when.

#![deny(missing_docs)]

pub mod augment;
pub mod dataset;
pub mod loader;
pub mod sampler;

pub use augment::{AugmentConfig, Augmenter};
pub use dataset::{Dataset, SyntheticImageDataset, SyntheticSequenceDataset};
pub use loader::{Batch, DataWorkerPool, LoaderCheckpoint, QueuingBuffer, ShardedLoader};
pub use sampler::DistributedSampler;

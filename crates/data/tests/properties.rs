//! Property-based tests for the data pipeline: sharding must partition the
//! padded epoch, and loader state must be a pure function of consumption
//! position.

use data::{
    AugmentConfig, Augmenter, Dataset, DistributedSampler, ShardedLoader, SyntheticImageDataset,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Shards of one epoch partition the padded permutation: every dataset
    /// index appears, and the total count equals the padded size, for every
    /// (len, replicas, seed, epoch).
    #[test]
    fn shards_partition(len in 1usize..400, n in 1u32..9, seed in any::<u64>(), epoch in 0u64..5) {
        let s = DistributedSampler::new(len, n, seed, true);
        let per = s.samples_per_replica();
        let mut counts = vec![0u32; len];
        for r in 0..n {
            for b in 0..per {
                for idx in s.batch_indices(epoch, r, b, 1) {
                    counts[idx as usize] += 1;
                }
            }
        }
        let padded = per * n as usize;
        prop_assert_eq!(counts.iter().sum::<u32>() as usize, padded);
        prop_assert!(counts.iter().all(|&c| c >= 1));
        // Padding wraps the dataset at most ceil(padded/len) times.
        let max_wraps = padded.div_ceil(len) as u32;
        prop_assert!(counts.iter().all(|&c| c <= max_wraps));
    }

    /// Batch contents are pure functions of (seed, epoch, vrank, batch):
    /// two independently constructed samplers always agree.
    #[test]
    fn sampler_is_pure(len in 8usize..300, n in 1u32..6, seed in any::<u64>(), epoch in 0u64..4, batch in 0usize..3) {
        let a = DistributedSampler::new(len, n, seed, true);
        let b = DistributedSampler::new(len, n, seed, true);
        let bs = (len / n as usize / 4).max(1);
        prop_assume!((batch + 1) * bs <= a.samples_per_replica());
        for r in 0..n {
            prop_assert_eq!(a.batch_indices(epoch, r, batch, bs), b.batch_indices(epoch, r, batch, bs));
        }
    }

    /// Loader checkpoint/restore reproduces the *next* batches bitwise from
    /// any consumption position.
    #[test]
    fn loader_checkpoint_is_positional(consumed in 0usize..12, seed in any::<u64>()) {
        let mk = || {
            ShardedLoader::new(
                Arc::new(SyntheticImageDataset::cifar_like(seed, 128)),
                2,
                4,
                seed,
                true,
                Some(Augmenter::new(AugmentConfig::default())),
            )
        };
        let mut a = mk();
        for _ in 0..consumed {
            a.next_batch(0);
        }
        let ckpt = a.checkpoint();
        let expect = a.next_batch(0);
        let mut b = mk();
        b.restore(&ckpt);
        let got = b.next_batch(0);
        prop_assert!(expect.features.bitwise_eq(&got.features));
        prop_assert_eq!(expect.indices, got.indices);
    }

    /// Augmentation preserves shape and is bit-pure given the generator
    /// position.
    #[test]
    fn augmentation_is_pure(seed in any::<u64>(), pos in 0u64..100) {
        let d = SyntheticImageDataset::cifar_like(seed, 16);
        let (img, _) = d.sample(3);
        let a = Augmenter::new(AugmentConfig::default());
        let mut r1 = esrng::EsRng::from_key(seed);
        r1.skip(pos);
        let mut r2 = esrng::EsRng::from_key(seed);
        r2.skip(pos);
        let o1 = a.apply(&img, &mut r1);
        let o2 = a.apply(&img, &mut r2);
        prop_assert_eq!(o1.shape(), img.shape());
        prop_assert!(o1.bitwise_eq(&o2));
    }

    /// Dataset samples never depend on call order or interleaving.
    #[test]
    fn dataset_random_access_is_order_free(seed in any::<u64>(), i in 0u32..64, j in 0u32..64) {
        let d = SyntheticImageDataset::cifar_like(seed, 64);
        let (a1, _) = d.sample(i);
        let (_b, _) = d.sample(j);
        let (a2, _) = d.sample(i);
        prop_assert!(a1.bitwise_eq(&a2));
    }
}

//! Property-based tests for the Eq 1 plan model, the schedulers, and the
//! failure detector.

use comm::{Heartbeat, HeartbeatBus};
use device::GpuType;
use proptest::prelude::*;
use sched::{Companion, HealthPolicy, HealthTracker, InterJobScheduler, IntraJobScheduler};
use std::collections::BTreeMap;

fn caps_strategy() -> impl Strategy<Value = BTreeMap<GpuType, f64>> {
    (1.0f64..20.0, 0.5f64..10.0, 0.2f64..8.0).prop_map(|(v, p, t)| {
        [(GpuType::V100, v), (GpuType::P100, p), (GpuType::T4, t)].into_iter().collect()
    })
}

fn alloc_strategy() -> impl Strategy<Value = Vec<(GpuType, u32)>> {
    (0u32..6, 0u32..6, 0u32..6).prop_map(|(v, p, t)| {
        let mut a = Vec::new();
        if v > 0 {
            a.push((GpuType::V100, v));
        }
        if p > 0 {
            a.push((GpuType::P100, p));
        }
        if t > 0 {
            a.push((GpuType::T4, t));
        }
        a
    })
}

proptest! {
    /// The Eq 1 identity `throughput = maxP / f_overload` holds for every
    /// balanced plan over every capability vector and allocation.
    #[test]
    fn eq1_identity(caps in caps_strategy(), alloc in alloc_strategy(), max_p in 1u32..32) {
        prop_assume!(!alloc.is_empty());
        let c = Companion::from_caps(caps, max_p);
        let plan = c.plan(&alloc).unwrap();
        prop_assert!((plan.throughput - max_p as f64 / plan.f_overload).abs() < 1e-6,
            "identity broken: {plan:?}");
    }

    /// Waste is never negative, and throughput never exceeds aggregate
    /// capability.
    #[test]
    fn waste_and_throughput_bounds(caps in caps_strategy(), alloc in alloc_strategy(), max_p in 1u32..32) {
        prop_assume!(!alloc.is_empty());
        let c = Companion::from_caps(caps.clone(), max_p);
        let plan = c.plan(&alloc).unwrap();
        let total_cap: f64 = alloc.iter().map(|&(ty, n)| n as f64 * caps[&ty]).sum();
        prop_assert!(plan.waste >= -1e-9, "negative waste: {plan:?}");
        prop_assert!(plan.throughput <= total_cap + 1e-9, "thr beyond capability: {plan:?}");
        prop_assert!(plan.throughput > 0.0);
    }

    /// The balanced plan is at least as good as any uniform per-type
    /// assignment (the balancer is not worse than naive splitting).
    #[test]
    fn balanced_plan_dominates_uniform(caps in caps_strategy(), alloc in alloc_strategy(), max_p in 1u32..16) {
        prop_assume!(!alloc.is_empty());
        let c = Companion::from_caps(caps, max_p);
        let plan = c.plan(&alloc).unwrap();
        let total_gpus: u32 = alloc.iter().map(|&(_, n)| n).sum();
        let uniform_a: Vec<u32> = alloc.iter().map(|_| max_p.div_ceil(total_gpus)).collect();
        let uniform = c.evaluate(&alloc, &uniform_a);
        prop_assert!(plan.throughput >= uniform.throughput - 1e-9,
            "balanced {} < uniform {}", plan.throughput, uniform.throughput);
    }

    /// placement_for always yields a valid placement covering exactly maxP
    /// virtual ranks.
    #[test]
    fn placements_are_valid(caps in caps_strategy(), alloc in alloc_strategy(), max_p in 1u32..24) {
        prop_assume!(!alloc.is_empty());
        let c = Companion::from_caps(caps, max_p);
        let placement = c.placement_for(&alloc).unwrap();
        prop_assert!(placement.validate(max_p).is_ok());
        let total_gpus: u32 = alloc.iter().map(|&(_, n)| n).sum();
        prop_assert!(placement.n_workers() as u32 <= total_gpus);
    }

    /// The inter-job scheduler never over-grants: granted resources are
    /// always within the free table.
    #[test]
    fn grants_never_exceed_free(
        free_v in 0u32..16,
        props in prop::collection::vec((0u64..8, 1u32..8, 0.1f64..10.0), 0..12),
    ) {
        let mut free: BTreeMap<GpuType, u32> = [(GpuType::V100, free_v)].into_iter().collect();
        let proposals = props
            .into_iter()
            .map(|(job, count, spg)| sched::ResourceProposal {
                job,
                add_type: GpuType::V100,
                add_count: count,
                new_throughput: 0.0,
                speedup_total: spg * count as f64,
                speedup_per_gpu: spg,
            })
            .collect();
        let grants = InterJobScheduler.decide(proposals, &mut free);
        let granted: u32 = grants.iter().map(|g| g.count).sum();
        prop_assert!(granted + free[&GpuType::V100] == free_v);
        // At most one grant per job.
        let mut jobs: Vec<u64> = grants.iter().map(|g| g.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        prop_assert_eq!(jobs.len(), grants.len());
    }

    /// The hash-order hazard this workspace's `FreePool = BTreeMap` closed
    /// (detlint rule `no-hash-iter`): proposals must be *byte-identical* no
    /// matter what order the free table was populated in. With a hash map
    /// the insertion order (via hasher state) could leak into proposal
    /// order and, through grants, into placements.
    #[test]
    fn proposals_ignore_free_pool_insertion_order(
        caps in caps_strategy(),
        max_p in 1u32..16,
        counts in (0u32..12, 0u32..12, 0u32..12),
        perm in 0usize..6,
    ) {
        let entries = [
            (GpuType::V100, counts.0),
            (GpuType::P100, counts.1),
            (GpuType::T4, counts.2),
        ];
        // All 3! = 6 insertion orders of the same logical pool.
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut shuffled = sched::FreePool::new();
        for &i in &orders[perm] {
            shuffled.insert(entries[i].0, entries[i].1);
        }
        let canonical: sched::FreePool = entries.into_iter().collect();

        let s = IntraJobScheduler::new(0, Companion::from_caps(caps, max_p), true);
        let a = serde_json::to_string(&s.proposals(&shuffled, 10)).unwrap();
        let b = serde_json::to_string(&s.proposals(&canonical, 10)).unwrap();
        prop_assert_eq!(a, b, "proposal bytes depend on free-pool insertion order");
    }

    /// Proposals never suggest more than maxP GPUs in one increment and are
    /// always strictly beneficial.
    #[test]
    fn proposals_are_bounded_and_beneficial(caps in caps_strategy(), max_p in 1u32..16, avail in 1u32..64) {
        let c = Companion::from_caps(caps, max_p);
        let s = IntraJobScheduler::new(0, c, true);
        let free: BTreeMap<GpuType, u32> =
            [(GpuType::V100, avail), (GpuType::P100, avail), (GpuType::T4, avail)].into_iter().collect();
        for p in s.proposals(&free, 10) {
            prop_assert!(p.add_count <= max_p.max(1));
            prop_assert!(p.speedup_total > 0.0);
            prop_assert!(p.speedup_per_gpu > 0.0);
        }
    }

    /// The health-event log is invariant under heartbeat *publication*
    /// order: beats reach the bus in whatever order worker threads race
    /// them in, but `drain_sorted` canonicalizes, so any permutation of
    /// each round's beats yields a byte-identical log — the property that
    /// keeps failure detection deterministic at all.
    #[test]
    fn health_log_ignores_heartbeat_publication_order(
        behaviors in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<bool>()), 4),
            1..10,
        ),
        order in Just(vec![0u32, 1, 2, 3]).prop_shuffle(),
    ) {
        const LEASE: u64 = 1_000_000;
        const ROUND: u64 = 600_000;
        let run = |device_order: &[u32]| -> String {
            let mut bus = HeartbeatBus::new();
            let mut tracker = HealthTracker::new(HealthPolicy::with_lease(LEASE));
            for &d in device_order {
                tracker.register(d, 0);
            }
            for (r, round) in behaviors.iter().enumerate() {
                let now = (r as u64 + 1) * ROUND;
                for &d in device_order {
                    let (beats, slow) = round[d as usize];
                    if beats {
                        bus.publish(Heartbeat {
                            device: d,
                            step: r as u64,
                            sent_at_us: now,
                            step_time_us: Some(if slow { 1_600_000 } else { 1_000_000 }),
                        });
                    }
                }
                for beat in bus.drain_sorted() {
                    tracker.observe(&beat);
                }
                tracker.end_of_round(now);
            }
            serde_json::to_string(tracker.events()).unwrap()
        };
        let canonical = run(&[0, 1, 2, 3]);
        let shuffled = run(&order);
        prop_assert_eq!(canonical, shuffled,
            "publication order {:?} leaked into the health log", order);
    }

    /// Repeat-run determinism of the detector: the same beat trace always
    /// produces the same event log, byte for byte (no interior hash state,
    /// no wall clock, no ambient randomness).
    #[test]
    fn health_log_is_byte_identical_across_repeat_runs(
        behaviors in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<bool>()), 3),
            1..12,
        ),
    ) {
        const LEASE: u64 = 800_000;
        let run = || -> String {
            let mut tracker = HealthTracker::new(HealthPolicy::with_lease(LEASE));
            for d in 0..3u32 {
                tracker.register(d, 0);
            }
            for (r, round) in behaviors.iter().enumerate() {
                let now = (r as u64 + 1) * 500_000;
                for (d, &(beats, slow)) in round.iter().enumerate() {
                    if beats {
                        tracker.observe(&Heartbeat {
                            device: d as u32,
                            step: r as u64,
                            sent_at_us: now,
                            step_time_us: Some(if slow { 900_000 } else { 500_000 }),
                        });
                    }
                }
                tracker.end_of_round(now);
            }
            serde_json::to_string(tracker.events()).unwrap()
        };
        prop_assert_eq!(run(), run());
    }
}

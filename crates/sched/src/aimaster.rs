//! AIMaster (paper §4): the per-job control loop that connects the
//! intra-job scheduler to a *live* training engine.
//!
//! The production AIMaster collects performance profiles from the EasyScale
//! runtime over RPC, submits resource proposals, watches allocation
//! timeouts, and drives scale in/out through on-demand checkpoints. This
//! in-process version does the same against `easyscale::Engine`: it owns
//! the engine, maps granted allocations to EST placements via the
//! companion, reports *measured* throughput back into the plan database,
//! and applies the Role-3 slowdown fallback with real numbers.

use crate::companion::{Alloc, Companion};
use crate::health::{HealthEvent, HealthPolicy, HealthState, HealthTracker, TransitionCause};
use crate::intra::{IntraJobScheduler, ResourceProposal};
use device::GpuType;
use easyscale::{Engine, JobConfig};
use models::zoo;
use std::collections::BTreeMap;

/// The per-job master: engine + intra-job scheduler + throughput monitor.
pub struct AiMaster {
    config: JobConfig,
    engine: Option<Engine>,
    intra: IntraJobScheduler,
    /// Measured local mini-batches per second over the last window.
    last_measured: Option<f64>,
    /// Global steps executed per measurement window.
    window: u64,
    /// Checkpoint held while the job is scaled to zero GPUs.
    parked: Option<easyscale::JobCheckpoint>,
}

impl AiMaster {
    /// Create a master for a job; it starts with no resources (elastic jobs
    /// may queue at zero GPUs without failing).
    ///
    /// Applies the paper's automatic model scan (§3.3): a job whose model
    /// does not rely on vendor conv kernels may be placed on heterogeneous
    /// GPUs — and then MUST run D2 hardware-agnostic kernels, or the mixed
    /// types would break bitwise consistency. The scan upgrades the config's
    /// determinism accordingly.
    pub fn new(job_id: u64, mut config: JobConfig) -> Self {
        let spec = config.workload.spec();
        let hetero = spec.hetero_friendly() || config.determinism.hardware_agnostic;
        if hetero {
            config.determinism.hardware_agnostic = true;
        }
        let companion = Companion::for_workload(&spec, config.n_ests, hetero);
        AiMaster {
            config,
            engine: None,
            intra: IntraJobScheduler::new(job_id, companion, hetero),
            last_measured: None,
            window: 8,
            parked: None,
        }
    }

    /// The effective job configuration (after the model scan possibly
    /// upgraded determinism to D2).
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Whether the job currently holds resources.
    pub fn is_running(&self) -> bool {
        self.engine.is_some()
    }

    /// The live engine, if any.
    pub fn engine(&self) -> Option<&Engine> {
        self.engine.as_ref()
    }

    /// Current allocation.
    pub fn allocation(&self) -> &Alloc {
        self.intra.current()
    }

    /// Measured throughput of the last window (mini-batches/s), if any.
    pub fn measured_throughput(&self) -> Option<f64> {
        self.last_measured
    }

    /// Role 2: resource proposals against the free table.
    pub fn proposals(&self, free: &BTreeMap<GpuType, u32>, top_k: usize) -> Vec<ResourceProposal> {
        self.intra.proposals(free, top_k)
    }

    /// Role 3: adopt a new allocation. Goes through an on-demand checkpoint
    /// when a job was already running; cold-starts otherwise. An empty
    /// allocation parks the job (checkpoint retained implicitly by the
    /// engine being dropped after `checkpoint()` — here we keep the
    /// checkpoint in memory via `parked`).
    pub fn apply_allocation(&mut self, alloc: Alloc) {
        let prev_measured = self.last_measured;
        self.intra.apply_allocation(alloc.clone());
        // Fallback comparisons must be measured-vs-measured: the estimate
        // snapshotted by apply_allocation is in catalog units, while
        // run_window reports wall-clock units. Overwrite with the last
        // measurement of the previous allocation when we have one; without
        // one the fallback stays disarmed (prev estimate ≪ any measurement).
        if let Some(m) = prev_measured {
            self.intra.set_previous_throughput(m);
        }
        let placement = self.intra.current_placement();
        match (self.engine.take(), placement) {
            (Some(engine), Some(p)) => {
                self.engine = Some(engine.rescale(p));
            }
            (Some(mut engine), None) => {
                // Scale to zero: park at a checkpoint.
                let ckpt = engine.checkpoint();
                self.parked = Some(ckpt);
                self.engine = None;
            }
            (None, Some(p)) => {
                self.engine = Some(match self.parked.take() {
                    Some(ckpt) => Engine::from_checkpoint(self.config.clone(), p, &ckpt),
                    None => Engine::new(self.config.clone(), p),
                });
            }
            (None, None) => {}
        }
        self.last_measured = None;
    }

    /// Run one measurement window: execute `window` global steps, time them,
    /// convert to local mini-batches/s, report to the companion (which
    /// corrects its estimates on significant bias), and fall back to the
    /// previous allocation if the new one measured slower (Role 3 fallback).
    /// Returns the released GPUs if a fallback happened.
    pub fn run_window(&mut self) -> Option<Alloc> {
        let engine = self.engine.as_mut()?;
        // Wall-clock via obs only: the measurement steers allocation (which
        // cannot change bits), never the training math itself.
        let watch = obs::Stopwatch::start();
        for _ in 0..self.window {
            engine.step();
        }
        let secs = watch.lap_observe("sched.window_us").as_secs_f64().max(1e-9);
        let local_minibatches = (self.window * self.config.n_ests as u64) as f64;
        let measured = local_minibatches / secs;
        self.last_measured = Some(measured);
        let alloc = self.intra.current().clone();
        self.intra.companion_mut().observe(&alloc, measured);
        let released = self.intra.fallback_if_slower(measured);
        if released.is_some() {
            // Re-apply the reverted allocation to the engine.
            let placement = self.intra.current_placement().expect("reverted alloc is nonempty");
            let engine = self.engine.take().expect("engine exists in run_window");
            self.engine = Some(engine.rescale(placement));
        }
        released
    }

    /// Total parameters of the proxy (diagnostics).
    pub fn n_params(&self) -> usize {
        zoo::build_proxy(self.config.workload, self.config.seed).num_params()
    }
}

/// An allocation-level action the supervisor derives from a health
/// transition. Actions only ever change *placement* — which bitwise
/// placement-invariance keeps invisible to the learned parameters — so the
/// self-healing loop stays off the consistency path by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SupervisorAction {
    /// Remove a quarantined device from the allocation and rescale.
    Evict {
        /// The quarantined device.
        device: u32,
        /// `true` when the quarantine came from a lost lease: the device is
        /// presumed crashed, so the job must also fall back to its
        /// last-good durable checkpoint (in-memory state on that device is
        /// gone). `false` for straggler quarantines: the device is alive,
        /// nothing was lost, a plain rescale suffices.
        assume_crash: bool,
    },
    /// A quarantined device finished its backoff and proved itself alive:
    /// readmit it (on probation) into the allocation.
    Readmit {
        /// The paroled device.
        device: u32,
    },
}

/// The AIMaster's self-healing loop (paper §4's detection role): wraps a
/// [`HealthTracker`] and converts its state transitions into allocation
/// actions. No human and no harness hint is in this loop — the only inputs
/// are the heartbeats themselves.
#[derive(Debug, Clone)]
pub struct Supervisor {
    tracker: HealthTracker,
}

impl Supervisor {
    /// A supervisor with the given detection policy and no known devices.
    pub fn new(policy: HealthPolicy) -> Self {
        Supervisor { tracker: HealthTracker::new(policy) }
    }

    /// The underlying tracker (states, policy, event log).
    pub fn tracker(&self) -> &HealthTracker {
        &self.tracker
    }

    /// Start tracking a device (fresh lease granted at `now_us`).
    pub fn register(&mut self, device: u32, now_us: u64) {
        self.tracker.register(device, now_us);
    }

    /// Stop tracking a device that left through a planned path (scale-in,
    /// preemption) — not a health decision.
    pub fn deregister(&mut self, device: u32) {
        self.tracker.deregister(device);
    }

    /// Ingest one heartbeat.
    pub fn observe(&mut self, beat: &comm::Heartbeat) {
        self.tracker.observe(beat);
    }

    /// Run one detection round and return the allocation actions implied by
    /// this round's transitions: entering Quarantined ⇒ [`SupervisorAction::Evict`]
    /// (crash assumed iff the cause was a lost lease), entering Probation ⇒
    /// [`SupervisorAction::Readmit`]. All other transitions are
    /// observation-only.
    pub fn tick(&mut self, now_us: u64) -> Vec<SupervisorAction> {
        self.tracker
            .end_of_round(now_us)
            .iter()
            .filter_map(|ev| match ev.to {
                HealthState::Quarantined => Some(SupervisorAction::Evict {
                    device: ev.device,
                    assume_crash: matches!(ev.cause, TransitionCause::LeaseMiss { .. }),
                }),
                HealthState::Probation => Some(SupervisorAction::Readmit { device: ev.device }),
                _ => None,
            })
            .collect()
    }

    /// The full health-event log, in firing order.
    pub fn events(&self) -> &[HealthEvent] {
        self.tracker.events()
    }
}

#[cfg(test)]
mod supervisor_tests {
    use super::*;
    use comm::Heartbeat;

    const LEASE: u64 = 1_000;

    fn supervisor(devices: u32) -> Supervisor {
        let mut s = Supervisor::new(HealthPolicy::with_lease(LEASE));
        for d in 0..devices {
            s.register(d, 0);
        }
        s
    }

    fn beat(device: u32, at: u64, time: Option<u64>) -> Heartbeat {
        Heartbeat { device, step: 0, sent_at_us: at, step_time_us: time }
    }

    #[test]
    fn lost_lease_evicts_with_crash_assumed() {
        let mut s = supervisor(2);
        let mut actions = Vec::new();
        for round in 1..=4u64 {
            let now = round * LEASE;
            s.observe(&beat(1, now, Some(100)));
            actions.extend(s.tick(now));
        }
        assert_eq!(actions, vec![SupervisorAction::Evict { device: 0, assume_crash: true }]);
    }

    #[test]
    fn persistent_straggler_evicts_without_rollback() {
        let mut s = supervisor(2);
        let mut actions = Vec::new();
        for round in 1..=5u64 {
            let now = round * 500;
            s.observe(&beat(0, now, Some(100)));
            s.observe(&beat(1, now, Some(300)));
            actions.extend(s.tick(now));
        }
        assert_eq!(actions, vec![SupervisorAction::Evict { device: 1, assume_crash: false }]);
    }

    #[test]
    fn backoff_elapsed_readmits() {
        let mut s = supervisor(2);
        for round in 1..=4u64 {
            s.observe(&beat(1, round * LEASE, Some(100)));
            s.tick(round * LEASE);
        }
        // Device 0 resurfaces well after the backoff.
        let later = 100 * LEASE;
        s.observe(&beat(0, later, Some(100)));
        s.observe(&beat(1, later, Some(100)));
        let actions = s.tick(later);
        assert_eq!(actions, vec![SupervisorAction::Readmit { device: 0 }]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::Workload;

    fn master() -> AiMaster {
        AiMaster::new(1, JobConfig::new(Workload::NeuMF, 3, 4).with_dataset_len(256))
    }

    fn free(v: u32, p: u32, t: u32) -> BTreeMap<GpuType, u32> {
        [(GpuType::V100, v), (GpuType::P100, p), (GpuType::T4, t)].into_iter().collect()
    }

    #[test]
    fn starts_parked_and_proposes() {
        let m = master();
        assert!(!m.is_running());
        let props = m.proposals(&free(4, 0, 0), 3);
        assert!(!props.is_empty());
    }

    #[test]
    fn allocation_starts_the_engine() {
        let mut m = master();
        m.apply_allocation(vec![(GpuType::V100, 2)]);
        assert!(m.is_running());
        assert_eq!(m.engine().unwrap().placement().n_workers(), 2);
    }

    #[test]
    fn window_reports_throughput() {
        let mut m = master();
        m.apply_allocation(vec![(GpuType::V100, 1)]);
        let released = m.run_window();
        assert!(released.is_none() || released.unwrap().is_empty());
        assert!(m.measured_throughput().unwrap() > 0.0);
    }

    #[test]
    fn park_and_resume_preserves_progress_bitwise() {
        let mut m = master();
        m.apply_allocation(vec![(GpuType::V100, 2)]);
        m.run_window();
        let step_before = m.engine().unwrap().global_step();
        let params_before = m.engine().unwrap().flat_params();
        // Scale to zero (full preemption), then come back on different GPUs.
        m.apply_allocation(vec![]);
        assert!(!m.is_running());
        m.apply_allocation(vec![(GpuType::V100, 4)]);
        assert!(m.is_running());
        assert_eq!(m.engine().unwrap().global_step(), step_before);
        assert_eq!(m.engine().unwrap().flat_params(), params_before);
    }

    #[test]
    fn rescale_through_master_is_deterministic() {
        // Engine driven by the master across scale events matches a
        // fixed-resource reference bitwise.
        let cfg = JobConfig::new(Workload::NeuMF, 3, 4).with_dataset_len(256);
        let mut m = AiMaster::new(2, cfg);
        // The reference must use the EFFECTIVE config: the model scan
        // enabled D2 for this hetero-friendly job.
        let mut reference = Engine::new(
            m.config().clone(),
            easyscale::Placement::one_est_per_gpu(4, GpuType::V100),
        );
        m.apply_allocation(vec![(GpuType::V100, 4)]);
        for _ in 0..8 {
            reference.step();
        }
        m.run_window();
        m.apply_allocation(vec![(GpuType::V100, 1)]);
        for _ in 0..8 {
            reference.step();
        }
        m.run_window();
        assert_eq!(reference.flat_params(), m.engine().unwrap().flat_params());
    }
}

//! The intra-job scheduler (paper §3.4, Figure 8).
//!
//! Three roles:
//! * **Role 1** — for the current allocation, query the companion DB and
//!   apply the top-1 EST-to-GPU configuration.
//! * **Role 2** — explore incremental homogeneous scale-outs, estimate the
//!   speedup, and submit the top-K as resource proposals.
//! * **Role 3** — on a cluster decision, scale in/out immediately,
//!   reschedule ESTs (Role 1 again), and keep a slowdown fallback: if added
//!   resources measure slower, release them and revert.

use crate::companion::{Alloc, Companion, Plan};
use device::GpuType;
use easyscale::Placement;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The cluster's free-resource table.
///
/// Deliberately a `BTreeMap`: proposals are formed by walking this table, so
/// its iteration order is part of the deterministic contract (detlint rule
/// `no-hash-iter`). A hash map here would let hasher state leak into
/// proposal order and, through grants, into placements.
pub type FreePool = BTreeMap<GpuType, u32>;

/// A scale-out request submitted to the inter-job scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProposal {
    /// Requesting job.
    pub job: u64,
    /// Incremental GPUs requested (one type per proposal — the paper's
    /// "incremental homogeneous GPUs").
    pub add_type: GpuType,
    /// How many of them.
    pub add_count: u32,
    /// Estimated total throughput after the grant (mini-batches/s).
    pub new_throughput: f64,
    /// Estimated absolute speedup (new − current throughput).
    pub speedup_total: f64,
    /// Speedup per added GPU — the inter-job scheduler's ranking key.
    pub speedup_per_gpu: f64,
}

/// Per-job scheduler state.
pub struct IntraJobScheduler {
    job: u64,
    companion: Companion,
    current: Alloc,
    /// Throughput of the previous allocation, for the Role-3 fallback.
    previous: Option<(Alloc, f64)>,
    /// If false, only homogeneous allocations are proposed/accepted
    /// (EasyScale's model scan found vendor conv kernels, §3.3).
    hetero_allowed: bool,
    /// For non-hetero jobs: the GPU type the job first ran on. Vendor
    /// kernels differ per type, so switching types mid-training would break
    /// bitwise consistency — the type is pinned for the job's lifetime.
    pinned_type: Option<GpuType>,
}

impl IntraJobScheduler {
    /// New scheduler for `job`.
    pub fn new(job: u64, companion: Companion, hetero_allowed: bool) -> Self {
        IntraJobScheduler {
            job,
            companion,
            current: Vec::new(),
            previous: None,
            hetero_allowed,
            pinned_type: None,
        }
    }

    /// The GPU type a non-hetero job is pinned to (None until first placed,
    /// or always None for hetero-capable jobs).
    pub fn pinned_type(&self) -> Option<GpuType> {
        self.pinned_type
    }

    /// The job id.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// The current allocation.
    pub fn current(&self) -> &Alloc {
        &self.current
    }

    /// Whether heterogeneous allocations are allowed for this job.
    pub fn hetero_allowed(&self) -> bool {
        self.hetero_allowed
    }

    /// The companion module.
    pub fn companion(&self) -> &Companion {
        &self.companion
    }

    /// Mutable companion (throughput observations).
    pub fn companion_mut(&mut self) -> &mut Companion {
        &mut self.companion
    }

    /// Role 1: the best plan for the current allocation.
    pub fn current_plan(&self) -> Option<Plan> {
        self.companion.plan(&self.current)
    }

    /// Role 1: the EST-to-GPU mapping for the current allocation.
    pub fn current_placement(&self) -> Option<Placement> {
        self.companion.placement_for(&self.current)
    }

    /// Role 2: form up to `top_k` scale-out proposals against the free
    /// resources, trying incremental counts (1, 2, 4, …) of each type.
    pub fn proposals(&self, free: &FreePool, top_k: usize) -> Vec<ResourceProposal> {
        let current_thr = self.current_plan().map(|p| p.throughput).unwrap_or(0.0);
        let mut out: Vec<ResourceProposal> = Vec::new();
        for &ty in &GpuType::ALL {
            let avail = free.get(&ty).copied().unwrap_or(0);
            if avail == 0 {
                continue;
            }
            if !self.hetero_allowed {
                // Homogeneous constraint: once the job has ever run on a
                // type, only that type may be proposed — vendor kernels
                // differ bitwise across types and this job has no D2.
                let constraint = self
                    .pinned_type
                    .or_else(|| self.current.iter().find(|&&(_, n)| n > 0).map(|&(t, _)| t));
                if let Some(t) = constraint {
                    if t != ty {
                        continue;
                    }
                }
            }
            // Never propose more GPUs than maxP: beyond one EST per GPU
            // extra devices add nothing (Eq 1a).
            let useful = self.companion.max_p();
            let mut add = 1u32;
            while add <= avail.min(useful) {
                let mut candidate = self.current.clone();
                match candidate.iter_mut().find(|(t, _)| *t == ty) {
                    Some(slot) => slot.1 += add,
                    None => candidate.push((ty, add)),
                }
                if let Some(plan) = self.companion.plan(&candidate) {
                    let speedup = plan.throughput - current_thr;
                    if speedup > 1e-9 {
                        out.push(ResourceProposal {
                            job: self.job,
                            add_type: ty,
                            add_count: add,
                            new_throughput: plan.throughput,
                            speedup_total: speedup,
                            speedup_per_gpu: speedup / add as f64,
                        });
                    }
                }
                add *= 2;
            }
        }
        out.sort_by(|a, b| {
            b.speedup_per_gpu.total_cmp(&a.speedup_per_gpu).then(b.add_count.cmp(&a.add_count))
        });
        out.truncate(top_k);
        if !out.is_empty() {
            obs::counter_add("sched.proposals_total", out.len() as u64);
        }
        out
    }

    /// Role 3: adopt a new allocation (scale in/out). Remembers the previous
    /// allocation's estimate for the slowdown fallback.
    pub fn apply_allocation(&mut self, alloc: Alloc) {
        if !self.hetero_allowed {
            if let Some(&(first_ty, _)) = alloc.iter().find(|&&(_, n)| n > 0) {
                let pinned = *self.pinned_type.get_or_insert(first_ty);
                assert!(
                    alloc.iter().all(|&(ty, n)| n == 0 || ty == pinned),
                    "job {} is pinned to {pinned} (no D2): rejected {alloc:?}",
                    self.job
                );
            }
        }
        let prev_thr = self.current_plan().map(|p| p.throughput).unwrap_or(0.0);
        self.previous = Some((std::mem::take(&mut self.current), prev_thr));
        // Allocation churn (Fig 16's reconfiguration activity): count only
        // real changes, not the simulator's re-apply of the same allocation.
        if self.previous.as_ref().is_some_and(|(old, _)| *old != alloc) {
            obs::counter_add("sched.allocation_changes", 1);
        }
        self.current = alloc;
    }

    /// Override the throughput recorded for the previous allocation with a
    /// *measured* value, so [`IntraJobScheduler::fallback_if_slower`]
    /// compares like units (measured vs measured) instead of a wall-clock
    /// measurement against a catalog estimate.
    pub fn set_previous_throughput(&mut self, measured: f64) {
        if let Some((_, thr)) = &mut self.previous {
            *thr = measured;
        }
    }

    /// Graceful degradation under preemption: the cluster revoked `count`
    /// GPUs of `ty` from this job with no negotiation (spot reclaim,
    /// serving-side co-location surge). The allocation shrinks in place —
    /// but never below one GPU while the job holds any, so an EasyScale job
    /// degrades to time-slicing all its ESTs on the survivor instead of
    /// failing like gang-scheduled Sync-SGD (paper §2.1). Returns the new
    /// allocation; the caller reschedules ESTs onto it (Role 1).
    pub fn apply_preemption(&mut self, ty: GpuType, count: u32) -> Alloc {
        let had_any = self.current.iter().any(|&(_, n)| n > 0);
        let mut alloc = std::mem::take(&mut self.current);
        if let Some(slot) = alloc.iter_mut().find(|(t, _)| *t == ty) {
            slot.1 = slot.1.saturating_sub(count);
        }
        alloc.retain(|&(_, n)| n > 0);
        if had_any && alloc.is_empty() {
            // Degradation floor: keep one survivor GPU of the revoked type
            // (the reclaimer takes count-1; a full park would need the
            // inter-job scheduler to re-admit the job later).
            alloc.push((ty, 1));
        }
        obs::counter_add("sched.preemptions_total", 1);
        obs::gauge_set(
            "sched.gpus_after_preemption",
            alloc.iter().map(|&(_, n)| n).sum::<u32>() as f64,
        );
        // Throughput memory from before the preemption is meaningless for
        // the fallback comparison; drop it.
        self.previous = None;
        self.current = alloc.clone();
        alloc
    }

    /// Role 3 fallback: after observing `measured` throughput on the current
    /// (recently grown) allocation, fall back to the previous allocation if
    /// the new one is actually slower. Returns the released allocation diff
    /// if a fallback happened. Only meaningful when the previous throughput
    /// was set from a measurement of the same kind (see
    /// [`IntraJobScheduler::set_previous_throughput`]).
    pub fn fallback_if_slower(&mut self, measured: f64) -> Option<Alloc> {
        let (prev_alloc, prev_thr) = self.previous.clone()?;
        if measured + 1e-9 < prev_thr {
            let released = diff_alloc(&self.current, &prev_alloc);
            self.current = prev_alloc;
            self.previous = None;
            Some(released)
        } else {
            None
        }
    }
}

/// `a − b` per type (types where a has more GPUs than b).
fn diff_alloc(a: &Alloc, b: &Alloc) -> Alloc {
    let mut out = Vec::new();
    for &(ty, na) in a {
        let nb = b.iter().find(|&&(t, _)| t == ty).map(|&(_, n)| n).unwrap_or(0);
        if na > nb {
            out.push((ty, na - nb));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn companion(max_p: u32) -> Companion {
        let caps =
            [(GpuType::V100, 10.0), (GpuType::P100, 5.0), (GpuType::T4, 4.0)].into_iter().collect();
        Companion::from_caps(caps, max_p)
    }

    fn free(v: u32, p: u32, t: u32) -> FreePool {
        [(GpuType::V100, v), (GpuType::P100, p), (GpuType::T4, t)].into_iter().collect()
    }

    #[test]
    fn empty_job_proposes_first_gpu() {
        let s = IntraJobScheduler::new(1, companion(8), true);
        let props = s.proposals(&free(4, 4, 4), 3);
        assert!(!props.is_empty());
        // Best first proposal: the fastest type.
        assert_eq!(props[0].add_type, GpuType::V100);
        assert!(props[0].speedup_per_gpu > 0.0);
    }

    #[test]
    fn homogeneous_constraint_filters_types() {
        let mut s = IntraJobScheduler::new(1, companion(8), false);
        s.apply_allocation(vec![(GpuType::P100, 2)]);
        let props = s.proposals(&free(4, 4, 4), 10);
        assert!(props.iter().all(|p| p.add_type == GpuType::P100), "homo jobs grow in kind");
    }

    #[test]
    fn hetero_jobs_may_mix() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 1)]);
        let props = s.proposals(&free(0, 4, 4), 10);
        assert!(props.iter().any(|p| p.add_type != GpuType::V100));
    }

    #[test]
    fn no_proposals_beyond_maxp_benefit() {
        let mut s = IntraJobScheduler::new(1, companion(2), true);
        s.apply_allocation(vec![(GpuType::V100, 2)]);
        // 2 ESTs on 2 V100s is already optimal; more GPUs add nothing.
        let props = s.proposals(&free(8, 0, 0), 10);
        assert!(props.is_empty(), "{props:?}");
    }

    #[test]
    fn proposals_are_ranked_by_speedup_per_gpu() {
        let s = IntraJobScheduler::new(1, companion(8), true);
        let props = s.proposals(&free(8, 8, 8), 10);
        for w in props.windows(2) {
            assert!(w[0].speedup_per_gpu >= w[1].speedup_per_gpu);
        }
    }

    #[test]
    fn fallback_reverts_and_releases() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 2)]);
        let thr2 = s.current_plan().unwrap().throughput;
        s.apply_allocation(vec![(GpuType::V100, 2), (GpuType::T4, 2)]);
        // Measured slower than the 2-GPU estimate: fall back.
        let released = s.fallback_if_slower(thr2 * 0.8).expect("must fall back");
        assert_eq!(released, vec![(GpuType::T4, 2)]);
        assert_eq!(s.current(), &vec![(GpuType::V100, 2)]);
        // No previous left: further fallback is a no-op.
        assert!(s.fallback_if_slower(0.0).is_none());
    }

    #[test]
    fn preemption_shrinks_in_place() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 4), (GpuType::T4, 2)]);
        let alloc = s.apply_preemption(GpuType::V100, 3);
        assert_eq!(alloc, vec![(GpuType::V100, 1), (GpuType::T4, 2)]);
        assert_eq!(s.current(), &alloc);
    }

    #[test]
    fn preemption_never_drops_below_one_gpu() {
        let mut s = IntraJobScheduler::new(1, companion(8), false);
        s.apply_allocation(vec![(GpuType::P100, 2)]);
        let alloc = s.apply_preemption(GpuType::P100, 5);
        assert_eq!(alloc, vec![(GpuType::P100, 1)], "degrades to a single survivor, never parks");
        // Repeated preemption of the survivor still leaves one.
        let alloc = s.apply_preemption(GpuType::P100, 1);
        assert_eq!(alloc, vec![(GpuType::P100, 1)]);
    }

    #[test]
    fn preemption_of_absent_type_is_a_noop_shrink() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 2)]);
        let alloc = s.apply_preemption(GpuType::T4, 4);
        assert_eq!(alloc, vec![(GpuType::V100, 2)]);
    }

    #[test]
    fn preemption_clears_fallback_memory() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 2)]);
        s.apply_allocation(vec![(GpuType::V100, 4)]);
        s.apply_preemption(GpuType::V100, 2);
        // No stale "previous" to fall back to after a forced shrink.
        assert!(s.fallback_if_slower(0.0).is_none());
    }

    #[test]
    fn fallback_keeps_faster_allocations() {
        let mut s = IntraJobScheduler::new(1, companion(8), true);
        s.apply_allocation(vec![(GpuType::V100, 2)]);
        let thr2 = s.current_plan().unwrap().throughput;
        s.apply_allocation(vec![(GpuType::V100, 4)]);
        assert!(s.fallback_if_slower(thr2 * 1.5).is_none());
        assert_eq!(s.current(), &vec![(GpuType::V100, 4)]);
    }
}

//! The inter-job (cluster) scheduler: greedy proposal acceptance.
//!
//! Evaluates submitted resource proposals against the free-resource table,
//! accepting the highest speedup-per-GPU first; among equal speedups it
//! prefers the proposal with more GPUs (the paper's tie-break). Co-location
//! with non-elastic (serving) jobs happens by keeping the free-resource
//! table in sync with whatever the serving side currently occupies.

use crate::intra::{FreePool, ResourceProposal};
use device::GpuType;
use serde::{Deserialize, Serialize};

/// One accepted grant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Winning job.
    pub job: u64,
    /// Granted GPU type.
    pub gpu: GpuType,
    /// Granted count.
    pub count: u32,
}

/// The greedy inter-job scheduler.
#[derive(Debug, Default)]
pub struct InterJobScheduler;

impl InterJobScheduler {
    /// Evaluate proposals against `free`, consuming granted resources.
    /// At most one grant per job per round (a job resubmits next round after
    /// rescheduling its ESTs).
    pub fn decide(
        &self,
        mut proposals: Vec<ResourceProposal>,
        free: &mut FreePool,
    ) -> Vec<Decision> {
        proposals.sort_by(|a, b| {
            b.speedup_per_gpu.total_cmp(&a.speedup_per_gpu).then(b.add_count.cmp(&a.add_count))
        });
        let mut granted_jobs = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for p in proposals {
            if granted_jobs.contains(&p.job) {
                continue;
            }
            let avail = free.get(&p.add_type).copied().unwrap_or(0);
            if avail >= p.add_count {
                *free.get_mut(&p.add_type).unwrap() -= p.add_count;
                granted_jobs.insert(p.job);
                out.push(Decision { job: p.job, gpu: p.add_type, count: p.add_count });
            }
        }
        if !out.is_empty() {
            obs::counter_add("sched.grants_total", out.len() as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(job: u64, ty: GpuType, count: u32, spg: f64) -> ResourceProposal {
        ResourceProposal {
            job,
            add_type: ty,
            add_count: count,
            new_throughput: 0.0,
            speedup_total: spg * count as f64,
            speedup_per_gpu: spg,
        }
    }

    fn free(v: u32) -> FreePool {
        [(GpuType::V100, v), (GpuType::P100, 0), (GpuType::T4, 0)].into_iter().collect()
    }

    #[test]
    fn highest_speedup_per_gpu_wins() {
        let s = InterJobScheduler;
        let mut f = free(2);
        let d =
            s.decide(vec![prop(1, GpuType::V100, 2, 1.0), prop(2, GpuType::V100, 2, 3.0)], &mut f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, 2);
        assert_eq!(f[&GpuType::V100], 0);
    }

    #[test]
    fn equal_speedup_prefers_more_gpus() {
        let s = InterJobScheduler;
        let mut f = free(4);
        let d =
            s.decide(vec![prop(1, GpuType::V100, 1, 2.0), prop(2, GpuType::V100, 4, 2.0)], &mut f);
        assert_eq!(d[0].job, 2);
        assert_eq!(d[0].count, 4);
    }

    #[test]
    fn one_grant_per_job_per_round() {
        let s = InterJobScheduler;
        let mut f = free(8);
        let d =
            s.decide(vec![prop(1, GpuType::V100, 2, 3.0), prop(1, GpuType::V100, 4, 2.0)], &mut f);
        assert_eq!(d.len(), 1);
        assert_eq!(f[&GpuType::V100], 6);
    }

    #[test]
    fn insufficient_resources_skip_to_next() {
        let s = InterJobScheduler;
        let mut f = free(2);
        let d =
            s.decide(vec![prop(1, GpuType::V100, 4, 5.0), prop(2, GpuType::V100, 2, 1.0)], &mut f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, 2, "big proposal can't fit; smaller one is served");
    }

    #[test]
    fn empty_proposals_grant_nothing() {
        let s = InterJobScheduler;
        let mut f = free(4);
        assert!(s.decide(vec![], &mut f).is_empty());
        assert_eq!(f[&GpuType::V100], 4);
    }
}

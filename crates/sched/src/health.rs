//! Per-device health tracking: heartbeat leases, straggler scoring, and the
//! `Healthy → Suspect → Quarantined → Probation → Healthy` state machine.
//!
//! The paper's AIMaster (§4) *detects* failures and slowdowns itself rather
//! than being told about them. This module is that detection loop's brain:
//! it consumes [`Heartbeat`]s (virtual-time-stamped, integer payloads),
//! tracks one [`Lease`] per physical device, scores stragglers against the
//! worker population, and emits a totally ordered [`HealthEvent`] log that
//! the supervisor in [`aimaster`](crate::aimaster) converts into
//! allocation changes.
//!
//! Determinism contract: every input is an integer (`SimClock` timestamps,
//! step durations in µs), all per-device state lives in a `BTreeMap`, and
//! the straggler z-score is computed over a sorted sample in a fixed
//! summation order — so the full event log, timestamps included, is a pure
//! function of the heartbeat history. Nothing here reads a wall clock, and
//! nothing here touches training state: detection output only ever changes
//! *allocations*, which bitwise placement-invariance makes invisible to
//! the learned parameters (see `DESIGN.md`).
//!
//! State machine (policy knobs in [`HealthPolicy`]):
//!
//! ```text
//!            ≥ suspect_misses leases missed, or
//!            ≥ suspect_windows consecutive slow rounds
//!   Healthy ────────────────────────────────────────▶ Suspect
//!      ▲  ▲     clean round (beat on time, not slow)     │
//!      │  └──────────────────────────────────────────────┘
//!      │         ≥ quarantine_misses leases missed, or
//!      │         ≥ quarantine_windows consecutive slow rounds
//!      │    (from Healthy/Suspect/Probation) ──▶ Quarantined
//!      │                                             │ beat received AND
//!      │        probation_rounds clean rounds        │ backoff elapsed
//!      └──────────────── Probation ◀─────────────────┘
//!                            │ miss or slow round → requarantine,
//!                            │ flaps += 1, backoff ×= 2;
//!                            └ flaps ≥ max_flaps → permanent quarantine
//! ```
//!
//! Flap damping: every failed probation doubles the readmission backoff,
//! and after `max_flaps` failed probations the device is quarantined
//! permanently — a flapping GPU cannot oscillate the allocation forever.

use comm::Heartbeat;
use device::Lease;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The four health states of a physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// Beating on time, not a straggler.
    Healthy,
    /// Early warning: one missed lease or a short slow streak. No
    /// allocation change yet.
    Suspect,
    /// Confirmed bad: evicted from the allocation, sitting out a backoff.
    Quarantined,
    /// Readmitted on trial after backoff; must prove itself clean.
    Probation,
}

impl HealthState {
    /// Stable lowercase name (metric labels, logs).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }
}

/// Why a health transition fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionCause {
    /// The device's lease lapsed for `missed` full periods.
    LeaseMiss {
        /// Complete lease periods elapsed since the last heartbeat.
        missed: u64,
    },
    /// The device's step timing scored as a population outlier.
    StragglerScore {
        /// Straggler z-score in milli-units (2000 = 2.0 σ-equivalents).
        score_milli: i64,
    },
    /// A suspect device resumed clean, timely heartbeats.
    HeartbeatResumed,
    /// A quarantined device finished its backoff and is beating again.
    BackoffElapsed,
    /// A probation device stayed clean for the required rounds.
    ProbationPassed,
    /// A probation device missed a lease or scored slow again.
    ProbationFailed,
    /// The device flapped `max_flaps` times: quarantined permanently.
    FlapLimit,
}

impl TransitionCause {
    /// Stable short name (metric labels, logs).
    pub fn name(&self) -> &'static str {
        match self {
            TransitionCause::LeaseMiss { .. } => "lease_miss",
            TransitionCause::StragglerScore { .. } => "straggler_score",
            TransitionCause::HeartbeatResumed => "heartbeat_resumed",
            TransitionCause::BackoffElapsed => "backoff_elapsed",
            TransitionCause::ProbationPassed => "probation_passed",
            TransitionCause::ProbationFailed => "probation_failed",
            TransitionCause::FlapLimit => "flap_limit",
        }
    }
}

/// One health transition: the unit of the deterministic detection log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Virtual time of the detection round that fired the transition.
    pub at_us: u64,
    /// Stable physical device id.
    pub device: u32,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// What drove it.
    pub cause: TransitionCause,
}

/// Tunable thresholds of the detector. All durations are virtual
/// microseconds; all scores are integer milli-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Heartbeat lease period. Sized by the caller to a small multiple of
    /// the worst-case step time, so a healthy-but-busy worker never misses.
    pub lease_us: u64,
    /// Full missed leases that turn Healthy into Suspect.
    pub suspect_misses: u64,
    /// Full missed leases that quarantine a device (crash assumed).
    pub quarantine_misses: u64,
    /// Straggler score (milli-σ) at or above which a round counts as slow.
    pub straggler_z_milli: i64,
    /// Consecutive slow rounds that turn Healthy into Suspect.
    pub suspect_windows: u32,
    /// Consecutive slow rounds that quarantine a device (persistent
    /// degradation; transient stragglers stop short of this).
    pub quarantine_windows: u32,
    /// Clean probation rounds required to return to Healthy.
    pub probation_rounds: u32,
    /// First readmission backoff; doubles on every failed probation.
    pub backoff_base_us: u64,
    /// Failed probations before the quarantine becomes permanent.
    pub max_flaps: u32,
}

impl HealthPolicy {
    /// Default thresholds around a given lease period: suspect after one
    /// missed lease or two slow rounds, quarantine after three missed
    /// leases or four slow rounds, two clean rounds to pass probation,
    /// backoff starting at four leases, two flaps allowed.
    pub fn with_lease(lease_us: u64) -> Self {
        assert!(lease_us >= 1);
        HealthPolicy {
            lease_us,
            suspect_misses: 1,
            quarantine_misses: 3,
            straggler_z_milli: 2000,
            suspect_windows: 2,
            quarantine_windows: 4,
            probation_rounds: 2,
            backoff_base_us: lease_us.saturating_mul(4),
            max_flaps: 2,
        }
    }
}

/// Per-device detector state (internal).
#[derive(Debug, Clone)]
struct DeviceHealth {
    state: HealthState,
    lease: Lease,
    /// Consecutive rounds scored slow.
    slow_rounds: u32,
    /// Consecutive clean probation rounds.
    clean_rounds: u32,
    /// When the current quarantine began.
    quarantined_at_us: u64,
    /// Current readmission backoff (doubles per flap).
    backoff_us: u64,
    /// Failed probations so far.
    flaps: u32,
    /// Quarantined forever (flap limit hit).
    permanent: bool,
    /// A beat arrived since the last detection round.
    beat_this_round: bool,
    /// Step duration reported this round, if the device stepped.
    timed_this_round: Option<u64>,
}

/// The failure detector: one [`DeviceHealth`] per registered device, a
/// policy, and the append-only event log.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    devices: BTreeMap<u32, DeviceHealth>,
    events: Vec<HealthEvent>,
}

/// Straggler scores for one detection round: a z-score against the
/// population of step timings, in milli-units.
///
/// The center is the (lower) median and the spread is the population
/// standard deviation floored at `median / 4` — the floor encodes "under
/// 25% jitter is noise" and keeps the score sharp for the small, nearly
/// homogeneous populations this runtime schedules (2–8 devices), where a
/// single outlier dominates the raw σ. With the floor active, the score
/// crosses the default 2000 m-σ threshold exactly when a device runs at
/// ≥ 1.5× the median. Inputs are integers, the sample is sorted before
/// any float op, and summation order is fixed, so the result is
/// bit-reproducible.
fn straggler_scores(timed: &BTreeMap<u32, u64>) -> BTreeMap<u32, i64> {
    if timed.len() < 2 {
        return BTreeMap::new(); // a population of one has no outliers
    }
    let mut sample: Vec<u64> = timed.values().copied().collect();
    sample.sort_unstable();
    let median = sample[(sample.len() - 1) / 2];
    if median == 0 {
        return BTreeMap::new();
    }
    let n = sample.len() as f64;
    let mean = sample.iter().sum::<u64>() as f64 / n;
    let var = sample.iter().map(|&t| (t as f64 - mean) * (t as f64 - mean)).sum::<f64>() / n;
    let sigma = var.sqrt().max(median as f64 / 4.0);
    timed
        .iter()
        .map(|(&dev, &t)| (dev, (((t as f64 - median as f64) / sigma) * 1000.0).round() as i64))
        .collect()
}

impl HealthTracker {
    /// A tracker with no registered devices.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker { policy, devices: BTreeMap::new(), events: Vec::new() }
    }

    /// The active policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Register a device as Healthy with a fresh lease granted at `now_us`.
    /// Re-registering an existing device resets it (a reprovisioned device
    /// starts clean).
    pub fn register(&mut self, device: u32, now_us: u64) {
        self.devices.insert(
            device,
            DeviceHealth {
                state: HealthState::Healthy,
                lease: Lease::new(now_us, self.policy.lease_us),
                slow_rounds: 0,
                clean_rounds: 0,
                quarantined_at_us: 0,
                backoff_us: 0,
                flaps: 0,
                permanent: false,
                beat_this_round: false,
                timed_this_round: None,
            },
        );
    }

    /// Forget a device (it left the cluster through a *planned* path:
    /// scale-in or preemption — not a health decision).
    pub fn deregister(&mut self, device: u32) {
        self.devices.remove(&device);
    }

    /// Current state of a device, if registered.
    pub fn state(&self, device: u32) -> Option<HealthState> {
        self.devices.get(&device).map(|d| d.state)
    }

    /// All registered devices and their states, in device order.
    pub fn states(&self) -> BTreeMap<u32, HealthState> {
        self.devices.iter().map(|(&id, d)| (id, d.state)).collect()
    }

    /// Whether a device hit the flap limit and can never be readmitted.
    pub fn is_permanently_quarantined(&self, device: u32) -> bool {
        self.devices.get(&device).is_some_and(|d| d.permanent)
    }

    /// Ingest one heartbeat: renews the device's lease and records its
    /// step timing for this round's straggler scoring.
    pub fn observe(&mut self, beat: &Heartbeat) {
        obs::counter_add("health.heartbeats_total", 1);
        if let Some(d) = self.devices.get_mut(&beat.device) {
            d.lease.renew(beat.sent_at_us);
            d.beat_this_round = true;
            if beat.step_time_us.is_some() {
                d.timed_this_round = beat.step_time_us;
            }
        }
    }

    /// Run one detection round at virtual time `now_us`: score stragglers
    /// over the devices that reported timings, advance every device's
    /// state machine, and return the transitions this round produced (they
    /// are also appended to [`HealthTracker::events`]).
    pub fn end_of_round(&mut self, now_us: u64) -> Vec<HealthEvent> {
        let first_new = self.events.len();
        // Straggler population: devices that stepped this round and are
        // not quarantined (an idle parked device has no timing to score).
        let timed: BTreeMap<u32, u64> = self
            .devices
            .iter()
            .filter(|(_, d)| d.state != HealthState::Quarantined)
            .filter_map(|(&id, d)| d.timed_this_round.map(|t| (id, t)))
            .collect();
        let scores = straggler_scores(&timed);

        let ids: Vec<u32> = self.devices.keys().copied().collect();
        for id in ids {
            let score = scores.get(&id).copied().unwrap_or(0);
            self.tick_device(id, now_us, score);
        }
        for d in self.devices.values_mut() {
            d.beat_this_round = false;
            d.timed_this_round = None;
        }
        let quarantined =
            self.devices.values().filter(|d| d.state == HealthState::Quarantined).count();
        obs::gauge_set("health.quarantined", quarantined as f64);
        self.events[first_new..].to_vec()
    }

    /// The full transition log, in firing order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    fn transition(&mut self, device: u32, to: HealthState, cause: TransitionCause, now_us: u64) {
        let d = self.devices.get_mut(&device).expect("transition on registered device");
        let from = d.state;
        d.state = to;
        obs::counter_add("health.transitions_total", 1);
        obs::counter_add(&format!("health.transitions.{}", to.name()), 1);
        self.events.push(HealthEvent { at_us: now_us, device, from, to, cause });
    }

    /// Quarantine a device, with flap accounting when it falls from
    /// probation: the backoff doubles, and past `max_flaps` the quarantine
    /// is permanent.
    fn quarantine(&mut self, device: u32, now_us: u64, cause: TransitionCause) {
        let policy = self.policy;
        let d = self.devices.get_mut(&device).expect("quarantine on registered device");
        let from_probation = d.state == HealthState::Probation;
        d.quarantined_at_us = now_us;
        d.slow_rounds = 0;
        d.clean_rounds = 0;
        let mut cause = cause;
        if from_probation {
            d.flaps += 1;
            d.backoff_us = d.backoff_us.max(policy.backoff_base_us).saturating_mul(2);
            if d.flaps >= policy.max_flaps {
                d.permanent = true;
                cause = TransitionCause::FlapLimit;
            }
        } else if d.backoff_us == 0 {
            d.backoff_us = policy.backoff_base_us;
        }
        self.transition(device, HealthState::Quarantined, cause, now_us);
    }

    fn tick_device(&mut self, id: u32, now_us: u64, score: i64) {
        let policy = self.policy;
        // Snapshot the per-device facts, then decide; `transition` /
        // `quarantine` re-borrow mutably.
        let (state, missed, beat, permanent, quarantined_at, backoff) = {
            let d = self.devices.get_mut(&id).expect("tick on registered device");
            let missed = d.lease.missed_periods(now_us);
            let slow = score >= policy.straggler_z_milli;
            if slow {
                d.slow_rounds += 1;
            } else if d.timed_this_round.is_some() {
                d.slow_rounds = 0;
            }
            (d.state, missed, d.beat_this_round, d.permanent, d.quarantined_at_us, d.backoff_us)
        };
        if missed > 0 {
            obs::counter_add("health.heartbeat_misses", missed);
        }
        let slow = score >= policy.straggler_z_milli;
        let slow_rounds = self.devices[&id].slow_rounds;

        match state {
            HealthState::Quarantined => {
                // Readmission: the device must have finished its backoff
                // AND be demonstrably alive (beating). A dead device never
                // beats, so it never leaves quarantine.
                if !permanent && beat && now_us >= quarantined_at.saturating_add(backoff) {
                    let d = self.devices.get_mut(&id).expect("registered");
                    d.slow_rounds = 0;
                    d.clean_rounds = 0;
                    self.transition(
                        id,
                        HealthState::Probation,
                        TransitionCause::BackoffElapsed,
                        now_us,
                    );
                }
            }
            HealthState::Healthy | HealthState::Suspect | HealthState::Probation => {
                if missed >= policy.quarantine_misses {
                    self.quarantine(id, now_us, TransitionCause::LeaseMiss { missed });
                } else if slow_rounds >= policy.quarantine_windows {
                    self.quarantine(
                        id,
                        now_us,
                        TransitionCause::StragglerScore { score_milli: score },
                    );
                } else if state == HealthState::Probation {
                    if missed >= policy.suspect_misses || slow {
                        self.quarantine(id, now_us, TransitionCause::ProbationFailed);
                    } else if beat {
                        let d = self.devices.get_mut(&id).expect("registered");
                        d.clean_rounds += 1;
                        if d.clean_rounds >= policy.probation_rounds {
                            self.transition(
                                id,
                                HealthState::Healthy,
                                TransitionCause::ProbationPassed,
                                now_us,
                            );
                        }
                    }
                } else if state == HealthState::Healthy {
                    if missed >= policy.suspect_misses {
                        self.transition(
                            id,
                            HealthState::Suspect,
                            TransitionCause::LeaseMiss { missed },
                            now_us,
                        );
                    } else if slow_rounds >= policy.suspect_windows {
                        self.transition(
                            id,
                            HealthState::Suspect,
                            TransitionCause::StragglerScore { score_milli: score },
                            now_us,
                        );
                    }
                } else {
                    // Suspect: a fully clean round clears the suspicion.
                    if beat && missed == 0 && !slow && slow_rounds == 0 {
                        self.transition(
                            id,
                            HealthState::Healthy,
                            TransitionCause::HeartbeatResumed,
                            now_us,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEASE: u64 = 1_000;

    fn tracker(devices: u32) -> HealthTracker {
        let mut t = HealthTracker::new(HealthPolicy::with_lease(LEASE));
        for d in 0..devices {
            t.register(d, 0);
        }
        t
    }

    fn beat(device: u32, at: u64, time: Option<u64>) -> Heartbeat {
        Heartbeat { device, step: 0, sent_at_us: at, step_time_us: time }
    }

    /// Drive `rounds` rounds of period `round_us` where every device in
    /// `beating` beats with `time`, returning all transitions.
    fn run_rounds(
        t: &mut HealthTracker,
        start_us: u64,
        round_us: u64,
        rounds: u32,
        beating: &[(u32, Option<u64>)],
    ) -> Vec<HealthEvent> {
        let mut out = Vec::new();
        let mut now = start_us;
        for _ in 0..rounds {
            now += round_us;
            for &(d, time) in beating {
                t.observe(&beat(d, now, time));
            }
            out.extend(t.end_of_round(now));
        }
        out
    }

    #[test]
    fn silent_device_goes_suspect_then_quarantined() {
        let mut t = tracker(2);
        // Device 1 beats; device 0 never does. One round per lease period.
        let evs = run_rounds(&mut t, 0, LEASE, 4, &[(1, Some(100))]);
        let zero: Vec<_> = evs.iter().filter(|e| e.device == 0).collect();
        assert_eq!(zero[0].to, HealthState::Suspect);
        assert!(matches!(zero[0].cause, TransitionCause::LeaseMiss { .. }));
        assert_eq!(zero.last().unwrap().to, HealthState::Quarantined);
        assert_eq!(t.state(0), Some(HealthState::Quarantined));
        assert_eq!(t.state(1), Some(HealthState::Healthy));
    }

    #[test]
    fn suspect_recovers_on_resumed_beats() {
        let mut t = tracker(2);
        // One silent round → device 0 suspect …
        run_rounds(&mut t, 0, LEASE, 1, &[(1, Some(100))]);
        assert_eq!(t.state(0), Some(HealthState::Suspect));
        // … then it resumes beating and goes healthy again.
        let evs = run_rounds(&mut t, LEASE, LEASE / 2, 1, &[(0, Some(100)), (1, Some(100))]);
        assert!(evs.iter().any(|e| e.device == 0
            && e.to == HealthState::Healthy
            && e.cause == TransitionCause::HeartbeatResumed));
    }

    #[test]
    fn persistent_straggler_is_quarantined_transient_is_not() {
        // Persistent: 4 consecutive slow rounds cross quarantine_windows.
        let mut t = tracker(3);
        let all = [(0, Some(250u64)), (1, Some(100)), (2, Some(100))];
        let evs = run_rounds(&mut t, 0, 500, 4, &all);
        assert!(evs.iter().any(|e| e.device == 0
            && e.to == HealthState::Quarantined
            && matches!(e.cause, TransitionCause::StragglerScore { .. })));

        // Transient: 3 slow rounds stop at Suspect.
        let mut t2 = tracker(3);
        run_rounds(&mut t2, 0, 500, 3, &all);
        let clean = [(0, Some(100u64)), (1, Some(100)), (2, Some(100))];
        run_rounds(&mut t2, 1500, 500, 2, &clean);
        assert_eq!(t2.state(0), Some(HealthState::Healthy), "transient straggler recovers");
        assert!(!t2.events().iter().any(|e| e.to == HealthState::Quarantined));
    }

    #[test]
    fn readmission_waits_for_backoff_and_a_live_beat() {
        let mut t = tracker(2);
        let evs = run_rounds(&mut t, 0, LEASE, 4, &[(1, Some(100))]);
        let q_at = evs.iter().find(|e| e.to == HealthState::Quarantined).unwrap().at_us;
        let backoff = t.policy().backoff_base_us;
        // Beating again before the backoff elapses: still quarantined.
        run_rounds(&mut t, 4 * LEASE, LEASE, 2, &[(0, None), (1, Some(100))]);
        assert_eq!(t.state(0), Some(HealthState::Quarantined));
        // After the backoff, a beat readmits on probation; clean rounds
        // then return it to Healthy.
        let resume_at = q_at + backoff;
        let evs = run_rounds(&mut t, resume_at, LEASE / 2, 3, &[(0, Some(100)), (1, Some(100))]);
        assert!(evs.iter().any(|e| e.device == 0 && e.to == HealthState::Probation));
        assert_eq!(t.state(0), Some(HealthState::Healthy));
    }

    #[test]
    fn dead_device_never_leaves_quarantine() {
        let mut t = tracker(2);
        run_rounds(&mut t, 0, LEASE, 4, &[(1, Some(100))]);
        assert_eq!(t.state(0), Some(HealthState::Quarantined));
        // 20 more rounds, way past any backoff — but no beat, no parole.
        run_rounds(&mut t, 4 * LEASE, LEASE, 20, &[(1, Some(100))]);
        assert_eq!(t.state(0), Some(HealthState::Quarantined));
    }

    #[test]
    fn flapping_device_hits_the_flap_limit() {
        let mut t = tracker(2);
        let healthy_peer = (1u32, Some(100u64));
        let mut now = 0u64;
        // Quarantine device 0 (silent), then let it flap: readmit, fail
        // probation by going silent again, repeat.
        for flaps_seen in 0..t.policy().max_flaps + 1 {
            // Silent rounds until quarantined.
            while t.state(0) != Some(HealthState::Quarantined) {
                now += LEASE;
                t.observe(&beat(1, now, healthy_peer.1));
                t.end_of_round(now);
            }
            if t.is_permanently_quarantined(0) {
                break;
            }
            // Sit out any possible backoff, then beat to win probation.
            now += 20 * LEASE * (1 << (flaps_seen + 1));
            t.observe(&beat(0, now, Some(100)));
            t.observe(&beat(1, now, healthy_peer.1));
            t.end_of_round(now);
        }
        assert!(t.is_permanently_quarantined(0), "flap limit must bite");
        assert!(t.events().iter().any(|e| e.cause == TransitionCause::FlapLimit));
        // Permanently quarantined: beats no longer readmit.
        now += 100 * LEASE;
        t.observe(&beat(0, now, Some(100)));
        t.end_of_round(now);
        assert_eq!(t.state(0), Some(HealthState::Quarantined));
    }

    #[test]
    fn straggler_score_crosses_at_1_5x_median() {
        // With the σ floor at median/4, the 2000 m-σ threshold is exactly
        // a 1.5× median outlier, for any small population.
        for n in [2usize, 3, 4, 6] {
            let mut timed = BTreeMap::new();
            for d in 0..n as u32 - 1 {
                timed.insert(d, 1000u64);
            }
            timed.insert(n as u32 - 1, 1499);
            let below = straggler_scores(&timed);
            assert!(below[&(n as u32 - 1)] < 2000, "1.499× must not fire (n={n}): {below:?}");
            timed.insert(n as u32 - 1, 1500 + n as u64); // clear of rounding
            let above = straggler_scores(&timed);
            assert!(above[&(n as u32 - 1)] >= 2000, "1.5× must fire (n={n}): {above:?}");
        }
    }

    #[test]
    fn event_log_is_independent_of_observe_order() {
        let beats = [beat(0, 500, Some(100)), beat(1, 500, Some(100)), beat(2, 500, Some(400))];
        let mut logs = Vec::new();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let mut t = tracker(3);
            for _ in 0..4 {
                for i in order {
                    t.observe(&beats[i]);
                }
                t.end_of_round(500);
            }
            logs.push(t.events().to_vec());
        }
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[0], logs[2]);
    }
}

//! The EasyScale scheduler (paper §3.4) and the cluster simulation it is
//! evaluated in (§5.2–5.3).
//!
//! Architecture mirrors Figure 8:
//!
//! * [`companion`] — the per-job companion module: a database of scheduling
//!   plans and the Eq 1 analytical throughput model (`waste`, `f_overload`).
//! * [`health`] — the failure detector: heartbeat leases, straggler
//!   z-scores, and the Healthy → Suspect → Quarantined → Probation state
//!   machine whose transitions the AIMaster supervisor turns into
//!   evictions, checkpoint fallbacks, and probational readmissions.
//! * [`intra`] — the intra-job scheduler: picks the best EST-to-GPU mapping
//!   for the current allocation (Role 1), forms scale-out resource proposals
//!   (Role 2), and applies inter-job decisions (Role 3).
//! * [`inter`] — the inter-job (cluster) scheduler: greedy
//!   speedup-per-GPU proposal acceptance over the free-resource table.
//! * [`sim`] — a discrete-event cluster simulator running job traces under
//!   YARN-CS (FIFO gang scheduling), EasyScale-homo, or EasyScale-heter
//!   policies, producing the JCT/makespan/allocation-timeline numbers of
//!   Figs 14–15 and the co-location statistics of Fig 16.

#![deny(missing_docs)]

pub mod aimaster;
pub mod companion;
pub mod health;
pub mod inter;
pub mod intra;
pub mod sim;

pub use aimaster::{AiMaster, Supervisor, SupervisorAction};
pub use companion::{Companion, Plan};
pub use health::{HealthEvent, HealthPolicy, HealthState, HealthTracker, TransitionCause};
pub use inter::{Decision, InterJobScheduler};
pub use intra::{FreePool, IntraJobScheduler, ResourceProposal};
pub use sim::{ClusterSim, JobRecord, JobSpec, Policy, SimOutcome};

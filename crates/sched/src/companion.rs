//! The companion module: plan database + the Eq 1 analytical model.
//!
//! Equation 1 of the paper, as implemented (the per-type waste term carries
//! the GPU count `N_i`, which makes the algebra close — see
//! [`Plan::throughput`]'s invariant `throughput = maxP / f_overload`):
//!
//! ```text
//! nEST       = Σ_i N_i·A_i                      with nEST ≥ maxP       (1a)
//! f_overload = max_{i: N_i>0} A_i / C_i                                 (1b)
//! waste      = Σ_{i: N_i>0} N_i·(C_i − A_i/f_overload)
//!            + (nEST − maxP)/f_overload                                 (1c)
//! throughput = Σ_i N_i·C_i − waste                                      (1d)
//! ```
//!
//! Intuition: Sync-SGD paces every global step by the slowest GPU
//! (`f_overload` seconds per global step); a GPU of type i that hosts `A_i`
//! ESTs contributes `A_i` mini-batches per global step, so capability beyond
//! `A_i / f_overload` is wasted; over-provisioned EST slots (the integer
//! slack above `maxP`) are waste too.

use device::GpuType;
use easyscale::{Placement, Slot};
use models::WorkloadSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An allocation: GPU count per type (types with zero count omitted).
pub type Alloc = Vec<(GpuType, u32)>;

/// One scheduling plan: an allocation plus its EST assignment and estimated
/// throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// GPU counts per type.
    pub alloc: Alloc,
    /// Max ESTs per GPU of each type (aligned with `alloc`).
    pub a: Vec<u32>,
    /// Total EST slots (≥ maxP).
    pub n_est: u32,
    /// Seconds per global step (Eq 1b).
    pub f_overload: f64,
    /// Wasted capability, mini-batches/s (Eq 1c).
    pub waste: f64,
    /// Estimated throughput, local mini-batches/s (Eq 1d).
    pub throughput: f64,
}

/// The per-job companion module: capabilities, maxP, and the plan DB with
/// observed-throughput corrections.
#[derive(Debug, Clone)]
pub struct Companion {
    caps: BTreeMap<GpuType, f64>,
    max_p: u32,
    /// Multiplicative correction per allocation, updated from observed
    /// throughput reports (starts at 1.0).
    corrections: BTreeMap<Alloc, f64>,
}

impl Companion {
    /// Companion for a workload: capabilities from the catalog.
    /// `hetero_d2` selects D2 (hardware-agnostic) kernel capabilities — used
    /// when the job will mix GPU types.
    pub fn for_workload(spec: &WorkloadSpec, max_p: u32, hetero_d2: bool) -> Self {
        let caps = GpuType::ALL.iter().map(|&g| (g, spec.capability(g, hetero_d2))).collect();
        Companion { caps, max_p, corrections: BTreeMap::new() }
    }

    /// Companion from explicit capabilities.
    pub fn from_caps(caps: BTreeMap<GpuType, f64>, max_p: u32) -> Self {
        Companion { caps, max_p, corrections: BTreeMap::new() }
    }

    /// The job's maxP.
    pub fn max_p(&self) -> u32 {
        self.max_p
    }

    /// Capability of one GPU of `ty` (mini-batches/s).
    pub fn capability(&self, ty: GpuType) -> f64 {
        self.caps.get(&ty).copied().unwrap_or(0.0)
    }

    /// The greedy balanced per-GPU assignment both [`Companion::plan`] and
    /// [`Companion::placement_for`] derive from: each of the maxP virtual
    /// ranks goes to the GPU whose resulting load/capability is smallest.
    /// One implementation, so scored plans and executed placements can
    /// never drift apart.
    fn balanced_gpu_assignment(&self, alloc: &Alloc) -> Option<Vec<(GpuType, Vec<u32>)>> {
        let total_gpus: u32 = alloc.iter().map(|&(_, n)| n).sum();
        if total_gpus == 0 {
            return None;
        }
        let mut gpus: Vec<(GpuType, Vec<u32>)> = Vec::new();
        for &(ty, n) in alloc {
            for _ in 0..n {
                gpus.push((ty, Vec::new()));
            }
        }
        for r in 0..self.max_p {
            // Argmin by strict `<`: costs are strictly positive, so this
            // picks the first minimum exactly like a total-order comparator
            // would, without per-pair comparator overhead on the hot path.
            let mut best = 0;
            let mut best_cost = f64::INFINITY;
            for (i, (ty, v)) in gpus.iter().enumerate() {
                let cost = (v.len() + 1) as f64 / self.capability(*ty).max(1e-12);
                if cost < best_cost {
                    best = i;
                    best_cost = cost;
                }
            }
            gpus[best].1.push(r);
        }
        Some(gpus)
    }

    /// The load-balanced plan for an allocation: ESTs distributed greedily
    /// to equalize per-GPU load, then evaluated with Eq 1. Returns `None`
    /// for an empty allocation.
    pub fn plan(&self, alloc: &Alloc) -> Option<Plan> {
        let gpus = self.balanced_gpu_assignment(alloc)?;
        // A_i = max assignment over GPUs of type i.
        let mut a = Vec::with_capacity(alloc.len());
        for &(ty, _) in alloc {
            let max_a =
                gpus.iter().filter(|g| g.0 == ty).map(|g| g.1.len() as u32).max().unwrap_or(0);
            a.push(max_a);
        }
        Some(self.evaluate(alloc, &a))
    }

    /// Evaluate Eq 1 for an explicit per-type assignment `a`.
    pub fn evaluate(&self, alloc: &Alloc, a: &[u32]) -> Plan {
        assert_eq!(alloc.len(), a.len(), "assignment/alloc length mismatch");
        let n_est: u32 = alloc.iter().zip(a).map(|(&(_, n), &ai)| n * ai).sum();
        let f_overload = alloc
            .iter()
            .zip(a)
            .filter(|(&(_, n), &ai)| n > 0 && ai > 0)
            .map(|(&(ty, _), &ai)| ai as f64 / self.capability(ty).max(1e-12))
            .fold(0.0f64, f64::max);
        let total_cap: f64 = alloc.iter().map(|&(ty, n)| n as f64 * self.capability(ty)).sum();
        let (waste, throughput) = if f_overload > 0.0 {
            let per_type: f64 = alloc
                .iter()
                .zip(a)
                .filter(|(&(_, n), _)| n > 0)
                .map(|(&(ty, n), &ai)| n as f64 * (self.capability(ty) - ai as f64 / f_overload))
                .sum();
            let over = (n_est.saturating_sub(self.max_p)) as f64 / f_overload;
            let waste = per_type + over;
            (waste, total_cap - waste)
        } else {
            (total_cap, 0.0)
        };
        let correction = self.corrections.get(alloc).copied().unwrap_or(1.0);
        Plan {
            alloc: alloc.clone(),
            a: a.to_vec(),
            n_est,
            f_overload,
            waste,
            throughput: throughput * correction,
        }
    }

    /// Report an observed throughput for an allocation; the companion
    /// updates its correction when the bias is significant (>10%), as the
    /// paper's companion "actively updates the database once it has
    /// monitored significant biases".
    pub fn observe(&mut self, alloc: &Alloc, observed: f64) {
        if let Some(plan) = self.plan(alloc) {
            if plan.throughput > 0.0 {
                let bias = observed / plan.throughput;
                if (bias - 1.0).abs() > 0.10 {
                    let c = self.corrections.entry(alloc.clone()).or_insert(1.0);
                    *c *= bias;
                }
            }
        }
    }

    /// Materialize a plan as an engine [`Placement`]: virtual ranks 0..maxP
    /// distributed with the exact greedy balance the plan was scored with
    /// (both derive from [`Companion::balanced_gpu_assignment`]).
    pub fn placement_for(&self, alloc: &Alloc) -> Option<Placement> {
        let gpus = self.balanced_gpu_assignment(alloc)?;
        let slots: Vec<Slot> = gpus
            .into_iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(gpu, vranks)| Slot { gpu, vranks })
            .collect();
        Some(Placement { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> BTreeMap<GpuType, f64> {
        // V100: 10 mb/s, P100: 5, T4: 4.
        [(GpuType::V100, 10.0), (GpuType::P100, 5.0), (GpuType::T4, 4.0)].into_iter().collect()
    }

    #[test]
    fn throughput_equals_maxp_over_overload() {
        // The Eq 1 algebraic identity.
        let c = Companion::from_caps(caps(), 8);
        for alloc in [
            vec![(GpuType::V100, 2)],
            vec![(GpuType::V100, 1), (GpuType::P100, 2)],
            vec![(GpuType::V100, 2), (GpuType::P100, 1), (GpuType::T4, 1)],
        ] {
            let p = c.plan(&alloc).unwrap();
            assert!(
                (p.throughput - c.max_p() as f64 / p.f_overload).abs() < 1e-9,
                "identity violated for {alloc:?}: {p:?}"
            );
        }
    }

    #[test]
    fn single_fast_gpu_runs_at_capability() {
        let c = Companion::from_caps(caps(), 8);
        let p = c.plan(&vec![(GpuType::V100, 1)]).unwrap();
        assert_eq!(p.a, vec![8]);
        assert!((p.throughput - 10.0).abs() < 1e-9, "1 GPU, no sync waste: {p:?}");
        assert!((p.waste - 0.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_heterogeneous_assignment() {
        // maxP=8 on 1 V100 (10) + 2 P100 (5): balance gives V100 4 ESTs,
        // P100s 2 each → f = 0.4, throughput = 20.
        let c = Companion::from_caps(caps(), 8);
        let p = c.plan(&vec![(GpuType::V100, 1), (GpuType::P100, 2)]).unwrap();
        assert_eq!(p.a, vec![4, 2]);
        assert!((p.throughput - 20.0).abs() < 1e-9, "{p:?}");
        assert_eq!(p.n_est, 8);
    }

    #[test]
    fn slow_gpu_is_left_idle_when_it_would_bottleneck() {
        // maxP=2 on 1 V100 (10 mb/s) + 1 T4 (4 mb/s): splitting 1/1 would
        // pace the step at the T4 (thr 8); stacking both on the V100 yields
        // thr 10 — the balancer prefers it, and the idle T4 is pure waste.
        let c = Companion::from_caps(caps(), 2);
        let p = c.plan(&vec![(GpuType::V100, 1), (GpuType::T4, 1)]).unwrap();
        assert_eq!(p.a, vec![2, 0]);
        assert!((p.f_overload - 0.2).abs() < 1e-12, "V100 with 2 ESTs paces the step");
        assert!((p.throughput - 10.0).abs() < 1e-9, "{p:?}");
        assert!((p.waste - 4.0).abs() < 1e-9, "the idle T4's full capability is wasted: {p:?}");
        // Cross-check against the explicit 1/1 split the balancer rejected.
        let split = c.evaluate(&vec![(GpuType::V100, 1), (GpuType::T4, 1)], &[1, 1]);
        assert!((split.throughput - 8.0).abs() < 1e-9);
        assert!(split.throughput < p.throughput);
    }

    #[test]
    fn overprovision_counts_as_waste() {
        // maxP=3 on 2 V100s: balance gives a=[2] on one GPU → nEST=4 > 3.
        let c = Companion::from_caps(caps(), 3);
        let p = c.plan(&vec![(GpuType::V100, 2)]).unwrap();
        assert_eq!(p.n_est, 4);
        assert!(p.waste > 0.0);
        assert!((p.throughput - 3.0 / p.f_overload).abs() < 1e-9);
    }

    #[test]
    fn more_gpus_never_hurt_up_to_maxp() {
        let c = Companion::from_caps(caps(), 8);
        let mut last = 0.0;
        for n in 1..=8 {
            let p = c.plan(&vec![(GpuType::V100, n)]).unwrap();
            assert!(p.throughput >= last - 1e-9, "throughput must be monotone: {n} GPUs");
            last = p.throughput;
        }
        // Beyond maxP GPUs, no further gain.
        let p8 = c.plan(&vec![(GpuType::V100, 8)]).unwrap();
        let p12 = c.plan(&vec![(GpuType::V100, 12)]).unwrap();
        assert!(p12.throughput <= p8.throughput + 1e-9);
    }

    #[test]
    fn empty_allocation_has_no_plan() {
        let c = Companion::from_caps(caps(), 4);
        assert!(c.plan(&vec![]).is_none());
        assert!(c.plan(&vec![(GpuType::V100, 0)]).is_none());
    }

    #[test]
    fn observation_corrects_future_estimates() {
        let mut c = Companion::from_caps(caps(), 8);
        let alloc = vec![(GpuType::V100, 2)];
        let before = c.plan(&alloc).unwrap().throughput;
        c.observe(&alloc, before * 0.5); // real job runs at half the estimate
        let after = c.plan(&alloc).unwrap().throughput;
        assert!((after - before * 0.5).abs() / before < 0.01);
        // Small biases are ignored.
        let alloc2 = vec![(GpuType::P100, 1)];
        let b2 = c.plan(&alloc2).unwrap().throughput;
        c.observe(&alloc2, b2 * 1.05);
        assert_eq!(c.plan(&alloc2).unwrap().throughput, b2);
    }

    #[test]
    fn placement_matches_plan_assignment() {
        let c = Companion::from_caps(caps(), 8);
        let alloc = vec![(GpuType::V100, 1), (GpuType::P100, 2)];
        let placement = c.placement_for(&alloc).unwrap();
        placement.validate(8).unwrap();
        // V100 slot gets 4 ranks, P100 slots 2 each.
        let sizes: Vec<usize> = placement.slots.iter().map(|s| s.vranks.len()).collect();
        assert_eq!(sizes, vec![4, 2, 2]);
    }
}

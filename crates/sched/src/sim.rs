//! Discrete-event cluster simulator for the trace (§5.2) and co-location
//! (§5.3) experiments.
//!
//! Jobs arrive over time and carry a total amount of work (local
//! mini-batches). Under **YARN-CS** a job gang-waits, FIFO, for its full
//! requested GPU set and holds it to completion. Under **EasyScale** every
//! job is elastic from 0 GPUs up to its maxP-bounded useful maximum;
//! allocation is negotiated at every event through the intra-job schedulers'
//! resource proposals and the inter-job scheduler's greedy grants, and
//! serving-side occupancy (the co-location experiment) preempts training
//! GPUs, which EasyScale jobs release by scaling in (paying a restart
//! penalty, never failing).

use crate::companion::Companion;
use crate::inter::InterJobScheduler;
use crate::intra::{FreePool, IntraJobScheduler};
use device::{ClusterSpec, GpuType};
use models::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One job of the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: u64,
    /// Workload (decides capabilities and hetero-friendliness).
    pub workload: Workload,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Work to complete, in local mini-batches.
    pub work: f64,
    /// Logical worker count (maxP) the job was designed for.
    pub max_p: u32,
    /// Gang size requested under YARN-CS.
    pub requested_gpus: u32,
    /// GPU type requested under YARN-CS.
    pub requested_type: GpuType,
}

/// Scheduling policy under simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Apache YARN capacity scheduler, FIFO gang scheduling (Philly).
    YarnCapacity,
    /// EasyScale restricted to homogeneous allocations per job.
    EasyScaleHomo,
    /// EasyScale with heterogeneous allocations (hetero-friendly jobs mix
    /// types; conv-kernel jobs stay homogeneous per the §3.3 model scan).
    EasyScaleHeter,
}

/// Per-job outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// First time the job held any GPU.
    pub first_run: Option<f64>,
    /// Completion time.
    pub finish: f64,
}

impl JobRecord {
    /// Job completion time (queueing + running).
    pub fn jct(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Queueing delay before first GPU.
    pub fn queueing(&self) -> f64 {
        self.first_run.unwrap_or(self.finish) - self.arrival
    }
}

/// One point of the allocation timeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimePoint {
    /// Time, seconds.
    pub t: f64,
    /// GPUs held by training jobs.
    pub training_gpus: u32,
    /// GPUs held by serving jobs (co-location).
    pub serving_gpus: u32,
}

/// Simulation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-job records.
    pub records: Vec<JobRecord>,
    /// Max finish time.
    pub makespan: f64,
    /// Mean JCT.
    pub avg_jct: f64,
    /// Allocation timeline (sampled at events).
    pub timeline: Vec<TimePoint>,
    /// Scale-in (preemption) events: (time, GPUs released to serving).
    pub preemptions: Vec<(f64, u32)>,
    /// Number of training-job failures (always 0 for EasyScale; YARN jobs
    /// never fail in this simulator either — revocation is out of scope).
    pub failures: u64,
}

impl SimOutcome {
    /// Time-averaged training GPUs held.
    pub fn avg_training_gpus(&self) -> f64 {
        time_weighted_avg(&self.timeline, self.makespan, |p| p.training_gpus as f64)
    }

    /// Time-averaged total allocation (training + serving).
    pub fn avg_total_allocated(&self) -> f64 {
        time_weighted_avg(&self.timeline, self.makespan, |p| {
            (p.training_gpus + p.serving_gpus) as f64
        })
    }
}

fn time_weighted_avg(tl: &[TimePoint], end: f64, f: impl Fn(&TimePoint) -> f64) -> f64 {
    if tl.is_empty() || end <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (i, p) in tl.iter().enumerate() {
        let next_t = tl.get(i + 1).map(|q| q.t).unwrap_or(end);
        acc += f(p) * (next_t - p.t).max(0.0);
    }
    acc / end
}

/// Time-varying serving occupancy by GPU type. Ordered map: the simulator
/// iterates it, and that order must not depend on hasher state.
pub type ServingCurve = Box<dyn Fn(f64) -> BTreeMap<GpuType, u32>>;

/// The simulator.
pub struct ClusterSim {
    capacity: BTreeMap<GpuType, u32>,
    jobs: Vec<JobSpec>,
    policy: Policy,
    /// Seconds a job makes no progress after its allocation changes
    /// (checkpoint + restore + data-worker restart).
    pub restart_penalty: f64,
    /// Serving occupancy as a function of time (co-location). None = the
    /// whole cluster belongs to training.
    serving: Option<ServingCurve>,
    /// Interval at which the serving curve is re-sampled.
    pub serving_tick: f64,
}

struct JobState {
    spec: JobSpec,
    intra: IntraJobScheduler,
    remaining: f64,
    stall_until: f64,
    first_run: Option<f64>,
    finish: Option<f64>,
}

impl ClusterSim {
    /// Simulator over a cluster and a trace.
    pub fn new(cluster: &ClusterSpec, jobs: Vec<JobSpec>, policy: Policy) -> Self {
        let mut capacity = BTreeMap::new();
        for g in cluster.gpus() {
            *capacity.entry(g.gpu_type).or_insert(0) += 1;
        }
        ClusterSim {
            capacity,
            jobs,
            policy,
            restart_penalty: 10.0,
            serving: None,
            serving_tick: 300.0,
        }
    }

    /// Attach a serving-occupancy curve (co-location experiment).
    pub fn with_serving(mut self, f: impl Fn(f64) -> BTreeMap<GpuType, u32> + 'static) -> Self {
        self.serving = Some(Box::new(f));
        self
    }

    fn hetero_allowed(&self, w: Workload) -> bool {
        match self.policy {
            Policy::EasyScaleHeter => w.spec().hetero_friendly(),
            _ => false,
        }
    }

    /// Run to completion.
    pub fn run(&self) -> SimOutcome {
        let mut states: Vec<JobState> = self
            .jobs
            .iter()
            .map(|spec| {
                let hetero = self.hetero_allowed(spec.workload);
                // Heterogeneous mixing implies D2 kernels; homogeneous jobs
                // use vendor kernels. (For hetero-friendly workloads the D2
                // overhead is ≈1 anyway.)
                let companion = Companion::for_workload(&spec.workload.spec(), spec.max_p, hetero);
                JobState {
                    intra: IntraJobScheduler::new(spec.id, companion, hetero),
                    remaining: spec.work,
                    stall_until: 0.0,
                    first_run: None,
                    finish: None,
                    spec: spec.clone(),
                }
            })
            .collect();
        states.sort_by(|a, b| a.spec.arrival.total_cmp(&b.spec.arrival));

        let inter = InterJobScheduler;
        let mut t = 0.0f64;
        let mut timeline: Vec<TimePoint> = Vec::new();
        let mut preemptions: Vec<(f64, u32)> = Vec::new();
        let mut prev_serving_total = 0u32;
        let mut guard = 0u64;

        loop {
            guard += 1;
            assert!(guard < 2_000_000, "simulation failed to converge");
            let serving_now = self.serving.as_ref().map(|f| f(t)).unwrap_or_default();
            let serving_total: u32 = serving_now.values().sum();

            // Free capacity after serving occupancy.
            let mut free: FreePool = self
                .capacity
                .iter()
                .map(|(&ty, &n)| (ty, n.saturating_sub(serving_now.get(&ty).copied().unwrap_or(0))))
                .collect();

            // Allocate to arrived, unfinished jobs.
            match self.policy {
                Policy::YarnCapacity => {
                    // Subtract current gang holdings; preempt where serving
                    // pushed capacity below the held amount.
                    let mut released_now = 0u32;
                    for s in states.iter_mut() {
                        if s.finish.is_some() {
                            if !s.intra.current().is_empty() {
                                s.intra.apply_allocation(Vec::new());
                            }
                            continue;
                        }
                        let mut alloc = s.intra.current().clone();
                        let mut changed = false;
                        for (ty, n) in alloc.iter_mut() {
                            let avail = free.get_mut(ty).expect("known type");
                            if *n > *avail {
                                released_now += *n - *avail;
                                *n = *avail;
                                changed = true;
                            }
                            *avail -= *n;
                        }
                        if changed {
                            alloc.retain(|&(_, n)| n > 0);
                            s.intra.apply_allocation(alloc);
                            s.stall_until = t + self.restart_penalty;
                        }
                    }
                    if released_now > 0 {
                        preemptions.push((t, released_now));
                    }
                    // FIFO gang scheduling with head-of-line blocking.
                    for s in states.iter_mut() {
                        if s.finish.is_some() || s.spec.arrival > t {
                            continue;
                        }
                        if !s.intra.current().is_empty() {
                            continue; // running with its gang
                        }
                        let need = s.spec.requested_gpus;
                        let ty = s.spec.requested_type;
                        let avail = free.get(&ty).copied().unwrap_or(0);
                        if avail >= need {
                            *free.get_mut(&ty).unwrap() -= need;
                            s.intra.apply_allocation(vec![(ty, need)]);
                            s.stall_until = t; // gang jobs start immediately
                            s.first_run.get_or_insert(t);
                        } else {
                            break; // strict FIFO: head of line blocks
                        }
                    }
                }
                Policy::EasyScaleHomo | Policy::EasyScaleHeter => {
                    // Re-plan the whole training allocation from scratch at
                    // every event (arrival / completion / serving change):
                    // jobs are elastic, so the intra-job schedulers rebuild
                    // their plans against current capacity and the inter-job
                    // scheduler grants greedily. Jobs whose allocation comes
                    // out unchanged keep running; changed jobs pay the
                    // restart penalty (checkpoint + reschedule, seconds).
                    let prev: Vec<crate::companion::Alloc> =
                        states.iter().map(|s| s.intra.current().clone()).collect();
                    let mut prev_by_type: BTreeMap<GpuType, u32> = BTreeMap::new();
                    for a in &prev {
                        for &(ty, n) in a {
                            *prev_by_type.entry(ty).or_insert(0) += n;
                        }
                    }
                    for s in states.iter_mut() {
                        if !s.intra.current().is_empty() {
                            s.intra.apply_allocation(Vec::new());
                        }
                    }

                    // Seed every arrived job with one GPU (arrival order):
                    // a job's first GPU outranks anyone's marginal growth —
                    // this is why EasyScale queueing is ~zero.
                    for s in states.iter_mut() {
                        if s.finish.is_some() || s.spec.arrival > t {
                            continue;
                        }
                        let best_ty = GpuType::ALL
                            .iter()
                            .filter(|&&ty| free.get(&ty).copied().unwrap_or(0) > 0)
                            // A non-D2 job that has ever run is pinned to its
                            // type; seeding must respect that or bits change.
                            .filter(|&&ty| s.intra.pinned_type().is_none_or(|p| p == ty))
                            .max_by(|a, b| {
                                s.intra
                                    .companion()
                                    .capability(**a)
                                    .total_cmp(&s.intra.companion().capability(**b))
                            })
                            .copied();
                        if let Some(ty) = best_ty {
                            *free.get_mut(&ty).unwrap() -= 1;
                            s.intra.apply_allocation(vec![(ty, 1)]);
                        }
                    }
                    // Proposal/grant rounds until a fixpoint.
                    for _round in 0..64 {
                        let mut proposals = Vec::new();
                        for s in states.iter() {
                            if s.finish.is_some() || s.spec.arrival > t {
                                continue;
                            }
                            proposals.extend(s.intra.proposals(&free, 3));
                        }
                        let grants = inter.decide(proposals, &mut free);
                        if grants.is_empty() {
                            break;
                        }
                        for g in grants {
                            let s = states
                                .iter_mut()
                                .find(|s| s.spec.id == g.job)
                                .expect("granted job exists");
                            let mut alloc = s.intra.current().clone();
                            match alloc.iter_mut().find(|(ty, _)| *ty == g.gpu) {
                                Some(slot) => slot.1 += g.count,
                                None => alloc.push((g.gpu, g.count)),
                            }
                            s.intra.apply_allocation(alloc);
                        }
                    }
                    // Charge the scale penalty only to jobs whose allocation
                    // actually changed; stamp first_run.
                    let mut new_training = 0u32;
                    for (s, old) in states.iter_mut().zip(&prev) {
                        let new = s.intra.current().clone();
                        new_training += new.iter().map(|&(_, n)| n).sum::<u32>();
                        if !new.is_empty() {
                            s.first_run.get_or_insert(t);
                        }
                        if new != *old && !(new.is_empty() && old.is_empty()) {
                            s.stall_until = s.stall_until.max(t + self.restart_penalty);
                        }
                    }
                    let _ = new_training;
                    // A serving spike that pushed training off a GPU type is
                    // a preemption (GPUs released to serving within one
                    // tick) — even if the jobs migrated to other types.
                    if serving_total > prev_serving_total {
                        let mut new_by_type: BTreeMap<GpuType, u32> = BTreeMap::new();
                        for st in states.iter() {
                            for &(ty, n) in st.intra.current() {
                                *new_by_type.entry(ty).or_insert(0) += n;
                            }
                        }
                        let released: u32 = prev_by_type
                            .iter()
                            .map(|(ty, &p)| {
                                p.saturating_sub(new_by_type.get(ty).copied().unwrap_or(0))
                            })
                            .sum();
                        if released > 0 {
                            preemptions.push((t, released));
                        }
                    }
                }
            }
            prev_serving_total = serving_total;

            // Record the timeline point.
            let training_gpus: u32 = states
                .iter()
                .filter(|s| s.finish.is_none())
                .flat_map(|s| s.intra.current().iter().map(|&(_, n)| n))
                .sum();
            timeline.push(TimePoint { t, training_gpus, serving_gpus: serving_total });

            // Compute rates and the next event horizon.
            let mut next = f64::INFINITY;
            // Next arrival.
            for s in &states {
                if s.spec.arrival > t {
                    next = next.min(s.spec.arrival);
                }
            }
            // Serving curve tick.
            if self.serving.is_some() {
                let tick = (t / self.serving_tick).floor() * self.serving_tick + self.serving_tick;
                next = next.min(tick);
            }
            // Stall expiry and completions.
            for s in &states {
                if s.finish.is_some() || s.spec.arrival > t {
                    continue;
                }
                if s.stall_until > t {
                    next = next.min(s.stall_until);
                    continue;
                }
                if let Some(plan) = s.intra.current_plan() {
                    if plan.throughput > 0.0 {
                        next = next.min(t + s.remaining / plan.throughput);
                    }
                }
            }

            if next.is_infinite() {
                // Nothing can make progress and nothing will arrive: done
                // (or deadlocked, which the assert below catches).
                let unfinished = states.iter().filter(|s| s.finish.is_none()).count();
                assert_eq!(
                    unfinished, 0,
                    "{unfinished} jobs can never finish (cluster too small?)"
                );
                break;
            }

            // Integrate progress to `next`.
            let dt_total = next - t;
            for s in states.iter_mut() {
                if s.finish.is_some() || s.spec.arrival > t {
                    continue;
                }
                let run_start = s.stall_until.max(t);
                if run_start >= next {
                    continue;
                }
                let dt = next - run_start;
                if let Some(plan) = s.intra.current_plan() {
                    s.remaining -= plan.throughput * dt;
                    if s.remaining <= 1e-6 {
                        s.remaining = 0.0;
                        s.finish = Some(next);
                    }
                }
            }
            let _ = dt_total;
            t = next;

            if states.iter().all(|s| s.finish.is_some()) {
                // Final timeline point with everything released.
                timeline.push(TimePoint {
                    t,
                    training_gpus: 0,
                    serving_gpus: self.serving.as_ref().map(|f| f(t).values().sum()).unwrap_or(0),
                });
                break;
            }
        }

        let records: Vec<JobRecord> = states
            .iter()
            .map(|s| JobRecord {
                id: s.spec.id,
                arrival: s.spec.arrival,
                first_run: s.first_run,
                finish: s.finish.expect("all jobs finished"),
            })
            .collect();
        let makespan = records.iter().map(|r| r.finish).fold(0.0, f64::max);
        let avg_jct = records.iter().map(|r| r.jct()).sum::<f64>() / records.len().max(1) as f64;
        let outcome = SimOutcome { records, makespan, avg_jct, timeline, preemptions, failures: 0 };

        // Figs 14–16 observables for the whole run.
        for r in &outcome.records {
            obs::observe("sched.queueing_delay_s", r.queueing());
            obs::observe("sched.jct_s", r.jct());
        }
        obs::counter_add("sched.preemptions_total", outcome.preemptions.len() as u64);
        let total_capacity: u32 = self.capacity.values().sum();
        if total_capacity > 0 {
            obs::gauge_set(
                "sched.utilization",
                outcome.avg_training_gpus() / total_capacity as f64,
            );
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::paper_trace_cluster()
    }

    fn job(id: u64, arrival: f64, work: f64, gpus: u32) -> JobSpec {
        JobSpec {
            id,
            workload: Workload::ResNet50,
            arrival,
            work,
            max_p: gpus,
            requested_gpus: gpus,
            requested_type: GpuType::V100,
        }
    }

    #[test]
    fn single_job_same_finish_order_both_policies() {
        let jobs = vec![job(1, 0.0, 10_000.0, 4)];
        let yarn = ClusterSim::new(&cluster(), jobs.clone(), Policy::YarnCapacity).run();
        let es = ClusterSim::new(&cluster(), jobs, Policy::EasyScaleHomo).run();
        assert_eq!(yarn.records.len(), 1);
        assert_eq!(es.records.len(), 1);
        assert!(yarn.records[0].finish > 0.0 && es.records[0].finish > 0.0);
    }

    #[test]
    fn yarn_fifo_blocks_small_jobs_behind_big_ones() {
        // Big job takes all 32 V100s; small job arrives right after and must
        // queue under YARN but runs immediately under EasyScale.
        let jobs = vec![job(1, 0.0, 200_000.0, 32), job(2, 10.0, 1_000.0, 1)];
        let yarn = ClusterSim::new(&cluster(), jobs.clone(), Policy::YarnCapacity).run();
        let es = ClusterSim::new(&cluster(), jobs, Policy::EasyScaleHomo).run();
        let yarn_small = yarn.records.iter().find(|r| r.id == 2).unwrap();
        let es_small = es.records.iter().find(|r| r.id == 2).unwrap();
        assert!(yarn_small.queueing() > 100.0, "YARN small job queues: {}", yarn_small.queueing());
        assert!(es_small.queueing() < 60.0, "EasyScale starts fast: {}", es_small.queueing());
        assert!(es_small.jct() < yarn_small.jct());
    }

    #[test]
    fn easyscale_heter_uses_more_gpus_for_friendly_jobs() {
        let mk = |id| JobSpec {
            id,
            workload: Workload::Bert, // hetero-friendly
            arrival: 0.0,
            work: 50_000.0,
            max_p: 16,
            requested_gpus: 8,
            requested_type: GpuType::V100,
        };
        let jobs: Vec<JobSpec> = (0..6).map(mk).collect();
        let homo = ClusterSim::new(&cluster(), jobs.clone(), Policy::EasyScaleHomo).run();
        let heter = ClusterSim::new(&cluster(), jobs, Policy::EasyScaleHeter).run();
        assert!(
            heter.avg_training_gpus() > homo.avg_training_gpus(),
            "heter {} vs homo {}",
            heter.avg_training_gpus(),
            homo.avg_training_gpus()
        );
        assert!(heter.makespan <= homo.makespan * 1.05);
    }

    #[test]
    fn serving_occupancy_preempts_training() {
        let jobs = vec![job(1, 0.0, 400_000.0, 8)];
        // Serving grabs all V100s from t=600 to t=1200.
        let sim = ClusterSim::new(&cluster(), jobs, Policy::EasyScaleHomo).with_serving(|t| {
            if (600.0..1200.0).contains(&t) {
                [(GpuType::V100, 32)].into_iter().collect()
            } else {
                BTreeMap::new()
            }
        });
        let out = sim.run();
        assert!(!out.preemptions.is_empty(), "serving spike must preempt training");
        assert_eq!(out.failures, 0, "EasyScale jobs never fail on preemption");
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn timeline_is_monotone_in_time() {
        let jobs = vec![job(1, 0.0, 10_000.0, 4), job(2, 50.0, 5_000.0, 2)];
        let out = ClusterSim::new(&cluster(), jobs, Policy::EasyScaleHomo).run();
        assert!(out.timeline.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(out.makespan > 0.0);
        assert!(out.avg_jct > 0.0);
    }
}

//! The cross-crate call graph: every [`FnDef`] in the workspace becomes a
//! node, every call expression an edge to its resolved candidates.
//!
//! Resolution is name-based and deliberately over-approximate — a token
//! scanner cannot type-check receivers — but it is *deterministic*: nodes
//! are sorted by `(crate, file, line)`, candidate sets are ordered, and the
//! same input files produce the same graph regardless of visit order.
//! Over-approximation errs toward extra edges, which errs toward reporting
//! a taint flow; the suppression mechanism is the audited escape valve.

use crate::items::{CallSite, CalleeRef, FileItems, FnDef};
use std::collections::{BTreeMap, VecDeque};

/// One resolved edge: caller → callee, with the call-site line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the calling fn in [`Graph::fns`].
    pub caller: usize,
    /// Index of the called fn in [`Graph::fns`].
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All fn definitions, sorted by `(crate, file, line)` — indices into
    /// this vec are the node ids used everywhere else.
    pub fns: Vec<FnDef>,
    /// Forward adjacency: `edges[caller]` lists resolved callees in call
    /// order (deduplicated per callee, first call site wins).
    pub edges: Vec<Vec<Edge>>,
    /// Reverse adjacency: `callers[callee]` lists the edges arriving at a
    /// node — what taint propagation walks.
    pub callers: Vec<Vec<Edge>>,
}

/// The package name of the `core` crate directory differs from its path;
/// both spellings resolve to the directory name.
fn crate_alias(seg: &str) -> &str {
    if seg == "easyscale" {
        "core"
    } else {
        seg
    }
}

impl Graph {
    /// Build the graph from per-file item models. Input order does not
    /// matter: files are sorted before node ids are assigned.
    pub fn build(mut files: Vec<FileItems>) -> Graph {
        files.sort_by(|a, b| (&a.crate_name, &a.file).cmp(&(&b.crate_name, &b.file)));

        let mut fns: Vec<FnDef> = Vec::new();
        // (file index into `files`, fn index into `fns`) pairs to walk calls
        // with their defining file's `use` table afterwards.
        let mut origin: Vec<(usize, usize)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for d in &f.fns {
                origin.push((fi, fns.len()));
                fns.push(d.clone());
            }
        }

        // Name → node ids (already in (crate,file,line) order by build order).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in fns.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(i);
        }
        let workspace_crates: Vec<&str> = files.iter().map(|f| f.crate_name.as_str()).collect();

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for &(fi, ni) in &origin {
            let caller = &fns[ni];
            let uses = &files[fi].uses;
            for call in &caller.calls {
                for cal in resolve(call, caller, &by_name, &fns, uses, &workspace_crates) {
                    if cal == ni {
                        continue; // self-recursion adds nothing to taint
                    }
                    let e = Edge { caller: ni, callee: cal, line: call.line };
                    if !edges[ni].iter().any(|x| x.callee == cal) {
                        edges[ni].push(e);
                    }
                }
            }
        }
        let mut callers: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for es in &edges {
            for e in es {
                callers[e.callee].push(*e);
            }
        }
        Graph { fns, edges, callers }
    }

    /// Node ids of every fn named `name` (sorted order).
    pub fn named(&self, name: &str) -> Vec<usize> {
        self.fns.iter().enumerate().filter(|(_, d)| d.name == name).map(|(i, _)| i).collect()
    }

    /// Forward BFS from `roots`, never entering a node `cut` rejects
    /// (roots themselves are visited unconditionally). Returns the visited
    /// set and, per node, the `(caller, call-site line)` it was first
    /// reached through — enough to rebuild a shortest call-path witness.
    /// Deterministic: roots are sorted and edges are walked in build order.
    pub fn reachable_from(
        &self,
        roots: &[usize],
        cut: &dyn Fn(&FnDef) -> bool,
    ) -> (Vec<bool>, Vec<Option<(usize, u32)>>) {
        let mut visited = vec![false; self.fns.len()];
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; self.fns.len()];
        let mut roots: Vec<usize> = roots.to_vec();
        roots.sort_unstable();
        roots.dedup();
        let mut queue = VecDeque::new();
        for r in roots {
            if !visited[r] {
                visited[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for e in &self.edges[f] {
                let c = e.callee;
                if visited[c] || cut(&self.fns[c]) {
                    continue;
                }
                visited[c] = true;
                parent[c] = Some((f, e.line));
                queue.push_back(c);
            }
        }
        (visited, parent)
    }
}

/// Resolve one call site to candidate node ids, in ascending id order.
fn resolve(
    call: &CallSite,
    caller: &FnDef,
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnDef],
    uses: &[Vec<String>],
    workspace_crates: &[&str],
) -> Vec<usize> {
    match &call.callee {
        // `recv.name(…)`: any method (self-taking fn) with that name. The
        // receiver type is unknowable lexically, so all impls qualify.
        CalleeRef::Method { name } => by_name
            .get(name.as_str())
            .map(|c| c.iter().copied().filter(|&i| fns[i].has_self).collect())
            .unwrap_or_default(),
        // `a::b::name(…)`: the qualifier narrows the candidates.
        CalleeRef::Path { segs } => {
            let name = segs.last().expect("path has a final segment");
            let Some(cands) = by_name.get(name.as_str()) else { return Vec::new() };
            let qual = &segs[segs.len() - 2];
            // `Self::helper(…)` — the caller's own impl type.
            let qual_ty: Option<&str> = if qual == "Self" {
                caller.self_ty.as_deref()
            } else if qual.chars().next().is_some_and(char::is_uppercase) {
                Some(qual.as_str())
            } else {
                None
            };
            if let Some(ty) = qual_ty {
                // Associated call through a type: match impl type; the
                // crate is pinned too when the path names one.
                let by_ty: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].self_ty.as_deref() == Some(ty))
                    .collect();
                if !by_ty.is_empty() {
                    return by_ty;
                }
                return Vec::new(); // `Instant::now` etc. — external type
            }
            // Module-qualified: pin the crate if the first segment names a
            // workspace crate (directly or through an alias).
            let head = crate_alias(segs[0].as_str());
            if workspace_crates.contains(&head) {
                return cands.iter().copied().filter(|&i| fns[i].crate_name == head).collect();
            }
            // `zoo::build_proxy(…)` — a module of some crate. Free fns with
            // the name anywhere qualify.
            cands.iter().copied().filter(|&i| !fns[i].has_self).collect()
        }
        // `name(…)`: a `use` import may pin the crate; otherwise prefer
        // free fns of the caller's own crate, then any free fn.
        CalleeRef::Bare { name } => {
            let Some(cands) = by_name.get(name.as_str()) else { return Vec::new() };
            let free: Vec<usize> = cands.iter().copied().filter(|&i| !fns[i].has_self).collect();
            if let Some(u) = uses.iter().find(|u| u.last() == Some(name)) {
                let head = crate_alias(u[0].as_str());
                if workspace_crates.contains(&head) {
                    let pinned: Vec<usize> =
                        free.iter().copied().filter(|&i| fns[i].crate_name == head).collect();
                    if !pinned.is_empty() {
                        return pinned;
                    }
                }
            }
            let local: Vec<usize> =
                free.iter().copied().filter(|&i| fns[i].crate_name == caller.crate_name).collect();
            if !local.is_empty() {
                return local;
            }
            free
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn graph(files: &[(&str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(c, src)| parse_file(src, c, &format!("crates/{c}/src/lib.rs")))
                .collect(),
        )
    }

    #[test]
    fn cross_crate_path_calls_resolve_to_the_named_crate() {
        let g = graph(&[
            ("alpha", "pub fn entry() { beta::helper(); }"),
            ("beta", "pub fn helper() {}"),
            ("gamma", "pub fn helper() {}"),
        ]);
        let entry = g.named("entry")[0];
        assert_eq!(g.edges[entry].len(), 1);
        assert_eq!(g.fns[g.edges[entry][0].callee].qualified(), "beta::helper");
    }

    #[test]
    fn method_calls_resolve_to_all_impls() {
        let g = graph(&[
            ("alpha", "struct A; impl A { pub fn tick(&self) {} }"),
            ("beta", "struct B; impl B { pub fn tick(&self) {} }\npub fn go(x: &B) { x.tick(); }"),
        ]);
        let go = g.named("go")[0];
        let callees: Vec<String> =
            g.edges[go].iter().map(|e| g.fns[e.callee].qualified()).collect();
        assert_eq!(callees, vec!["alpha::A::tick", "beta::B::tick"]);
    }

    #[test]
    fn bare_calls_prefer_the_callers_crate() {
        let g = graph(&[
            ("alpha", "pub fn helper() {}\npub fn entry() { helper(); }"),
            ("beta", "pub fn helper() {}"),
        ]);
        let entry = g.named("entry")[0];
        assert_eq!(g.edges[entry].len(), 1);
        assert_eq!(g.fns[g.edges[entry][0].callee].qualified(), "alpha::helper");
    }

    #[test]
    fn use_imports_pin_bare_calls_cross_crate() {
        let g = graph(&[
            ("alpha", "use beta::helper;\npub fn entry() { helper(); }"),
            ("beta", "pub fn helper() {}"),
            ("gamma", "pub fn helper() {}"),
        ]);
        let entry = g.named("entry")[0];
        assert_eq!(g.edges[entry].len(), 1);
        assert_eq!(g.fns[g.edges[entry][0].callee].qualified(), "beta::helper");
    }

    #[test]
    fn external_type_calls_resolve_to_nothing() {
        let g = graph(&[("alpha", "pub fn entry() { let t = Instant::now(); }")]);
        let entry = g.named("entry")[0];
        assert!(g.edges[entry].is_empty());
    }

    #[test]
    fn build_is_order_invariant() {
        let a = ("alpha", "pub fn entry() { beta::helper(); }");
        let b = ("beta", "pub fn helper() { gamma(); }\nfn gamma() {}");
        let g1 = graph(&[a, b]);
        let g2 = graph(&[b, a]);
        let names1: Vec<String> = g1.fns.iter().map(|f| f.qualified()).collect();
        let names2: Vec<String> = g2.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names1, names2);
        assert_eq!(g1.edges.len(), g2.edges.len());
        for (e1, e2) in g1.edges.iter().zip(&g2.edges) {
            assert_eq!(e1, e2);
        }
    }
}

//! The rule catalog: each rule maps one source of hidden non-determinism
//! from the paper's D0/D1/D2 audit onto a token-level detector. See
//! docs/DETLINT.md for the catalog with rationale and suppression syntax.
//!
//! Detectors are deliberately heuristic — a token scanner cannot type-check
//! — so every rule errs toward firing and relies on two escape valves:
//! the workspace [`Config`](crate::Config) scoping rules to the crates
//! where they are load-bearing, and per-line
//! `// detlint::allow(rule): reason` suppressions for the (rare, audited)
//! sites that are deterministic for reasons the scanner cannot see.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::{Config, Finding};

/// Static description of one rule.
pub struct Rule {
    /// Rule id, as used in suppression comments (`no-hash-iter`).
    pub name: &'static str,
    /// Paper determinism level the rule protects (D0/D1/D2).
    pub level: &'static str,
    /// One-line rationale shown in reports.
    pub summary: &'static str,
}

/// Every rule detlint knows, in catalog order.
pub const CATALOG: &[Rule] = &[
    Rule {
        name: "no-hash-iter",
        level: "D0",
        summary: "iteration over HashMap/HashSet lets hasher state pick the order",
    },
    Rule {
        name: "no-wall-clock",
        level: "D0",
        summary: "raw Instant/SystemTime reads outside obs leak wall time into behavior",
    },
    Rule {
        name: "no-raw-float-accum",
        level: "D1",
        summary: "float accumulation outside order-parameterized kernels hides reduction order",
    },
    Rule {
        name: "no-adhoc-rng",
        level: "D0",
        summary: "randomness not drawn from esrng Philox streams is unreplayable",
    },
    Rule {
        name: "no-thread-order",
        level: "D0",
        summary: "spawn/channel patterns can leak thread completion order into results",
    },
    Rule {
        name: "no-float-key-sort",
        level: "D1",
        summary: "ordering by an f32/f64 key via partial_cmp is not a total order (NaN, -0.0)",
    },
    Rule {
        name: "unused-suppression",
        level: "meta",
        summary: "a detlint::allow comment that matches no finding is a stale audit record",
    },
];

/// Look up a catalog rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.name == name)
}

/// Per-file analysis context shared by all detectors.
struct Ctx<'a> {
    toks: &'a [Tok],
    file: &'a str,
    /// `(start_line, end_line)` of `#[cfg(test)] mod … { … }` regions.
    test_regions: Vec<(u32, u32)>,
    /// For each token index: index into `fns` of the innermost enclosing
    /// fn, or usize::MAX at module level.
    fn_of: Vec<usize>,
    /// For each fn: does its signature name an order-parameter type
    /// (KernelProfile and friends) — i.e. accumulation order is explicit?
    fn_exempt: Vec<bool>,
}

impl Ctx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    fn exempt_fn(&self, tok_idx: usize) -> bool {
        let f = self.fn_of[tok_idx];
        f != usize::MAX && self.fn_exempt[f]
    }

    fn finding(&self, rule_name: &'static str, line: u32, message: String) -> Finding {
        let r = rule(rule_name).expect("catalog rule");
        Finding { rule: r.name, level: r.level, file: self.file.to_string(), line, message }
    }
}

/// Run the detectors only — no suppression handling. Both ledgered entry
/// points layer allow-consumption on top of this.
fn detect(lexed: &Lexed, crate_name: &str, file: &str, cfg: &Config) -> Vec<Finding> {
    let toks = &lexed.toks;
    let ctx = Ctx {
        toks,
        file,
        test_regions: if cfg.skip_test_code { test_regions(toks) } else { Vec::new() },
        fn_of: Vec::new(),
        fn_exempt: Vec::new(),
    };
    let ctx = with_fn_scopes(ctx, cfg);

    let deterministic = cfg.deterministic_path.iter().any(|c| c == crate_name);
    let mut findings = Vec::new();
    if deterministic {
        no_hash_iter(&ctx, &mut findings);
        no_adhoc_rng(&ctx, &mut findings);
        no_thread_order(&ctx, &mut findings);
    }
    if !cfg.wall_clock_exempt.iter().any(|c| c == crate_name) {
        no_wall_clock(&ctx, &mut findings);
    }
    if cfg.float_accum_crates.iter().any(|c| c == crate_name) {
        no_raw_float_accum(&ctx, &mut findings);
    }
    if deterministic {
        no_float_key_sort(&ctx, cfg, &mut findings);
    }
    findings
}

/// Run every applicable rule over one lexed file. `crate_name` is the
/// directory name under `crates/` (e.g. `core`, `sched`).
///
/// Suppressions go through a file-local [`crate::suppress::AllowSet`]
/// ledger: `// detlint::allow(rule[, rule…]): reason` on the finding's own
/// line or the line directly above suppresses exactly the named rules, and
/// an allow that suppressed nothing is itself a finding (stale-audit
/// hygiene). Allows owned by other passes (taint/concur/accum tokens) are
/// excluded by the domain scoping inside [`crate::suppress::AllowSet::stale`];
/// a shared-ledger caller uses [`check_file_with`] instead and does the
/// accounting across every mode at once.
pub fn check_file(lexed: &Lexed, crate_name: &str, file: &str, cfg: &Config) -> Vec<Finding> {
    let mut findings = detect(lexed, crate_name, file, cfg);
    let mut allows = crate::suppress::AllowSet::new();
    let regions = if cfg.skip_test_code { test_regions(&lexed.toks) } else { Vec::new() };
    allows.scan_file(lexed, file, &regions);
    findings.retain(|f| !allows.consume(file, f.line, f.rule));
    if cfg.report_unused_suppressions {
        findings.extend(allows.stale(
            &[crate::suppress::Domain::Leaf],
            true,
            crate::suppress::phrase::LEAF,
        ));
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// [`check_file`] against a *shared* allow ledger (`--all`): detectors run
/// and consume from `allows` — including for the findings they suppress,
/// so the unified accounting sees the usage — while the caller owns both
/// the per-file scans and the cross-mode stale verdict.
pub fn check_file_with(
    lexed: &Lexed,
    crate_name: &str,
    file: &str,
    cfg: &Config,
    allows: &mut crate::suppress::AllowSet,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = detect(lexed, crate_name, file, cfg)
        .into_iter()
        .filter(|f| !allows.consume(file, f.line, f.rule))
        .collect();
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// [`test_regions`] for sibling modules (the item model marks test fns).
pub(crate) fn test_regions_pub(toks: &[Tok]) -> Vec<(u32, u32)> {
    test_regions(toks)
}

/// Find `#[cfg(test)] mod … { … }` line ranges by brace matching.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test =
            toks[i].text == "#" && matches(toks, i + 1, &["[", "cfg", "(", "test", ")", "]"]);
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip further attributes between the cfg and the item.
        while j < toks.len() && toks[j].text == "#" {
            j += 1; // '['
            let mut depth = 0;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if j < toks.len() && toks[j].text == "mod" {
            // Find the opening brace, then its match.
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if j < toks.len() {
                let start_line = toks[i].line;
                let mut depth = 0;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                out.push((start_line, toks[j].line));
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Do tokens at `start` match `pat` textually?
fn matches(toks: &[Tok], start: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| toks.get(start + k).is_some_and(|t| t.text == *p))
}

/// Annotate every token with its enclosing fn and whether that fn's
/// signature names an order-parameter type (making ordered accumulation
/// explicit and exempt from `no-raw-float-accum`).
fn with_fn_scopes<'a>(mut ctx: Ctx<'a>, cfg: &Config) -> Ctx<'a> {
    let toks = ctx.toks;
    let mut fn_of = vec![usize::MAX; toks.len()];
    let mut fn_exempt: Vec<bool> = Vec::new();
    // Stack of (fn index, brace depth at body open).
    let mut stack: Vec<(usize, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                while let Some(&(_, d)) = stack.last() {
                    if depth < d {
                        stack.pop();
                    } else {
                        break;
                    }
                }
            }
            "fn" if t.kind == TokKind::Ident => {
                // Signature runs to the body `{` at paren depth 0 (or to a
                // `;` for a trait method declaration).
                let mut j = i + 1;
                let mut parens = 0i32;
                let mut exempt = false;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" => parens += 1,
                        ")" => parens -= 1,
                        ";" if parens == 0 => break, // no body
                        "{" if parens == 0 => break,
                        _ => {
                            if toks[j].kind == TokKind::Ident
                                && cfg.order_param_types.iter().any(|o| o == &toks[j].text)
                            {
                                exempt = true;
                            }
                        }
                    }
                    fn_of[j] = usize::MAX; // signature tokens stay unscoped
                    j += 1;
                }
                if j < toks.len() && toks[j].text == "{" {
                    let idx = fn_exempt.len();
                    fn_exempt.push(exempt);
                    // The body-open brace belongs to the fn scope.
                    depth += 1;
                    stack.push((idx, depth));
                    if let Some(&(f, _)) = stack.last() {
                        fn_of[j] = f;
                    }
                    i = j + 1;
                    // Tag subsequent tokens in the main loop below.
                    continue;
                }
                i = j + 1;
                continue;
            }
            _ => {}
        }
        if let Some(&(f, _)) = stack.last() {
            fn_of[i] = f;
        }
        i += 1;
    }
    ctx.fn_of = fn_of;
    ctx.fn_exempt = fn_exempt;
    ctx
}

/// Statement bounds around token `i`: `(start, end)` token indices between
/// the nearest `;`/`{`/`}` on each side (end exclusive).
fn statement_bounds(toks: &[Tok], i: usize) -> (usize, usize) {
    let mut a = i;
    while a > 0 {
        let t = &toks[a - 1].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        a -= 1;
    }
    let mut b = i;
    while b < toks.len() {
        let t = &toks[b].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        b += 1;
    }
    (a, b)
}

const INT_TYPES: &[&str] =
    &["usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128"];

fn slice_has(toks: &[Tok], a: usize, b: usize, words: &[&str]) -> bool {
    toks[a..b].iter().any(|t| t.kind == TokKind::Ident && words.contains(&t.text.as_str()))
}

/// Does the signature of the fn enclosing token `i` mention f32/f64?
/// (Signature tokens are the ones between the `fn` keyword and the body.)
fn fn_sig_has_float(toks: &[Tok], i: usize, fn_of: &[usize]) -> bool {
    let f = fn_of[i];
    if f == usize::MAX {
        return false;
    }
    // Walk back to this fn's `fn` keyword: the first token before the body
    // whose scope differs. Simpler: scan backwards for `fn` at any point
    // where the scope annotation transitions into `f`.
    let mut body_open = i;
    while body_open > 0 && !(toks[body_open].text == "{" && fn_of[body_open] == f) {
        body_open -= 1;
    }
    let mut j = body_open;
    while j > 0 && toks[j].text != "fn" {
        j -= 1;
    }
    slice_has(toks, j, body_open, &["f32", "f64"])
}

// ---------------------------------------------------------------------------
// Rule: no-hash-iter (D0)
// ---------------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn no_hash_iter(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    // Pass 1: collect identifiers declared with a hash-table type, file-wide
    // (fields, params, lets). Coarse on purpose: a shadowing non-hash
    // binding of the same name is rare and only costs a suppression.
    let mut hash_idents: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `name : [&] [mut] [std::collections::] HashMap`
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2; // skip `collections ::`, `std ::`
        }
        let mut k = j;
        while k > 0 && (toks[k - 1].text == "&" || toks[k - 1].text == "mut") {
            k -= 1;
        }
        if k >= 2 && toks[k - 1].text == ":" && toks[k - 2].kind == TokKind::Ident {
            hash_idents.push(&toks[k - 2].text);
            continue;
        }
        // `let [mut] name = HashMap::new/with_capacity/from/default`
        if matches(toks, i + 1, &["::"])
            && toks.get(i + 2).is_some_and(|t| {
                ["new", "with_capacity", "from", "default"].contains(&t.text.as_str())
            })
            && k >= 2
            && toks[k - 1].text == "="
            && toks[k - 2].kind == TokKind::Ident
        {
            hash_idents.push(&toks[k - 2].text);
        }
    }
    hash_idents.sort_unstable();
    hash_idents.dedup();
    if hash_idents.is_empty() {
        return;
    }

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        // `hash . iter() / keys() / …`
        if hash_idents.binary_search(&t.text.as_str()).is_ok()
            && matches(toks, i + 1, &["."])
            && toks.get(i + 2).is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            out.push(ctx.finding(
                "no-hash-iter",
                t.line,
                format!(
                    "`{}.{}()` iterates a hash table in a deterministic-path crate; use \
                     BTreeMap/BTreeSet or sort before iterating",
                    t.text,
                    toks[i + 2].text
                ),
            ));
            continue;
        }
        // `for pat in [&[mut]] hash {` — the loop header names the map.
        if t.text == "for" {
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != "in" && toks[j].text != "{" {
                j += 1;
            }
            if j >= toks.len() || toks[j].text != "in" {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                let tk = &toks[k];
                if tk.kind == TokKind::Ident
                    && hash_idents.binary_search(&tk.text.as_str()).is_ok()
                    && toks.get(k + 1).is_none_or(|nx| nx.text != ".")
                {
                    out.push(ctx.finding(
                        "no-hash-iter",
                        tk.line,
                        format!(
                            "`for … in {}` iterates a hash table in a deterministic-path \
                             crate; use BTreeMap/BTreeSet or sort before iterating",
                            tk.text
                        ),
                    ));
                    break;
                }
                k += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock (D0)
// ---------------------------------------------------------------------------

fn no_wall_clock(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if t.text == "Instant" && matches(toks, i + 1, &["::", "now"]) {
            out.push(
                ctx.finding(
                    "no-wall-clock",
                    t.line,
                    "`Instant::now()` outside obs/bench; time through `obs::span` or \
                 `obs::Stopwatch` so the clock stays off the deterministic path"
                        .to_string(),
                ),
            );
        } else if t.text == "SystemTime" {
            out.push(ctx.finding(
                "no-wall-clock",
                t.line,
                "`SystemTime` outside obs/bench; wall-clock reads belong behind obs".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-float-accum (D1)
// ---------------------------------------------------------------------------

fn no_raw_float_accum(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.line) || ctx.exempt_fn(i) {
            continue;
        }
        let (a, b) = statement_bounds(toks, i);
        let stmt_int = slice_has(toks, a, b, INT_TYPES);
        let stmt_float = slice_has(toks, a, b, &["f32", "f64"]);

        if t.text == "+=" {
            // `x += 1` (counter) is never a float reduction.
            if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
                && toks.get(i + 2).is_some_and(|n| n.text == ";")
            {
                continue;
            }
            // `off += n` — bare-ident += bare-ident is the offset-advance
            // idiom; reductions accumulate an expression.
            if i == a + 1 && b == i + 2 && toks[a].kind == TokKind::Ident {
                continue;
            }
            if stmt_int {
                continue;
            }
            if stmt_float || fn_sig_has_float(toks, i, &ctx.fn_of) {
                out.push(
                    ctx.finding(
                        "no-raw-float-accum",
                        t.line,
                        "float `+=` accumulation outside an order-parameterized kernel; route \
                     through KernelProfile-driven reduction (or suppress with the traversal \
                     order documented)"
                            .to_string(),
                    ),
                );
            }
        } else if t.kind == TokKind::Ident
            && (t.text == "sum" || t.text == "product")
            && i > 0
            && toks[i - 1].text == "."
        {
            // Explicit float turbofish: `.sum::<f32>()`.
            let turbo_float = matches(toks, i + 1, &["::", "<"])
                && toks.get(i + 3).is_some_and(|x| x.text == "f32" || x.text == "f64");
            let plain_call = toks.get(i + 1).is_some_and(|x| x.text == "(");
            if turbo_float
                || (plain_call
                    && !stmt_int
                    && (stmt_float || fn_sig_has_float(toks, i, &ctx.fn_of)))
            {
                out.push(ctx.finding(
                    "no-raw-float-accum",
                    t.line,
                    format!(
                        "float `.{}()` reduction outside an order-parameterized kernel; \
                         use tensor's blocked_sum/tiled_reduce with a KernelProfile",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-adhoc-rng (D0)
// ---------------------------------------------------------------------------

const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "StdRng",
    "SmallRng",
    "OsRng",
    "getrandom",
    "fastrand",
    "RandomState",
    "DefaultHasher",
];

fn no_adhoc_rng(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let hit = RNG_IDENTS.contains(&t.text.as_str())
            || (t.text == "rand" && matches(toks, i + 1, &["::"]));
        if hit {
            out.push(ctx.finding(
                "no-adhoc-rng",
                t.line,
                format!(
                    "`{}` is ad-hoc randomness; draw from esrng Philox streams \
                     (EsRng::for_stream) so replays reproduce it",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-thread-order (D0)
// ---------------------------------------------------------------------------

const CHANNEL_IDENTS: &[&str] =
    &["mpsc", "try_recv", "recv_timeout", "recv_deadline", "par_iter", "into_par_iter", "rayon"];

fn no_thread_order(ctx: &Ctx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if CHANNEL_IDENTS.contains(&t.text.as_str()) {
            out.push(ctx.finding(
                "no-thread-order",
                t.line,
                format!(
                    "`{}` can surface thread completion order; collect results by joining \
                     handles in spawn order (see core::engine)",
                    t.text
                ),
            ));
        } else if t.text == "thread" && matches(toks, i + 1, &["::", "spawn"]) {
            out.push(
                ctx.finding(
                    "no-thread-order",
                    t.line,
                    "detached `thread::spawn`; use a scoped spawn joined in spawn order so \
                 completion order cannot leak into results"
                        .to_string(),
                ),
            );
        } else if t.text == "recv"
            && i > 0
            && toks[i - 1].text == "."
            && matches(toks, i + 1, &["("])
        {
            out.push(
                ctx.finding(
                    "no-thread-order",
                    t.line,
                    "`.recv()` consumes messages in completion order; join workers in spawn \
                 order instead"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-float-key-sort (D1)
// ---------------------------------------------------------------------------

/// Ordering combinators whose key/comparator argument the rule inspects.
const SORT_LIKE: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "binary_search_by",
    "binary_search_by_key",
];

fn no_float_key_sort(ctx: &Ctx, cfg: &Config, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let blessed =
        |a: usize, b: usize| toks[a..b].iter().any(|t| cfg.total_order_helpers.contains(&t.text));
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) || ctx.exempt_fn(i) {
            continue;
        }
        let method_call = i > 0 && toks[i - 1].text == "." && matches(toks, i + 1, &["("]);
        // Any `.partial_cmp(…)` is a non-total float comparator: NaN gives
        // `None` (panic or arbitrary winner) and -0.0/0.0 tie arbitrarily.
        if t.text == "partial_cmp" && method_call {
            let (a, b) = statement_bounds(toks, i);
            if !blessed(a, b) {
                out.push(
                    ctx.finding(
                        "no-float-key-sort",
                        t.line,
                        "`.partial_cmp()` comparator in a deterministic-path crate; use \
                     `total_cmp` (a total order over all bit patterns) or an integer key"
                            .to_string(),
                    ),
                );
            }
            continue;
        }
        // `.sort_by…/max_by…(…f32/f64…)` without a total-order helper: the
        // key type is explicit in the argument, so the order is float-keyed.
        if SORT_LIKE.contains(&t.text.as_str()) && method_call {
            // Argument span: tokens to the matching close paren.
            let open = i + 1;
            let mut depth = 0i32;
            let mut close = open;
            while close < toks.len() {
                match toks[close].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let span_has_partial = slice_has(toks, open, close, &["partial_cmp"]);
            if span_has_partial || blessed(open, close) {
                continue; // partial_cmp branch reports it / helper blesses it
            }
            if slice_has(toks, open, close, &["f32", "f64"]) {
                out.push(ctx.finding(
                    "no-float-key-sort",
                    t.line,
                    format!(
                        "`.{}()` orders by an f32/f64 key outside a blessed total-order \
                         helper; use `total_cmp` or quantize to an integer key",
                        t.text
                    ),
                ));
            }
        }
    }
}

//! Finding renderers: compiler-style human text and a stable JSON shape
//! (`{"count": N, "findings": [{file, line, rule, level, message}…]}`) for
//! tooling to consume.

use crate::taint::TaintReport;
use crate::Finding;
use serde::Value;

/// `file:line: [rule/level] message` — one line per finding, plus a
/// trailing summary line.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", f.file, f.line, f.rule, f.level, f.message));
    }
    if findings.is_empty() {
        out.push_str("detlint: no findings\n");
    } else {
        out.push_str(&format!("detlint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Pretty-printed JSON report.
pub fn json(findings: &[Finding]) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::U64(u64::from(f.line))),
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("level".to_string(), Value::Str(f.level.to_string())),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(findings.len() as u64)),
        ("findings".to_string(), Value::Seq(items)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

/// Human rendering of a taint report: one block per flow with the full
/// call-path witness, then the stale-suppression list, then a summary.
pub fn taint_human(r: &TaintReport) -> String {
    let mut out = String::new();
    for (i, f) in r.flows.iter().enumerate() {
        out.push_str(&format!(
            "flow {}: {} -> {} ({})\n",
            i + 1,
            f.source_kind,
            f.sink_kind,
            f.sink_fn
        ));
        out.push_str(&format!(
            "  source: {}:{} in {}\n",
            f.source_file, f.source_line, f.source_fn
        ));
        for (k, hop) in f.path.iter().enumerate() {
            let arrow = if k == 0 { "  " } else { "  -> " };
            out.push_str(&format!("{}{} ({}:{})\n", arrow, hop.func, hop.file, hop.line));
        }
    }
    for s in &r.unused_suppressions {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", s.file, s.line, s.rule, s.level, s.message));
    }
    if r.flows.is_empty() && r.unused_suppressions.is_empty() {
        out.push_str("detlint-taint: no flows\n");
    } else {
        out.push_str(&format!(
            "detlint-taint: {} flow(s), {} unused taint suppression(s)\n",
            r.flows.len(),
            r.unused_suppressions.len()
        ));
    }
    out
}

/// Pretty-printed JSON taint report
/// (`{"count": N, "flows": […], "unused_suppressions": […]}`).
pub fn taint_json(r: &TaintReport) -> String {
    let flows: Vec<Value> = r
        .flows
        .iter()
        .map(|f| {
            let path: Vec<Value> = f
                .path
                .iter()
                .map(|h| {
                    Value::Map(vec![
                        ("fn".to_string(), Value::Str(h.func.clone())),
                        ("file".to_string(), Value::Str(h.file.clone())),
                        ("line".to_string(), Value::U64(u64::from(h.line))),
                    ])
                })
                .collect();
            Value::Map(vec![
                (
                    "source".to_string(),
                    Value::Map(vec![
                        ("kind".to_string(), Value::Str(f.source_kind.clone())),
                        ("file".to_string(), Value::Str(f.source_file.clone())),
                        ("line".to_string(), Value::U64(u64::from(f.source_line))),
                        ("fn".to_string(), Value::Str(f.source_fn.clone())),
                    ]),
                ),
                (
                    "sink".to_string(),
                    Value::Map(vec![
                        ("kind".to_string(), Value::Str(f.sink_kind.clone())),
                        ("fn".to_string(), Value::Str(f.sink_fn.clone())),
                        ("file".to_string(), Value::Str(f.sink_file.clone())),
                        ("line".to_string(), Value::U64(u64::from(f.sink_line))),
                    ]),
                ),
                ("path".to_string(), Value::Seq(path)),
            ])
        })
        .collect();
    let stale: Vec<Value> = r
        .unused_suppressions
        .iter()
        .map(|s| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(s.file.clone())),
                ("line".to_string(), Value::U64(u64::from(s.line))),
                ("message".to_string(), Value::Str(s.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(r.flows.len() as u64)),
        ("flows".to_string(), Value::Seq(flows)),
        ("unused_suppressions".to_string(), Value::Seq(stale)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::{Flow, Hop};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-wall-clock",
            level: "D0",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "test".to_string(),
        }]
    }

    #[test]
    fn human_is_one_line_per_finding() {
        let text = human(&sample());
        assert!(text.contains("crates/x/src/lib.rs:7: [no-wall-clock/D0] test"));
        assert!(text.contains("1 finding(s)"));
        assert!(human(&[]).contains("no findings"));
    }

    #[test]
    fn json_round_trips_the_count() {
        let text = json(&sample());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(items)) = v.get_field("findings") else { panic!("findings array") };
        assert_eq!(items[0].get_field("line"), Some(&Value::U64(7)));
    }

    fn sample_taint() -> TaintReport {
        TaintReport {
            flows: vec![Flow {
                source_kind: "wall-clock".to_string(),
                source_file: "crates/sched/src/lib.rs".to_string(),
                source_line: 4,
                source_fn: "sched::leak".to_string(),
                sink_kind: "sched-proposal".to_string(),
                sink_fn: "sched::decide".to_string(),
                sink_file: "crates/sched/src/lib.rs".to_string(),
                sink_line: 9,
                path: vec![
                    Hop {
                        func: "sched::leak".to_string(),
                        file: "crates/sched/src/lib.rs".to_string(),
                        line: 4,
                    },
                    Hop {
                        func: "sched::decide".to_string(),
                        file: "crates/sched/src/lib.rs".to_string(),
                        line: 10,
                    },
                ],
            }],
            unused_suppressions: Vec::new(),
        }
    }

    #[test]
    fn taint_human_shows_the_witness_path() {
        let text = taint_human(&sample_taint());
        assert!(text.contains("flow 1: wall-clock -> sched-proposal (sched::decide)"));
        assert!(text.contains("source: crates/sched/src/lib.rs:4 in sched::leak"));
        assert!(text.contains("-> sched::decide (crates/sched/src/lib.rs:10)"));
        assert!(text.contains("1 flow(s)"));
        assert!(taint_human(&TaintReport::default()).contains("no flows"));
    }

    #[test]
    fn taint_json_round_trips_the_shape() {
        let text = taint_json(&sample_taint());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(flows)) = v.get_field("flows") else { panic!("flows array") };
        let Some(Value::Seq(path)) = flows[0].get_field("path") else { panic!("path array") };
        assert_eq!(path.len(), 2);
        assert_eq!(path[1].get_field("fn"), Some(&Value::Str("sched::decide".to_string())));
    }
}

//! Finding renderers: compiler-style human text and a stable JSON shape
//! (`{"count": N, "findings": [{file, line, rule, level, message}…]}`) for
//! tooling to consume.

use crate::Finding;
use serde::Value;

/// `file:line: [rule/level] message` — one line per finding, plus a
/// trailing summary line.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", f.file, f.line, f.rule, f.level, f.message));
    }
    if findings.is_empty() {
        out.push_str("detlint: no findings\n");
    } else {
        out.push_str(&format!("detlint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Pretty-printed JSON report.
pub fn json(findings: &[Finding]) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::U64(u64::from(f.line))),
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("level".to_string(), Value::Str(f.level.to_string())),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(findings.len() as u64)),
        ("findings".to_string(), Value::Seq(items)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-wall-clock",
            level: "D0",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "test".to_string(),
        }]
    }

    #[test]
    fn human_is_one_line_per_finding() {
        let text = human(&sample());
        assert!(text.contains("crates/x/src/lib.rs:7: [no-wall-clock/D0] test"));
        assert!(text.contains("1 finding(s)"));
        assert!(human(&[]).contains("no findings"));
    }

    #[test]
    fn json_round_trips_the_count() {
        let text = json(&sample());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(items)) = v.get_field("findings") else { panic!("findings array") };
        assert_eq!(items[0].get_field("line"), Some(&Value::U64(7)));
    }
}

//! Finding renderers: compiler-style human text and a stable JSON shape
//! (`{"count": N, "findings": [{file, line, rule, level, message}…]}`) for
//! tooling to consume.

use crate::accum::AccumReport;
use crate::concur::{ConcurFinding, ConcurReport};
use crate::taint::TaintReport;
use crate::Finding;
use serde::Value;

/// `file:line: [rule/level] message` — one line per finding, plus a
/// trailing summary line.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", f.file, f.line, f.rule, f.level, f.message));
    }
    if findings.is_empty() {
        out.push_str("detlint: no findings\n");
    } else {
        out.push_str(&format!("detlint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Pretty-printed JSON report.
pub fn json(findings: &[Finding]) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::U64(u64::from(f.line))),
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("level".to_string(), Value::Str(f.level.to_string())),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(findings.len() as u64)),
        ("findings".to_string(), Value::Seq(items)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

/// Human rendering of a taint report: one block per flow with the full
/// call-path witness, then the stale-suppression list, then a summary.
pub fn taint_human(r: &TaintReport) -> String {
    let mut out = String::new();
    for (i, f) in r.flows.iter().enumerate() {
        out.push_str(&format!(
            "flow {}: {} -> {} ({})\n",
            i + 1,
            f.source_kind,
            f.sink_kind,
            f.sink_fn
        ));
        out.push_str(&format!(
            "  source: {}:{} in {}\n",
            f.source_file, f.source_line, f.source_fn
        ));
        for (k, hop) in f.path.iter().enumerate() {
            let arrow = if k == 0 { "  " } else { "  -> " };
            out.push_str(&format!("{}{} ({}:{})\n", arrow, hop.func, hop.file, hop.line));
        }
    }
    for s in &r.unused_suppressions {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", s.file, s.line, s.rule, s.level, s.message));
    }
    if r.flows.is_empty() && r.unused_suppressions.is_empty() {
        out.push_str("detlint-taint: no flows\n");
    } else {
        out.push_str(&format!(
            "detlint-taint: {} flow(s), {} unused taint suppression(s)\n",
            r.flows.len(),
            r.unused_suppressions.len()
        ));
    }
    out
}

/// Pretty-printed JSON taint report
/// (`{"count": N, "flows": […], "unused_suppressions": […]}`).
pub fn taint_json(r: &TaintReport) -> String {
    let flows: Vec<Value> = r
        .flows
        .iter()
        .map(|f| {
            let path: Vec<Value> = f
                .path
                .iter()
                .map(|h| {
                    Value::Map(vec![
                        ("fn".to_string(), Value::Str(h.func.clone())),
                        ("file".to_string(), Value::Str(h.file.clone())),
                        ("line".to_string(), Value::U64(u64::from(h.line))),
                    ])
                })
                .collect();
            Value::Map(vec![
                (
                    "source".to_string(),
                    Value::Map(vec![
                        ("kind".to_string(), Value::Str(f.source_kind.clone())),
                        ("file".to_string(), Value::Str(f.source_file.clone())),
                        ("line".to_string(), Value::U64(u64::from(f.source_line))),
                        ("fn".to_string(), Value::Str(f.source_fn.clone())),
                    ]),
                ),
                (
                    "sink".to_string(),
                    Value::Map(vec![
                        ("kind".to_string(), Value::Str(f.sink_kind.clone())),
                        ("fn".to_string(), Value::Str(f.sink_fn.clone())),
                        ("file".to_string(), Value::Str(f.sink_file.clone())),
                        ("line".to_string(), Value::U64(u64::from(f.sink_line))),
                    ]),
                ),
                ("path".to_string(), Value::Seq(path)),
            ])
        })
        .collect();
    let stale: Vec<Value> = r
        .unused_suppressions
        .iter()
        .map(|s| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(s.file.clone())),
                ("line".to_string(), Value::U64(u64::from(s.line))),
                ("message".to_string(), Value::Str(s.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(r.flows.len() as u64)),
        ("flows".to_string(), Value::Seq(flows)),
        ("unused_suppressions".to_string(), Value::Seq(stale)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

/// Human rendering of a concurrency report: findings with their witness
/// paths, warnings, stale suppressions, then a summary line.
pub fn concur_human(r: &ConcurReport) -> String {
    let mut out = String::new();
    let render = |out: &mut String, f: &ConcurFinding, tag: &str| {
        out.push_str(&format!("{}:{}: [{}{}] {}\n", f.file, f.line, f.kind, tag, f.message));
        for path in &f.paths {
            for (k, hop) in path.iter().enumerate() {
                let arrow = if k == 0 { "  " } else { "  -> " };
                out.push_str(&format!("{}{} ({}:{})\n", arrow, hop.func, hop.file, hop.line));
            }
        }
    };
    for f in &r.findings {
        render(&mut out, f, "");
    }
    for w in &r.warnings {
        render(&mut out, w, "/warn");
    }
    for s in &r.unused_suppressions {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", s.file, s.line, s.rule, s.level, s.message));
    }
    if r.findings.is_empty() && r.warnings.is_empty() && r.unused_suppressions.is_empty() {
        out.push_str("detlint-concur: no findings\n");
    } else {
        out.push_str(&format!(
            "detlint-concur: {} finding(s), {} warning(s), {} unused suppression(s)\n",
            r.findings.len(),
            r.warnings.len(),
            r.unused_suppressions.len()
        ));
    }
    out
}

/// Pretty-printed JSON concurrency report (`{"count": N, "findings": […],
/// "warnings": […], "unused_suppressions": […], "roles": {…},
/// "blocking": […]}`).
pub fn concur_json(r: &ConcurReport) -> String {
    let finding_value = |f: &ConcurFinding| {
        let paths: Vec<Value> = f
            .paths
            .iter()
            .map(|path| {
                Value::Seq(
                    path.iter()
                        .map(|h| {
                            Value::Map(vec![
                                ("fn".to_string(), Value::Str(h.func.clone())),
                                ("file".to_string(), Value::Str(h.file.clone())),
                                ("line".to_string(), Value::U64(u64::from(h.line))),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Value::Map(vec![
            ("kind".to_string(), Value::Str(f.kind.to_string())),
            ("file".to_string(), Value::Str(f.file.clone())),
            ("line".to_string(), Value::U64(u64::from(f.line))),
            ("message".to_string(), Value::Str(f.message.clone())),
            ("paths".to_string(), Value::Seq(paths)),
        ])
    };
    let stale: Vec<Value> = r
        .unused_suppressions
        .iter()
        .map(|s| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(s.file.clone())),
                ("line".to_string(), Value::U64(u64::from(s.line))),
                ("message".to_string(), Value::Str(s.message.clone())),
            ])
        })
        .collect();
    let blocking: Vec<Value> = r
        .blocking
        .iter()
        .map(|o| {
            Value::Map(vec![
                ("role".to_string(), Value::Str(o.role.to_string())),
                ("op".to_string(), Value::Str(o.op.clone())),
                ("fn".to_string(), Value::Str(o.func.clone())),
                ("file".to_string(), Value::Str(o.file.clone())),
                ("line".to_string(), Value::U64(u64::from(o.line))),
                ("idle".to_string(), Value::Str(o.idle.to_string())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(r.findings.len() as u64)),
        ("findings".to_string(), Value::Seq(r.findings.iter().map(finding_value).collect())),
        ("warnings".to_string(), Value::Seq(r.warnings.iter().map(finding_value).collect())),
        ("unused_suppressions".to_string(), Value::Seq(stale)),
        (
            "roles".to_string(),
            Value::Map(vec![
                ("worker_fns".to_string(), Value::U64(r.worker_fns.len() as u64)),
                ("engine_fns".to_string(), Value::U64(r.engine_fns.len() as u64)),
            ]),
        ),
        ("blocking".to_string(), Value::Seq(blocking)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

/// Human rendering of an accumulation report: findings with their span
/// witnesses, stale suppressions, then a summary line.
pub fn accum_human(r: &AccumReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.kind, f.message));
        for sp in &f.spans {
            out.push_str(&format!("  {} ({}:{})\n", sp.label, sp.file, sp.line));
        }
    }
    for s in &r.unused_suppressions {
        out.push_str(&format!("{}:{}: [{}/{}] {}\n", s.file, s.line, s.rule, s.level, s.message));
    }
    if r.findings.is_empty() && r.unused_suppressions.is_empty() {
        out.push_str(&format!(
            "detlint-accum: no findings ({} loop(s) classified, {} oracle check(s))\n",
            r.loops.len(),
            r.oracles.len()
        ));
    } else {
        out.push_str(&format!(
            "detlint-accum: {} finding(s), {} loop(s) classified, {} oracle check(s), \
             {} unused suppression(s)\n",
            r.findings.len(),
            r.loops.len(),
            r.oracles.len(),
            r.unused_suppressions.len()
        ));
    }
    out
}

/// Pretty-printed JSON accumulation report (`{"count": N, "findings": […],
/// "loops": […], "oracles": […], "unused_suppressions": […]}`).
pub fn accum_json(r: &AccumReport) -> String {
    let findings: Vec<Value> = r
        .findings
        .iter()
        .map(|f| {
            let spans: Vec<Value> = f
                .spans
                .iter()
                .map(|sp| {
                    Value::Map(vec![
                        ("file".to_string(), Value::Str(sp.file.clone())),
                        ("line".to_string(), Value::U64(u64::from(sp.line))),
                        ("label".to_string(), Value::Str(sp.label.clone())),
                    ])
                })
                .collect();
            Value::Map(vec![
                ("kind".to_string(), Value::Str(f.kind.to_string())),
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::U64(u64::from(f.line))),
                ("message".to_string(), Value::Str(f.message.clone())),
                ("spans".to_string(), Value::Seq(spans)),
            ])
        })
        .collect();
    let loops: Vec<Value> = r
        .loops
        .iter()
        .map(|l| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(l.file.clone())),
                ("line".to_string(), Value::U64(u64::from(l.line))),
                ("fn".to_string(), Value::Str(l.func.clone())),
                ("class".to_string(), Value::Str(l.class.to_string())),
                (
                    "accumulators".to_string(),
                    Value::Seq(l.accumulators.iter().map(|a| Value::Str(a.clone())).collect()),
                ),
            ])
        })
        .collect();
    let oracles: Vec<Value> = r
        .oracles
        .iter()
        .map(|o| {
            Value::Map(vec![
                ("kernel".to_string(), Value::Str(o.kernel.clone())),
                ("file".to_string(), Value::Str(o.file.clone())),
                ("line".to_string(), Value::U64(u64::from(o.line))),
                ("scalar_found".to_string(), Value::Bool(o.scalar_found)),
                ("tested_together".to_string(), Value::Bool(o.tested_together)),
            ])
        })
        .collect();
    let stale: Vec<Value> = r
        .unused_suppressions
        .iter()
        .map(|s| {
            Value::Map(vec![
                ("file".to_string(), Value::Str(s.file.clone())),
                ("line".to_string(), Value::U64(u64::from(s.line))),
                ("message".to_string(), Value::Str(s.message.clone())),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        ("count".to_string(), Value::U64(r.findings.len() as u64)),
        ("findings".to_string(), Value::Seq(findings)),
        ("loops".to_string(), Value::Seq(loops)),
        ("oracles".to_string(), Value::Seq(oracles)),
        ("unused_suppressions".to_string(), Value::Seq(stale)),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{AccumFinding, LoopInfo, OracleCheck, Span};
    use crate::concur::BlockingOp;
    use crate::taint::{Flow, Hop};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-wall-clock",
            level: "D0",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "test".to_string(),
        }]
    }

    #[test]
    fn human_is_one_line_per_finding() {
        let text = human(&sample());
        assert!(text.contains("crates/x/src/lib.rs:7: [no-wall-clock/D0] test"));
        assert!(text.contains("1 finding(s)"));
        assert!(human(&[]).contains("no findings"));
    }

    #[test]
    fn json_round_trips_the_count() {
        let text = json(&sample());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(items)) = v.get_field("findings") else { panic!("findings array") };
        assert_eq!(items[0].get_field("line"), Some(&Value::U64(7)));
    }

    fn sample_taint() -> TaintReport {
        TaintReport {
            flows: vec![Flow {
                source_kind: "wall-clock".to_string(),
                source_file: "crates/sched/src/lib.rs".to_string(),
                source_line: 4,
                source_fn: "sched::leak".to_string(),
                sink_kind: "sched-proposal".to_string(),
                sink_fn: "sched::decide".to_string(),
                sink_file: "crates/sched/src/lib.rs".to_string(),
                sink_line: 9,
                path: vec![
                    Hop {
                        func: "sched::leak".to_string(),
                        file: "crates/sched/src/lib.rs".to_string(),
                        line: 4,
                    },
                    Hop {
                        func: "sched::decide".to_string(),
                        file: "crates/sched/src/lib.rs".to_string(),
                        line: 10,
                    },
                ],
            }],
            unused_suppressions: Vec::new(),
        }
    }

    #[test]
    fn taint_human_shows_the_witness_path() {
        let text = taint_human(&sample_taint());
        assert!(text.contains("flow 1: wall-clock -> sched-proposal (sched::decide)"));
        assert!(text.contains("source: crates/sched/src/lib.rs:4 in sched::leak"));
        assert!(text.contains("-> sched::decide (crates/sched/src/lib.rs:10)"));
        assert!(text.contains("1 flow(s)"));
        assert!(taint_human(&TaintReport::default()).contains("no flows"));
    }

    #[test]
    fn taint_json_round_trips_the_shape() {
        let text = taint_json(&sample_taint());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(flows)) = v.get_field("flows") else { panic!("flows array") };
        let Some(Value::Seq(path)) = flows[0].get_field("path") else { panic!("path array") };
        assert_eq!(path.len(), 2);
        assert_eq!(path[1].get_field("fn"), Some(&Value::Str("sched::decide".to_string())));
    }

    fn sample_concur() -> ConcurReport {
        ConcurReport {
            findings: vec![ConcurFinding {
                kind: "blocking-cycle",
                file: "crates/core/src/a.rs".to_string(),
                line: 3,
                message: "cycle".to_string(),
                paths: vec![vec![
                    Hop {
                        func: "core::worker_main".to_string(),
                        file: "crates/core/src/a.rs".to_string(),
                        line: 1,
                    },
                    Hop {
                        func: "core::wait".to_string(),
                        file: "crates/core/src/a.rs".to_string(),
                        line: 3,
                    },
                ]],
            }],
            warnings: Vec::new(),
            unused_suppressions: Vec::new(),
            worker_fns: vec!["core::worker_main".to_string(), "core::wait".to_string()],
            engine_fns: vec!["core::Engine::step".to_string()],
            blocking: vec![BlockingOp {
                role: "worker",
                op: "recv".to_string(),
                func: "core::wait".to_string(),
                file: "crates/core/src/a.rs".to_string(),
                line: 3,
                idle: false,
            }],
        }
    }

    #[test]
    fn concur_human_shows_kinds_and_witness_paths() {
        let text = concur_human(&sample_concur());
        assert!(text.contains("crates/core/src/a.rs:3: [blocking-cycle] cycle"));
        assert!(text.contains("-> core::wait (crates/core/src/a.rs:3)"));
        assert!(text.contains("1 finding(s), 0 warning(s), 0 unused suppression(s)"));
        assert!(concur_human(&ConcurReport::default()).contains("no findings"));
    }

    #[test]
    fn concur_json_round_trips_the_shape() {
        let text = concur_json(&sample_concur());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(fs)) = v.get_field("findings") else { panic!("findings array") };
        let Some(Value::Seq(paths)) = fs[0].get_field("paths") else { panic!("paths array") };
        assert_eq!(paths.len(), 1);
        let Some(roles) = v.get_field("roles") else { panic!("roles map") };
        assert_eq!(roles.get_field("worker_fns"), Some(&Value::U64(2)));
        let Some(Value::Seq(blocking)) = v.get_field("blocking") else { panic!("blocking array") };
        assert_eq!(blocking[0].get_field("role"), Some(&Value::Str("worker".to_string())));
    }

    fn sample_accum() -> AccumReport {
        AccumReport {
            findings: vec![AccumFinding {
                kind: "float-reassoc",
                file: "crates/tensor/src/lib.rs".to_string(),
                line: 5,
                message: "reversed merge".to_string(),
                spans: vec![Span {
                    file: "crates/tensor/src/lib.rs".to_string(),
                    line: 9,
                    label: "merge".to_string(),
                }],
            }],
            loops: vec![LoopInfo {
                file: "crates/tensor/src/lib.rs".to_string(),
                line: 5,
                func: "tensor::sum".to_string(),
                class: "reassoc",
                accumulators: vec!["acc".to_string()],
            }],
            oracles: vec![OracleCheck {
                kernel: "dot".to_string(),
                file: "crates/tensor/src/ops.rs".to_string(),
                line: 3,
                scalar_found: true,
                tested_together: true,
            }],
            unused_suppressions: Vec::new(),
        }
    }

    #[test]
    fn accum_human_shows_spans_and_summary() {
        let text = accum_human(&sample_accum());
        assert!(text.contains("crates/tensor/src/lib.rs:5: [float-reassoc] reversed merge"));
        assert!(text.contains("  merge (crates/tensor/src/lib.rs:9)"));
        assert!(text.contains("1 finding(s), 1 loop(s) classified, 1 oracle check(s)"));
        assert!(accum_human(&AccumReport::default()).contains("no findings"));
    }

    #[test]
    fn accum_json_round_trips_the_shape() {
        let text = accum_json(&sample_accum());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(fs)) = v.get_field("findings") else { panic!("findings array") };
        let Some(Value::Seq(spans)) = fs[0].get_field("spans") else { panic!("spans array") };
        assert_eq!(spans[0].get_field("label"), Some(&Value::Str("merge".to_string())));
        let Some(Value::Seq(loops)) = v.get_field("loops") else { panic!("loops array") };
        assert_eq!(loops[0].get_field("class"), Some(&Value::Str("reassoc".to_string())));
        let Some(Value::Seq(oracles)) = v.get_field("oracles") else { panic!("oracles array") };
        assert_eq!(oracles[0].get_field("scalar_found"), Some(&Value::Bool(true)));
    }
}

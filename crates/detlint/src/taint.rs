//! Interprocedural determinism-taint analysis.
//!
//! The leaf rules ([`crate::rules`]) say *where* non-determinism enters —
//! a wall-clock read, a hash-table iteration, an ad-hoc RNG draw. This
//! module answers the question that actually decides whether a training
//! run replays bitwise: does that non-determinism **reach state that
//! matters**? Sources are harvested by running the leaf detectors with a
//! permissive scope, mapped onto the fn that contains them, and propagated
//! caller-ward over the workspace call graph ([`crate::callgraph`]). A
//! *flow* is reported when a tainted fn is (or directly calls) a declared
//! **sink** — a parameter update, an allreduce merge, checkpoint
//! serialization, or scheduler proposal construction.
//!
//! Taint stops at **barriers**: fns audited to canonicalize their inputs
//! (the `obs` boundary keeps clocks observational, `esrng` turns entropy
//! into replayable Philox streams, `drain_sorted`-style drains impose a
//! total order on arrival-ordered data). Barriers are *declared* in
//! [`TaintConfig`], never inferred — see docs/DESIGN.md for why.
//!
//! Escape valve: `// detlint::allow(taint): reason` (or
//! `taint-<kind>` for one source kind) on a source line or call site
//! blocks propagation through exactly that site. Allows that block
//! nothing are reported as `unused-suppression` findings, same as the
//! rule-level stale-audit hygiene.

use crate::items;
use crate::rules;
use crate::suppress::{phrase, AllowSet, Domain};
use crate::{Config, Finding, Model, SourceFile};
use std::collections::VecDeque;
use std::path::Path;

/// A declared sink: `(crate, fn name)` plus the kind of state it commits.
#[derive(Debug, Clone)]
pub struct SinkSpec {
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Fn name (any impl type).
    pub fn_name: String,
    /// Sink kind shown in reports (`param-update`, …).
    pub kind: String,
}

/// Policy for one taint run: where taint is absorbed and where it matters.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// Crates that are barriers wholesale: every fn inside absorbs taint.
    pub barrier_crates: Vec<String>,
    /// Fn names that are barriers wherever they live (`drain_sorted`).
    pub barrier_fns: Vec<String>,
    /// The sinks. A flow is a source reaching one of these.
    pub sinks: Vec<SinkSpec>,
    /// Crates whose fns count as flow witnesses when a *tainted caller*
    /// invokes a sink (case 2). Restricting this to the deterministic path
    /// keeps bench/test harness timing from fabricating flows.
    pub caller_flow_crates: Vec<String>,
}

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

impl TaintConfig {
    /// The sink/barrier policy for this workspace (docs/DETLINT.md).
    pub fn workspace_default() -> Self {
        let sink = |c: &str, f: &str, k: &str| SinkSpec {
            crate_name: c.to_string(),
            fn_name: f.to_string(),
            kind: k.to_string(),
        };
        TaintConfig {
            barrier_crates: strs(&["obs", "esrng"]),
            barrier_fns: strs(&[
                "drain_sorted",
                "drain_deadline",
                "worker_main",
                "recv_ordered",
                "recv_ordered_deadline",
            ]),
            sinks: vec![
                sink("optim", "step", "param-update"),
                sink("models", "apply_flat_delta", "param-update"),
                sink("models", "load_flat_params", "param-update"),
                sink("comm", "ring_allreduce", "allreduce-merge"),
                sink("comm", "allreduce_avg", "allreduce-merge"),
                sink("comm", "allreduce_avg_with_retry", "allreduce-merge"),
                sink("core", "save", "checkpoint-serialize"),
                sink("core", "checkpoint", "checkpoint-serialize"),
                sink("sched", "proposals", "sched-proposal"),
                sink("sched", "decide", "sched-proposal"),
            ],
            caller_flow_crates: strs(&[
                "core", "comm", "tensor", "sched", "data", "models", "optim", "faultsim",
            ]),
        }
    }
}

/// Which leaf rules seed taint, and the source kind each maps to.
/// (`no-float-key-sort` is a comparator-contract rule, not an entropy
/// source, so it does not seed taint.)
pub fn source_kind(rule: &str) -> Option<&'static str> {
    match rule {
        "no-hash-iter" => Some("hash-iter"),
        "no-wall-clock" => Some("wall-clock"),
        "no-adhoc-rng" => Some("adhoc-rng"),
        "no-thread-order" => Some("thread-order"),
        "no-raw-float-accum" => Some("float-accum"),
        _ => None,
    }
}

/// One hop of a flow witness: a fn, and the line taint moved at (the
/// source line for the first hop, the call-site line after that).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Hop {
    /// Qualified fn name (`crate::Type::name`).
    pub func: String,
    /// Workspace-relative file of the fn.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One source→sink flow with its full call-path witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Source kind (`wall-clock`, `hash-iter`, …).
    pub source_kind: String,
    /// File/line of the leaf finding that seeded the taint.
    pub source_file: String,
    /// 1-based line of the leaf finding.
    pub source_line: u32,
    /// Qualified fn containing the source.
    pub source_fn: String,
    /// Sink kind (`param-update`, …).
    pub sink_kind: String,
    /// Qualified sink fn.
    pub sink_fn: String,
    /// File the sink fn is defined in.
    pub sink_file: String,
    /// 1-based line of the sink's `fn` keyword.
    pub sink_line: u32,
    /// Witness: source fn first, sink fn last, shortest path found.
    pub path: Vec<Hop>,
}

/// Everything one taint run produced.
#[derive(Debug, Default)]
pub struct TaintReport {
    /// Unsuppressed source→sink flows, sorted by
    /// `(source_file, source_line, source_kind, sink_fn)`.
    pub flows: Vec<Flow>,
    /// Taint-level `detlint::allow` comments that blocked nothing.
    pub unused_suppressions: Vec<Finding>,
}

/// Block propagation at `(file, line)` for `kind` if an allow covers it,
/// marking the allow used in the shared ledger.
fn allow_blocks(allows: &mut AllowSet, file: &str, line: u32, kind: &str) -> bool {
    allows.consume_taint(file, line, kind)
}

/// Run the taint analysis over a pre-built model, recording allow
/// consumption in `allows`. Stale accounting is the caller's job (the
/// single-mode wrapper scopes it to [`Domain::Taint`]; `--all` unifies it).
pub fn analyze_model(model: &Model, tcfg: &TaintConfig, allows: &mut AllowSet) -> TaintReport {
    let mut crate_names: Vec<String> = model.files.iter().map(|f| f.crate_name.clone()).collect();
    crate_names.sort();
    crate_names.dedup();
    let permissive = Config::permissive(&crate_names);

    // Harvest sources by running the leaf detectors with a permissive
    // scope. Leaf-level suppressions are honored by `check_file` through a
    // *local* throwaway ledger — their usage belongs to the leaf pass, not
    // this one, so the shared ledger stays untouched here.
    let mut raw_sources: Vec<(String, u32, &'static str)> = Vec::new();
    for mf in &model.files {
        for f in rules::check_file(&mf.lexed, &mf.crate_name, &mf.file, &permissive) {
            if let Some(kind) = source_kind(f.rule) {
                raw_sources.push((mf.file.clone(), f.line, kind));
            }
        }
    }
    raw_sources.sort();
    raw_sources.dedup();

    let g = &model.graph;
    let n = g.fns.len();

    let is_barrier: Vec<bool> = g
        .fns
        .iter()
        .map(|f| tcfg.barrier_crates.contains(&f.crate_name) || tcfg.barrier_fns.contains(&f.name))
        .collect();
    let sink_of: Vec<Option<&SinkSpec>> = g
        .fns
        .iter()
        .map(|f| {
            if f.in_test {
                return None;
            }
            tcfg.sinks.iter().find(|s| s.crate_name == f.crate_name && s.fn_name == f.name)
        })
        .collect();

    // Attach each raw source to its innermost enclosing fn; drop sources
    // at module level, in test fns, or covered by a taint allow.
    struct Source {
        kind: &'static str,
        file: String,
        line: u32,
        fn_id: usize,
    }
    let mut sources = Vec::new();
    for (file, line, kind) in raw_sources {
        let Some(fn_id) = items::innermost_fn_at(&g.fns, &file, line) else { continue };
        if g.fns[fn_id].in_test || is_barrier[fn_id] {
            continue; // barrier fns absorb even their own internals
        }
        if allow_blocks(allows, &file, line, kind) {
            continue;
        }
        sources.push(Source { kind, file, line, fn_id });
    }

    // Per-source BFS caller-ward; first visit is a shortest-hop parent.
    let mut flows = Vec::new();
    for src in &sources {
        let mut visited = vec![false; n];
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
        visited[src.fn_id] = true;
        let mut queue = VecDeque::from([src.fn_id]);
        while let Some(f) = queue.pop_front() {
            for e in &g.callers[f] {
                let c = e.caller;
                if visited[c] || is_barrier[c] || g.fns[c].in_test {
                    continue;
                }
                if allow_blocks(allows, &g.fns[c].file, e.line, src.kind) {
                    continue;
                }
                visited[c] = true;
                parent[c] = Some((f, e.line));
                queue.push_back(c);
            }
        }

        let path_to = |mut f: usize| -> Vec<Hop> {
            let mut rev = Vec::new();
            loop {
                let hop_line = parent[f].map_or(src.line, |(_, l)| l);
                rev.push(Hop {
                    func: g.fns[f].qualified(),
                    file: g.fns[f].file.clone(),
                    line: hop_line,
                });
                match parent[f] {
                    Some((callee, _)) => f = callee,
                    None => break,
                }
            }
            rev.reverse();
            rev
        };

        for (s, spec) in sink_of.iter().enumerate() {
            let Some(spec) = spec else { continue };
            let mut candidates: Vec<Vec<Hop>> = Vec::new();
            // Case 1: the sink fn itself is tainted.
            if visited[s] {
                candidates.push(path_to(s));
            }
            // Case 2: a tainted deterministic-path fn calls the sink.
            for e in &g.callers[s] {
                let c = e.caller;
                if !visited[c] || !tcfg.caller_flow_crates.contains(&g.fns[c].crate_name) {
                    continue;
                }
                if allow_blocks(allows, &g.fns[c].file, e.line, src.kind) {
                    continue;
                }
                let mut p = path_to(c);
                p.push(Hop {
                    func: g.fns[s].qualified(),
                    file: g.fns[s].file.clone(),
                    line: e.line,
                });
                candidates.push(p);
            }
            candidates.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            if let Some(path) = candidates.into_iter().next() {
                flows.push(Flow {
                    source_kind: src.kind.to_string(),
                    source_file: src.file.clone(),
                    source_line: src.line,
                    source_fn: g.fns[src.fn_id].qualified(),
                    sink_kind: spec.kind.clone(),
                    sink_fn: g.fns[s].qualified(),
                    sink_file: g.fns[s].file.clone(),
                    sink_line: g.fns[s].line,
                    path,
                });
            }
        }
    }
    flows.sort_by(|a, b| {
        (&a.source_file, a.source_line, &a.source_kind, &a.sink_fn).cmp(&(
            &b.source_file,
            b.source_line,
            &b.source_kind,
            &b.sink_fn,
        ))
    });

    TaintReport { flows, unused_suppressions: Vec::new() }
}

/// [`analyze_model`] with a private suppression ledger: scan every file's
/// allows, run the pass, and report taint-only stale allows.
pub fn analyze_model_standalone(model: &Model, tcfg: &TaintConfig) -> TaintReport {
    let mut allows = AllowSet::new();
    for mf in &model.files {
        allows.scan_file(&mf.lexed, &mf.file, &mf.test_regions);
    }
    let mut rep = analyze_model(model, tcfg, &mut allows);
    rep.unused_suppressions = allows.stale(&[Domain::Taint], false, phrase::TAINT);
    rep
}

/// Run the taint analysis over a set of source files. Input order does not
/// matter — files are sorted internally, and the result is byte-identical
/// under any permutation (pinned by a proptest).
pub fn analyze_files(files: &[SourceFile], tcfg: &TaintConfig) -> TaintReport {
    analyze_model_standalone(&crate::build_model(files, &[]), tcfg)
}

/// [`analyze_files`] over every `crates/*/src/**/*.rs` under `root`.
pub fn analyze_workspace_taint(root: &Path, tcfg: &TaintConfig) -> std::io::Result<TaintReport> {
    let files = crate::workspace_sources(root)?;
    Ok(analyze_files(&files, tcfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            file: format!("crates/{crate_name}/src/{name}"),
            src: src.to_string(),
        }
    }

    fn run(files: &[SourceFile]) -> TaintReport {
        analyze_files(files, &TaintConfig::workspace_default())
    }

    #[test]
    fn direct_source_in_sink_is_a_one_hop_flow() {
        let r = run(&[file(
            "optim",
            "lib.rs",
            "pub fn step(lr: f64) { let t = std::time::Instant::now(); }\n",
        )]);
        assert_eq!(r.flows.len(), 1);
        let f = &r.flows[0];
        assert_eq!(f.source_kind, "wall-clock");
        assert_eq!(f.sink_kind, "param-update");
        assert_eq!(f.path.len(), 1);
        assert_eq!(f.path[0].func, "optim::step");
    }

    #[test]
    fn taint_propagates_through_intermediate_fns() {
        let r = run(&[file(
            "sched",
            "lib.rs",
            "fn entropy() -> u64 { let t = std::time::Instant::now(); 0 }\n\
                 fn plan() -> u64 { entropy() }\n\
                 pub fn decide(x: u64) -> u64 { plan() }\n",
        )]);
        assert_eq!(r.flows.len(), 1);
        let f = &r.flows[0];
        let fns: Vec<&str> = f.path.iter().map(|h| h.func.as_str()).collect();
        assert_eq!(fns, vec!["sched::entropy", "sched::plan", "sched::decide"]);
    }

    #[test]
    fn barrier_crates_absorb_taint() {
        // The clock read lives in obs: it is the blessed home for clocks,
        // so nothing flows even when a sink calls it.
        let r = run(&[
            file(
                "obs",
                "lib.rs",
                "pub fn stamp() -> u64 { let t = std::time::Instant::now(); 1 }\n",
            ),
            file("sched", "lib.rs", "pub fn decide() -> u64 { obs::stamp() }\n"),
        ]);
        assert!(r.flows.is_empty(), "{:?}", r.flows);
    }

    #[test]
    fn barrier_fns_absorb_taint_mid_path() {
        let r = run(&[file(
            "comm",
            "lib.rs",
            "fn collect() -> u64 { let (tx, rx) = channel(); rx.recv().unwrap() }\n\
             pub fn drain_sorted() -> u64 { collect() }\n\
             pub fn allreduce_avg(x: u64) -> u64 { drain_sorted() }\n",
        )]);
        assert!(r.flows.is_empty(), "{:?}", r.flows);
    }

    #[test]
    fn taint_allow_blocks_and_unused_allow_is_reported() {
        // A kind-scoped allow on the source line blocks the flow…
        let suppressed = run(&[file(
            "optim",
            "lib.rs",
            "// detlint::allow(taint-wall-clock): log-only, audited\n\
             pub fn step(lr: f64) { let t = std::time::Instant::now(); }\n",
        )]);
        assert!(suppressed.flows.is_empty());
        assert!(suppressed.unused_suppressions.is_empty());

        // …a wrong-kind allow blocks nothing and is itself flagged.
        let stale = run(&[file(
            "optim",
            "lib.rs",
            "// detlint::allow(taint-hash-iter): wrong kind\n\
             pub fn step(lr: f64) { let t = std::time::Instant::now(); }\n",
        )]);
        assert_eq!(stale.flows.len(), 1);
        assert_eq!(stale.unused_suppressions.len(), 1);
        assert_eq!(stale.unused_suppressions[0].rule, "unused-suppression");
    }

    #[test]
    fn result_is_invariant_under_file_order() {
        let a = file("sched", "a.rs", "pub fn decide() -> u64 { leak() }\n");
        let b = file(
            "sched",
            "b.rs",
            "pub fn leak() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        );
        let fwd = run(&[a.clone(), b.clone()]);
        let rev = run(&[b, a]);
        assert_eq!(fwd.flows, rev.flows);
    }
}

//! A hand-rolled Rust token scanner — the same offline-shim philosophy as
//! `shims/`: no external parser, just enough lexical structure for the rule
//! catalog. It understands comments (line, nested block), string/char/byte
//! literals, raw strings, lifetimes-vs-char-literals, and a handful of
//! compound operators the rules care about (`::`, `+=`, `->`, `=>`).
//!
//! The scanner is intentionally lossless about *lines*: every token and
//! every line comment carries its 1-based line number, which is what the
//! suppression mechanism and the report spans key on.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `for`, `HashMap`, …).
    Ident,
    /// Punctuation / operator, possibly compound (`::`, `+=`).
    Punct,
    /// Lifetime (`'a`) — distinct so `'a` never looks like a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-9`).
    Float,
    /// String / raw-string / byte-string literal (content dropped).
    Str,
    /// Char / byte-char literal.
    Char,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (empty for string literals — rules never match inside).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// Lexer output: the token stream plus every `//` comment (for
/// suppressions), each tagged with its line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// `(line, text-after-slashes)` for every line comment, `//!`/`///`
    /// included.
    pub comments: Vec<(u32, String)>,
}

/// Tokenize `src`. Never fails: unknown bytes become single-char puncts, an
/// unterminated literal consumes to end-of-file. Good enough for linting —
/// code that far gone does not compile anyway.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($ch:expr) => {
            if $ch == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push((line, b[start..j].iter().collect()));
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump_lines!(b[j]);
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings r"..." / r#"..."# and byte variants br#"..."#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let mut j = i;
            while b[j] != 'r' {
                j += 1; // skip the 'b' of br
            }
            j += 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // opening quote
            let close: String =
                std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
            let closev: Vec<char> = close.chars().collect();
            while j < n {
                if b[j] == '"' && b[j..].starts_with(&closev[..]) {
                    j += closev.len();
                    break;
                }
                bump_lines!(b[j]);
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line });
            i = j;
            continue;
        }
        // Plain / byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    j += 1;
                    break;
                }
                bump_lines!(b[j]);
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line });
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Escaped char: '\n', '\'', '\u{..}'. The character after the
            // backslash is consumed unconditionally so `'\''` and `'\\'`
            // terminate at their own closing quote, not at the escape.
            if i + 1 < n && b[i + 1] == '\\' {
                let mut j = (i + 3).min(n);
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                i = j + 1;
                continue;
            }
            // 'x' is a char only when a closing quote follows immediately;
            // otherwise it is a lifetime ('a in Foo<'a>).
            if i + 2 < n && b[i + 2] == '\'' {
                out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Lifetime, text: b[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            // Radix-prefixed literals (`0x1e5`, `0o77`, `0b1010`) are always
            // integers: the digits may contain `e`/`E` (hex) but never an
            // exponent, so the float scanner below must not see them.
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
                let mut j = i + 2;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok { kind: TokKind::Int, text: b[i..j].iter().collect(), line });
                i = j;
                continue;
            }
            let mut j = i + 1;
            let mut float = false;
            while j < n {
                let d = b[j];
                if d == '.' {
                    // Stop at `..` (range) and at method calls `1.max(..)`.
                    if j + 1 < n && (b[j + 1] == '.' || b[j + 1].is_alphabetic()) {
                        break;
                    }
                    float = true;
                    j += 1;
                } else if d == 'e' || d == 'E' {
                    if j + 1 < n
                        && (b[j + 1] == '+' || b[j + 1] == '-' || b[j + 1].is_ascii_digit())
                    {
                        float = true;
                        j += 1;
                        if b[j] == '+' || b[j] == '-' {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                } else if d.is_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: if float { TokKind::Float } else { TokKind::Int },
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Ident, text: b[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Compound puncts the rules distinguish; everything else single.
        let two: String = b[i..(i + 2).min(n)].iter().collect();
        let text = match two.as_str() {
            "::" | "+=" | "-=" | "*=" | "/=" | "->" | "=>" => two,
            _ => c.to_string(),
        };
        i += text.chars().count();
        out.toks.push(Tok { kind: TokKind::Punct, text, line });
    }
    out
}

/// Is `b[i..]` the start of a raw (possibly byte) string literal?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn compound_operators_stay_whole() {
        assert_eq!(texts("a += b :: c -> d"), vec!["a", "+=", "b", "::", "c", "->", "d"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let x = 1;\n// detlint::allow(rule): why\nlet y = 2;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].0, 2);
        assert!(l.comments[0].1.contains("detlint::allow"));
    }

    #[test]
    fn strings_hide_their_content() {
        let l = lex("let s = \"HashMap Instant::now()\";");
        assert!(l.toks.iter().all(|t| t.text != "HashMap" && t.text != "Instant"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let l = lex("/* a /* b */ c */ let r = r#\"Instant \" inside\"#; x");
        let ids: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Ident).collect();
        assert_eq!(ids.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(), vec!["let", "r", "x"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let l = lex("1 2.5 1e-9 0xff 3usize 1.max(2)");
        let kinds: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn radix_prefixed_literals_are_ints_even_with_hex_e_digits() {
        // Regression: the exponent scanner used to fire inside hex literals —
        // `0x1e5` has `e` followed by a digit, which misclassified the token
        // as a Float (and `no-float-key-sort`-style heuristics downstream saw
        // phantom floats in checksum constants like 0xcbf29ce484222325).
        let l = lex("0x1e5 0xE5 0xcbf29ce484222325 0o17 0b1010 0xffu64 0b1_0e1");
        let nums: Vec<_> =
            l.toks.iter().filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float)).collect();
        assert_eq!(nums.len(), 7, "{:?}", l.toks);
        for t in &nums {
            assert_eq!(t.kind, TokKind::Int, "`{}` must lex as an integer", t.text);
        }
        assert_eq!(nums[2].text, "0xcbf29ce484222325", "prefix literal stays one token");
    }

    #[test]
    fn decimal_floats_stay_single_float_tokens() {
        // The shapes the radix fix must not disturb: separators, exponents
        // (signed and bare), and typed suffixes all stay one Float token.
        for src in ["1_000.0", "1e-6", "2.5E3", "1.0e-6f32"] {
            let l = lex(src);
            assert_eq!(l.toks.len(), 1, "`{src}` lexed as {:?}", l.toks);
            assert_eq!(l.toks[0].kind, TokKind::Float, "`{src}` must be a Float");
            assert_eq!(l.toks[0].text, src);
        }
    }

    #[test]
    fn raw_strings_with_hashes_hide_content_and_terminate_correctly() {
        // Multi-hash raw string containing a shorter close-like sequence:
        // `"#` inside `r##"…"##` must not terminate the literal.
        let l = lex("let s = r##\"Instant \"# HashMap\"##; after");
        assert!(l.toks.iter().all(|t| t.text != "Instant" && t.text != "HashMap"));
        assert!(l.toks.iter().any(|t| t.text == "after"), "lexer must resume after the literal");
        // Byte raw strings behave identically.
        let l = lex("let s = br#\"SystemTime\"#; after");
        assert!(l.toks.iter().all(|t| t.text != "SystemTime"));
        assert!(l.toks.iter().any(|t| t.text == "after"));
        // Raw identifiers are not raw strings: `r#match` lexes as idents,
        // and the following real code is still seen.
        let l = lex("let r#match = Instant::now();");
        assert!(l.toks.iter().any(|t| t.text == "Instant"));
    }

    #[test]
    fn deeply_nested_block_comments_hide_content() {
        let l = lex("/* a /* b /* c */ d */ e */ after");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "after");
        // `/*/` opens-then-closes ambiguity: rustc treats the `/` after the
        // opener as content, so `/*/ */` is one complete comment.
        let l = lex("/*/ */ after");
        assert_eq!(l.toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(), vec!["after"]);
        // Line numbers keep tracking across nested multiline comments.
        let l = lex("/* line1\n /* line2\n */ line3\n */\nafter");
        assert_eq!(l.toks[0].line, 5);
    }

    #[test]
    fn char_literals_containing_quotes_do_not_open_strings() {
        // `'"'` is a char literal; the quote inside must not start a string
        // that swallows the rest of the file.
        let l = lex("let q = '\"'; let t = Instant::now();");
        assert!(l.toks.iter().any(|t| t.text == "Instant"), "code after '\"' must still lex");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        // Escaped forms: '\'' and '\"' and '\\' all close at their own quote.
        let l = lex(r"let a = '\''; let b = '\x22'; let c = '\\'; done");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 0);
        assert!(l.toks.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let l = lex("a\n\"two\nlines\"\nb");
        let a = l.toks.iter().find(|t| t.text == "a").unwrap();
        let bt = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(bt.line, 4);
    }
}

//! Float-accumulation dataflow: the static half of the "same tree, faster
//! schedule" contract (PAPER.md D1, docs/DESIGN.md).
//!
//! The vectorized kernels keep bitwise consistency by fixing the *shape*
//! of every float reduction tree: a single loop-carried chain, or the
//! SUM_LANES lockstep pattern (a fixed-size accumulator array whose lanes
//! each form one chain, merged after the loop in ascending index order —
//! `tensor::kernels::leaf_partials` is the canonical instance). The
//! runtime proptests prove today's kernels match their `_scalar` oracles;
//! this pass stops the *next* edit from silently reassociating a loop or
//! dropping an oracle pairing.
//!
//! Intraprocedural dataflow over the token/item model, two sub-passes:
//!
//! 1. **Loop classification.** Every loop-carried `f32`/`f64` accumulator
//!    (read and `+=`/`*=`-assigned across `for`/`while` iterations) puts
//!    its loop in one of three classes: *single-chain* (canonical),
//!    *lockstep* (array accumulator, lanes independent, ascending merge —
//!    recognized safe), or *reassociation-prone* → a `float-reassoc`
//!    finding with span witnesses. Reassociation-prone shapes: accumulator
//!    chains merged inside the loop body, a lockstep array merged in
//!    reverse lane order, iterator-order-dependent folds (`sum`/`fold`
//!    over `rev`/`chunks`/`flat_map`-reshaped iterators), and chunked
//!    loops that fold each chunk — the remainder chunk then accumulates
//!    through a different chain than full blocks.
//! 2. **Oracle pairing.** Every pub fn matching the configured
//!    vectorized-kernel name set must have a `<name>_scalar` sibling in
//!    the workspace *and* one test (file or `#[cfg(test)]` region) calling
//!    both — otherwise `oracle-unpaired`.
//!
//! Both finding kinds demote through `// detlint::allow(float-reassoc)` /
//! `// detlint::allow(oracle-unpaired)` with the shared stale accounting
//! of [`crate::suppress`].

use crate::items;
use crate::lexer::{Tok, TokKind};
use crate::suppress::{phrase, AllowSet, Domain};
use crate::{Model, SourceFile};
use std::path::Path;

/// Suppression tokens this pass owns.
pub const ALLOW_KINDS: [&str; 2] = ["float-reassoc", "oracle-unpaired"];

/// Policy for one accumulation run.
#[derive(Debug, Clone)]
pub struct AccumConfig {
    /// Crates whose float math is numeric-contract-bearing; loops outside
    /// them are not classified (same scope as `no-raw-float-accum`).
    pub accum_crates: Vec<String>,
    /// Vectorized-kernel name set for oracle pairing. A trailing `*` is a
    /// prefix glob (`matmul*`); names ending `_scalar` are never subjects.
    pub oracle_kernels: Vec<String>,
}

impl AccumConfig {
    /// The policy for this workspace (docs/DETLINT.md).
    pub fn workspace_default() -> Self {
        let strs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        AccumConfig {
            accum_crates: strs(&["tensor", "comm", "models"]),
            oracle_kernels: strs(&[
                "blocked_sum",
                "leaf_partials",
                "dot",
                "matmul*",
                "axpy_",
                "ring_allreduce",
            ]),
        }
    }

    fn kernel_matches(&self, name: &str) -> bool {
        if name.ends_with("_scalar") {
            return false;
        }
        self.oracle_kernels.iter().any(|p| match p.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => p == name,
        })
    }
}

/// One witness location attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What this location witnesses (`write`, `merge`, `loop`).
    pub label: String,
}

/// One accumulation finding (`float-reassoc` or `oracle-unpaired`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumFinding {
    /// Finding kind.
    pub kind: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based anchor line (loop header / fold / fn keyword) — the line an
    /// allow must cover.
    pub line: u32,
    /// What is wrong and what shape to use instead.
    pub message: String,
    /// Witness spans (write sites, merge sites).
    pub spans: Vec<Span>,
}

/// Inventory entry: one classified loop (only loops that carry at least
/// one float accumulator are recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Qualified enclosing fn (`crate::Type::name`), or `<module>`.
    pub func: String,
    /// `single-chain` | `lockstep` | `reassoc`.
    pub class: &'static str,
    /// Carried accumulator names, sorted.
    pub accumulators: Vec<String>,
}

/// Inventory entry: one oracle-pairing check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleCheck {
    /// Kernel fn name.
    pub kernel: String,
    /// File/line of the kernel definition.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Does `<kernel>_scalar` exist in the workspace?
    pub scalar_found: bool,
    /// Does one test context call both siblings?
    pub tested_together: bool,
}

/// Everything one accumulation run produced.
#[derive(Debug, Default)]
pub struct AccumReport {
    /// Unsuppressed findings, sorted by `(file, line, kind, message)`.
    pub findings: Vec<AccumFinding>,
    /// Classified-loop inventory, sorted by `(file, line)`.
    pub loops: Vec<LoopInfo>,
    /// Oracle-pairing inventory, sorted by `(file, line, kernel)`.
    pub oracles: Vec<OracleCheck>,
    /// Accum-level allows that demoted nothing.
    pub unused_suppressions: Vec<crate::Finding>,
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

const FLOAT_TYPES: &[&str] = &["f32", "f64"];
const INT_TYPES: &[&str] =
    &["usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128"];
/// Iterator adapters that reshape iteration order/grouping: a float fold
/// over any of these no longer matches the element-order chain.
const RESHAPE_ADAPTERS: &[&str] =
    &["rev", "rchunks", "rchunks_exact", "flat_map", "chunks", "chunks_exact"];
/// Terminal reductions whose result depends on iteration order.
const FOLD_METHODS: &[&str] = &["sum", "product", "fold", "rfold"];
/// Loop-header chunkers that leave a remainder block.
const CHUNK_HEADERS: &[&str] = &["chunks", "chunks_exact", "rchunks", "rchunks_exact"];

fn is_kw(t: &Tok, kw: &str) -> bool {
    t.kind == TokKind::Ident && t.text == kw
}

fn slice_has_float(toks: &[Tok], a: usize, b: usize) -> bool {
    toks[a..b.min(toks.len())].iter().any(|t| {
        t.kind == TokKind::Float
            || (t.kind == TokKind::Ident && FLOAT_TYPES.contains(&t.text.as_str()))
    })
}

/// Index of the token matching the opener at `open` (`{`/`(`/`[`), or the
/// last token on EOF.
fn match_delim(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].text == o {
            depth += 1;
        } else if toks[j].text == c {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Walk back from the closer at `close` to its opener.
fn match_delim_back(toks: &[Tok], close: usize) -> usize {
    let (o, c) = match toks[close].text.as_str() {
        "}" => ("{", "}"),
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return close,
    };
    let mut depth = 0i32;
    let mut j = close as i64;
    while j >= 0 {
        let t = &toks[j as usize].text;
        if t == c {
            depth += 1;
        } else if t == o {
            depth -= 1;
            if depth == 0 {
                return j as usize;
            }
        }
        j -= 1;
    }
    0
}

/// Statement bounds around token `i` (end exclusive), delimited by
/// `;`/`{`/`}` at the statement's own nesting level.
fn statement_bounds(toks: &[Tok], i: usize) -> (usize, usize) {
    let mut a = i;
    while a > 0 {
        let t = &toks[a - 1].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        a -= 1;
    }
    let mut b = i;
    while b < toks.len() {
        let t = &toks[b].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        b += 1;
    }
    (a, b)
}

/// End (exclusive) of the statement starting at `a`, skipping nested
/// delimiter groups (so a `;` inside `[0.0; 8]` or a closure body does not
/// terminate it).
fn statement_end(toks: &[Tok], a: usize) -> usize {
    let mut depth = 0i32;
    let mut j = a;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Token index of the `}` closing the block that encloses token `i`.
fn enclosing_block_close(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Per-file structure: loops, declarations, writes
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LoopTok {
    /// 1-based line of the loop keyword.
    line: u32,
    /// Index of the `for`/`while` keyword.
    kw: usize,
    /// Index of the body `{`.
    body_open: usize,
    /// Index of the matching `}`.
    body_close: usize,
}

impl LoopTok {
    fn body_contains(&self, idx: usize) -> bool {
        self.body_open < idx && idx < self.body_close
    }
}

/// Tokens a loop keyword may legally follow. Excludes the `for` of
/// `impl Trait for Type` and `for<'a>` bounds (preceded by an ident or `>`).
fn loop_head_ok(toks: &[Tok], kw: usize) -> bool {
    if kw == 0 {
        return true;
    }
    let p = &toks[kw - 1];
    matches!(p.text.as_str(), ";" | "{" | "}" | ":" | ")") || is_kw(p, "else") || is_kw(p, "unsafe")
}

fn find_loops(toks: &[Tok]) -> Vec<LoopTok> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(is_kw(&toks[i], "for") || is_kw(&toks[i], "while")) || !loop_head_ok(toks, i) {
            continue;
        }
        // The body `{` is the first brace outside parens/brackets.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => {
                    j = toks.len();
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j < toks.len() {
            out.push(LoopTok {
                line: toks[i].line,
                kw: i,
                body_open: j,
                body_close: match_delim(toks, j),
            });
        }
    }
    out
}

#[derive(Debug)]
struct Decl {
    name: String,
    /// Index of the binding name token.
    idx: usize,
    float: bool,
    int: bool,
    /// `[expr; N]` / `vec![expr; N]` initializer or `[T; N]` annotation.
    array: bool,
}

fn find_decls(toks: &[Tok]) -> Vec<Decl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !is_kw(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && is_kw(&toks[j], "mut") {
            j += 1;
        }
        let end = statement_end(toks, i);
        // Only simple lowercase bindings; tuple/struct patterns are never
        // the accumulators this pass cares about.
        if j < toks.len()
            && toks[j].kind == TokKind::Ident
            && toks[j].text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
        {
            let mut float = false;
            let mut int = false;
            let mut array = false;
            let mut bd = 0i32;
            for t in &toks[j + 1..end.min(toks.len())] {
                match t.text.as_str() {
                    "[" => bd += 1,
                    "]" => bd -= 1,
                    ";" if bd > 0 => array = true,
                    _ => {}
                }
                if t.kind == TokKind::Float
                    || (t.kind == TokKind::Ident && FLOAT_TYPES.contains(&t.text.as_str()))
                {
                    float = true;
                } else if t.kind == TokKind::Ident && INT_TYPES.contains(&t.text.as_str()) {
                    int = true;
                }
            }
            out.push(Decl { name: toks[j].text.clone(), idx: j, float, int: int && !float, array });
        }
        i = end.max(i + 1);
    }
    out
}

/// Nearest declaration of `name` at a token index before `at`.
fn decl_before<'d>(decls: &'d [Decl], name: &str, at: usize) -> Option<&'d Decl> {
    decls.iter().filter(|d| d.name == name && d.idx < at).max_by_key(|d| d.idx)
}

/// One loop-carried accumulation write, after target resolution.
#[derive(Debug)]
struct Write {
    /// Resolved accumulator name.
    name: String,
    /// Token index of the accumulator's declaration name.
    decl_idx: usize,
    /// Is the accumulator a fixed array / vec fill (lane writes)?
    array: bool,
    /// Index of the `+=`/`*=` token.
    op: usize,
    /// 1-based line of the write.
    line: u32,
    /// Index into the loop list: the loop that carries this accumulator.
    carried_by: usize,
    /// RHS token range (exclusive end).
    rhs: (usize, usize),
}

/// Is `idx` directly preceded by a statement boundary (after an optional
/// leading `*`)? Rejects embedded targets (`|x| *x += …`, `f(x += 1)`).
fn at_statement_start(toks: &[Tok], idx: usize) -> bool {
    if idx == 0 {
        return true;
    }
    matches!(toks[idx - 1].text.as_str(), ";" | "{" | "}")
}

/// Resolve the place expression ending just before the op at `k`.
/// Returns `(name_idx, indexed)` for `x` / `*x` / `x[…]`, or `None` for
/// field chains, parenthesized places, and embedded (non-statement) sites.
fn resolve_target(toks: &[Tok], k: usize) -> Option<(usize, bool)> {
    let mut idx = k.checked_sub(1)?;
    let mut indexed = false;
    if toks[idx].text == "]" {
        idx = match_delim_back(toks, idx).checked_sub(1)?;
        indexed = true;
    }
    if toks[idx].kind != TokKind::Ident {
        return None;
    }
    let name_idx = idx;
    let mut start = idx;
    if idx > 0 && toks[idx - 1].text == "*" {
        start = idx - 1;
    }
    if idx > 0 && (toks[idx - 1].text == "." || toks[idx - 1].text == "::") {
        return None; // field / path place: scatter into a structure
    }
    if !at_statement_start(toks, start) {
        return None;
    }
    Some((name_idx, indexed))
}

/// If `name` is bound by the header of a loop in `loops`, return that
/// loop's index (`for (l, x) in …` / `for x in …` patterns).
fn header_binder(toks: &[Tok], loops: &[LoopTok], name: &str, at: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (li, lp) in loops.iter().enumerate() {
        if !lp.body_contains(at) || !is_kw(&toks[lp.kw], "for") {
            continue;
        }
        // Pattern tokens: between `for` and `in`.
        let mut j = lp.kw + 1;
        while j < lp.body_open && !is_kw(&toks[j], "in") {
            if toks[j].kind == TokKind::Ident && toks[j].text == name {
                // Innermost binder wins (largest body_open below `at`).
                if best.is_none_or(|b: usize| loops[b].body_open < lp.body_open) {
                    best = Some(li);
                }
                break;
            }
            j += 1;
        }
    }
    best
}

/// If the iterable of for-loop `li` is `ARR.iter_mut()…`, return the token
/// index of `ARR`.
fn iter_mut_base(toks: &[Tok], lp: &LoopTok) -> Option<usize> {
    let mut j = lp.kw + 1;
    while j < lp.body_open && !is_kw(&toks[j], "in") {
        j += 1;
    }
    let base = j + 1;
    if base + 2 < lp.body_open
        && toks[base].kind == TokKind::Ident
        && toks[base + 1].text == "."
        && is_kw(&toks[base + 2], "iter_mut")
    {
        return Some(base);
    }
    None
}

/// The innermost loop containing `at` whose body does not contain
/// `decl_idx` — the loop the accumulator is carried across. `inside_of`
/// restricts candidates to loops strictly containing that loop.
fn carrier(
    loops: &[LoopTok],
    at: usize,
    decl_idx: usize,
    strictly_outside: Option<usize>,
) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, lp)| lp.body_contains(at) && !lp.body_contains(decl_idx))
        .filter(|(li, lp)| match strictly_outside {
            Some(inner) => *li != inner && lp.body_contains(loops[inner].kw),
            None => true,
        })
        .min_by_key(|(_, lp)| lp.body_close - lp.body_open)
        .map(|(li, _)| li)
}

// ---------------------------------------------------------------------------
// The classifier
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    file: &'a str,
    toks: &'a [Tok],
    test_regions: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// One classified loop: header line, class, accumulator names.
type LoopClass = (u32, &'static str, Vec<String>);

/// Raw (pre-suppression) analysis of one file: loop classes + findings.
fn classify_file(ctx: &FileCtx) -> (Vec<LoopClass>, Vec<AccumFinding>) {
    let toks = ctx.toks;
    let loops = find_loops(toks);
    let decls = find_decls(toks);
    let mut findings: Vec<AccumFinding> = Vec::new();

    let finding = |line: u32, message: String, spans: Vec<Span>| AccumFinding {
        kind: "float-reassoc",
        file: ctx.file.to_string(),
        line,
        message,
        spans,
    };
    let span = |line: u32, label: &str| Span {
        file: ctx.file.to_string(),
        line,
        label: label.to_string(),
    };

    // Collect loop-carried accumulation writes.
    let mut writes: Vec<Write> = Vec::new();
    for k in 0..toks.len() {
        let op = &toks[k];
        if !(op.kind == TokKind::Punct && (op.text == "+=" || op.text == "*=")) {
            continue;
        }
        if ctx.in_test(op.line) {
            continue;
        }
        let rhs = (k + 1, statement_end(toks, k + 1));
        let Some((name_idx, indexed)) = resolve_target(toks, k) else { continue };
        let name = toks[name_idx].text.as_str();

        let resolved = match decl_before(&decls, name, k) {
            Some(d) => {
                if d.int {
                    continue;
                }
                let float = d.float || slice_has_float(toks, rhs.0, rhs.1);
                if !float {
                    continue;
                }
                let array = d.array && indexed;
                carrier(&loops, k, d.idx, None).map(|li| (name.to_string(), d.idx, array, li))
            }
            None => {
                // Header-bound target: elementwise, unless it is a lane
                // handle over a declared float array (`acc.iter_mut()`).
                let Some(binder) = header_binder(toks, &loops, name, k) else { continue };
                let Some(base) = iter_mut_base(toks, &loops[binder]) else { continue };
                let arr = toks[base].text.as_str();
                let Some(d) = decl_before(&decls, arr, base) else { continue };
                if !d.float || !d.array {
                    continue;
                }
                carrier(&loops, k, d.idx, Some(binder)).map(|li| (arr.to_string(), d.idx, true, li))
            }
        };
        let Some((name, decl_idx, array, carried_by)) = resolved else { continue };
        writes.push(Write { name, decl_idx, array, op: k, line: op.line, carried_by, rhs });
    }

    // Group by carrying loop and classify.
    let mut loop_classes: Vec<LoopClass> = Vec::new();
    let mut carried: Vec<usize> = writes.iter().map(|w| w.carried_by).collect();
    carried.sort_unstable();
    carried.dedup();
    for li in carried {
        let lp = &loops[li];
        if ctx.in_test(lp.line) {
            continue;
        }
        let ws: Vec<&Write> = writes.iter().filter(|w| w.carried_by == li).collect();
        let mut names: Vec<String> = ws.iter().map(|w| w.name.clone()).collect();
        names.sort();
        names.dedup();
        let mut class: &'static str =
            if ws.iter().any(|w| w.array) { "lockstep" } else { "single-chain" };

        // (c1) Chains merged inside the loop: a write whose RHS reads a
        // *different* accumulator carried by the same loop.
        for w in &ws {
            let other = toks[w.rhs.0..w.rhs.1.min(toks.len())].iter().find(|t| {
                t.kind == TokKind::Ident && names.iter().any(|n| n != &w.name && n == &t.text)
            });
            if let Some(o) = other {
                class = "reassoc";
                findings.push(finding(
                    lp.line,
                    format!(
                        "loop merges float accumulators `{}` and `{}` inside its body; keep \
                         each chain independent across iterations and merge after the loop \
                         in a fixed lane order (docs/DETLINT.md, lockstep pattern)",
                        o.text, w.name
                    ),
                    vec![span(lp.line, "loop"), span(w.line, "merge-write")],
                ));
            }
        }

        // Lockstep arrays: lanes must merge *after* the loop, ascending.
        for w in ws.iter().filter(|w| w.array) {
            let arr = &w.name;
            // In-body whole-array reduction = merge inside the loop.
            for j in lp.body_open + 1..lp.body_close {
                let t = &toks[j];
                if !(t.kind == TokKind::Ident
                    && &t.text == arr
                    && toks.get(j + 1).is_some_and(|n| n.text == "."))
                {
                    continue;
                }
                let (a, b) = statement_bounds(toks, j);
                if (a..b).contains(&w.op) {
                    continue; // the lane write itself
                }
                if toks[a..b]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && FOLD_METHODS.contains(&t.text.as_str()))
                {
                    class = "reassoc";
                    findings.push(finding(
                        lp.line,
                        format!(
                            "lockstep accumulator `{arr}` is reduced inside its own loop; \
                             merge the lanes after the loop, in ascending index order"
                        ),
                        vec![span(lp.line, "loop"), span(toks[j].line, "in-loop-merge")],
                    ));
                    break;
                }
            }
            // Post-loop merge order: scan the rest of the declaring scope.
            let scope_end = enclosing_block_close(toks, w.decl_idx);
            let mut j = lp.body_close + 1;
            while j < scope_end.min(toks.len()) {
                let t = &toks[j];
                if t.kind == TokKind::Ident && &t.text == arr {
                    let (a, b) = statement_bounds(toks, j);
                    if toks[a..b].iter().any(|t| {
                        t.kind == TokKind::Ident
                            && matches!(
                                t.text.as_str(),
                                "rev" | "rfold" | "rchunks" | "rchunks_exact"
                            )
                    }) {
                        class = "reassoc";
                        findings.push(finding(
                            lp.line,
                            format!(
                                "lockstep accumulator `{arr}` merges its lanes in reverse \
                                 index order after the loop; merge ascending \
                                 (extend_from_slice or an indexed forward loop) so the \
                                 reduction tree stays fixed"
                            ),
                            vec![span(lp.line, "loop"), span(t.line, "reversed-merge")],
                        ));
                        j = b;
                        continue;
                    }
                }
                j += 1;
            }
        }

        // (c3) Chunked loop folding whole chunks into a scalar chain: the
        // remainder chunk accumulates through a different chain than full
        // blocks.
        let header_chunked = toks[lp.kw..lp.body_open].iter().enumerate().any(|(off, t)| {
            t.kind == TokKind::Ident
                && CHUNK_HEADERS.contains(&t.text.as_str())
                && toks.get(lp.kw + off + 1).is_some_and(|n| n.text == "(")
        });
        if header_chunked {
            for w in ws.iter().filter(|w| !w.array) {
                if toks[w.rhs.0..w.rhs.1.min(toks.len())]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && FOLD_METHODS.contains(&t.text.as_str()))
                {
                    class = "reassoc";
                    findings.push(finding(
                        lp.line,
                        format!(
                            "chunked loop folds each chunk into `{}` with an iterator \
                             reduction; the remainder chunk then takes a different \
                             accumulation chain than full blocks — use fixed-size blocks \
                             with an explicit scalar tail (kernels::leaf_partials)",
                            w.name
                        ),
                        vec![span(lp.line, "loop"), span(w.line, "chunk-fold")],
                    ));
                }
            }
        }

        loop_classes.push((lp.line, class, names));
    }

    // (c2) Order-dependent folds over reshaped iterators, loops or not.
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident
            && FOLD_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(" || n.text == "::"))
        {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        let (a, b) = statement_bounds(toks, i);
        if !slice_has_float(toks, a, b) {
            continue;
        }
        let chain = receiver_chain(toks, i);
        let reshaped: Vec<&str> = chain
            .iter()
            .map(|&m| toks[m].text.as_str())
            .filter(|m| RESHAPE_ADAPTERS.contains(m))
            .collect();
        let reversed_fold = t.text == "rfold";
        if reshaped.is_empty() && !reversed_fold {
            continue;
        }
        let what = if reversed_fold && reshaped.is_empty() {
            "rfold reverses the element order".to_string()
        } else {
            format!("reshaped by `{}`", reshaped.join("`, `"))
        };
        findings.push(finding(
            t.line,
            format!(
                "order-dependent float `.{}()` over an iterator {what}; the reduction \
                 tree follows the iterator's shape — use an indexed loop or the lockstep \
                 pattern so the tree is explicit",
                t.text
            ),
            vec![span(t.line, "fold")],
        ));
    }

    (loop_classes, findings)
}

/// Method names along the receiver chain of the method at `i`
/// (`x.a().b().sum` → indices of `a`, `b`), walking left over balanced
/// argument lists and turbofish.
fn receiver_chain(toks: &[Tok], i: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = i.saturating_sub(1); // the `.` before the method name
    loop {
        if toks[p].text != "." || p == 0 {
            break;
        }
        let mut q = p - 1;
        // Skip one balanced group (argument list / index) and turbofish.
        loop {
            match toks[q].text.as_str() {
                ")" | "]" => {
                    let open = match_delim_back(toks, q);
                    if open == 0 {
                        return out;
                    }
                    q = open - 1;
                }
                ">" => {
                    // `::<T>` — walk back to the matching `<`.
                    let mut depth = 0i32;
                    loop {
                        match toks[q].text.as_str() {
                            ">" => depth += 1,
                            "<" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if q == 0 {
                            return out;
                        }
                        q -= 1;
                    }
                    if q < 2 || toks[q - 1].text != "::" {
                        return out;
                    }
                    q -= 2;
                }
                _ => break,
            }
        }
        if toks[q].kind != TokKind::Ident {
            break;
        }
        out.push(q);
        if q == 0 {
            break;
        }
        p = q - 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Oracle pairing
// ---------------------------------------------------------------------------

/// Is the fn whose `fn` keyword sits at `(file line, name)` declared `pub`
/// (including `pub(crate)` and friends)?
fn fn_is_pub(toks: &[Tok], line: u32, name: &str) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if !(is_kw(t, "fn") && t.line == line && toks.get(i + 1).is_some_and(|n| n.text == name)) {
            continue;
        }
        if i == 0 {
            return false;
        }
        let mut p = i - 1;
        if toks[p].text == ")" {
            let open = match_delim_back(toks, p);
            if open == 0 {
                return false;
            }
            p = open - 1;
        }
        return is_kw(&toks[p], "pub") || (p > 0 && is_kw(&toks[p - 1], "pub"));
    }
    false
}

/// Names called (ident followed by `(` or a turbofish) in `toks`,
/// restricted to `lines` when given.
fn called_names(toks: &[Tok], region: Option<&[(u32, u32)]>, out: &mut Vec<String>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(regions) = region {
            if !regions.iter().any(|&(a, b)| (a..=b).contains(&t.line)) {
                continue;
            }
        }
        if toks.get(i + 1).is_some_and(|n| n.text == "(" || n.text == "::") {
            out.push(t.text.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Run the accumulation analysis over a pre-built model, recording allow
/// consumption in `allows`. Stale accounting is the caller's job (the
/// single-mode wrapper scopes it to [`Domain::Accum`]; `--all` unifies it).
pub fn analyze_model(model: &Model, acfg: &AccumConfig, allows: &mut AllowSet) -> AccumReport {
    let mut findings: Vec<AccumFinding> = Vec::new();
    let mut loop_infos: Vec<LoopInfo> = Vec::new();

    for mf in &model.files {
        if !acfg.accum_crates.contains(&mf.crate_name) {
            continue;
        }
        let ctx = FileCtx { file: &mf.file, toks: &mf.lexed.toks, test_regions: &mf.test_regions };
        let (classes, raw) = classify_file(&ctx);
        for (line, class, accumulators) in classes {
            let func = items::innermost_fn_at(&model.graph.fns, &mf.file, line)
                .map_or_else(|| "<module>".to_string(), |f| model.graph.fns[f].qualified());
            loop_infos.push(LoopInfo { file: mf.file.clone(), line, func, class, accumulators });
        }
        for f in raw {
            if !allows.consume(&f.file, f.line, "float-reassoc") {
                findings.push(f);
            }
        }
    }

    // Oracle pairing over the shared call-graph fn index.
    let mut scalar_names: Vec<&str> = model
        .graph
        .fns
        .iter()
        .filter(|f| !f.in_test && f.name.ends_with("_scalar"))
        .map(|f| f.name.as_str())
        .collect();
    scalar_names.sort_unstable();
    scalar_names.dedup();

    // Call inventories per test context: each test file, and each source
    // file's `#[cfg(test)]` regions, is one context.
    let mut contexts: Vec<Vec<String>> = Vec::new();
    for tf in &model.test_files {
        let lexed = crate::lexer::lex(&tf.src);
        let mut calls = Vec::new();
        called_names(&lexed.toks, None, &mut calls);
        contexts.push(calls);
    }
    for mf in &model.files {
        if mf.test_regions.is_empty() {
            continue;
        }
        let mut calls = Vec::new();
        called_names(&mf.lexed.toks, Some(&mf.test_regions), &mut calls);
        contexts.push(calls);
    }

    let mut oracles: Vec<OracleCheck> = Vec::new();
    for f in &model.graph.fns {
        if f.in_test || !acfg.accum_crates.contains(&f.crate_name) || !acfg.kernel_matches(&f.name)
        {
            continue;
        }
        let Some(mf) = model.files.iter().find(|m| m.file == f.file) else { continue };
        if !fn_is_pub(&mf.lexed.toks, f.line, &f.name) {
            continue;
        }
        let sib = format!("{}_scalar", f.name);
        let scalar_found = scalar_names.binary_search(&sib.as_str()).is_ok();
        let tested_together =
            contexts.iter().any(|c| c.iter().any(|n| n == &f.name) && c.iter().any(|n| n == &sib));
        if oracles.iter().any(|o| o.kernel == f.name && o.file == f.file && o.line == f.line) {
            continue; // nested-fn double scan
        }
        oracles.push(OracleCheck {
            kernel: f.name.clone(),
            file: f.file.clone(),
            line: f.line,
            scalar_found,
            tested_together,
        });
        if scalar_found && tested_together {
            continue;
        }
        if allows.consume(&f.file, f.line, "oracle-unpaired") {
            continue;
        }
        let message = if !scalar_found {
            format!(
                "vectorized kernel `{}` has no `{sib}` oracle in the workspace; keep the \
                 scalar reference implementation in-tree so bit-equality stays provable \
                 (docs/DETLINT.md, oracle pairing)",
                f.name
            )
        } else {
            format!(
                "vectorized kernel `{}` and `{sib}` are never exercised together by one \
                 test; add a bit-equality test that calls both",
                f.name
            )
        };
        findings.push(AccumFinding {
            kind: "oracle-unpaired",
            file: f.file.clone(),
            line: f.line,
            message,
            spans: vec![Span { file: f.file.clone(), line: f.line, label: "kernel".to_string() }],
        });
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.kind, &a.message).cmp(&(&b.file, b.line, b.kind, &b.message))
    });
    loop_infos.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    oracles.sort_by(|a, b| (&a.file, a.line, &a.kernel).cmp(&(&b.file, b.line, &b.kernel)));
    AccumReport { findings, loops: loop_infos, oracles, unused_suppressions: Vec::new() }
}

/// [`analyze_model`] with a private suppression ledger: scan every file's
/// allows, run the pass, and report accum-only stale allows.
pub fn analyze_model_standalone(model: &Model, acfg: &AccumConfig) -> AccumReport {
    let mut allows = AllowSet::new();
    for mf in &model.files {
        allows.scan_file(&mf.lexed, &mf.file, &mf.test_regions);
    }
    let mut rep = analyze_model(model, acfg, &mut allows);
    rep.unused_suppressions = allows.stale(&[Domain::Accum], false, phrase::ACCUM);
    rep
}

/// Run over explicit source + test files (fixture entry point). Input
/// order does not matter — the model sorts internally, so the result is
/// byte-identical under any permutation (pinned by a proptest).
pub fn analyze_files(
    files: &[SourceFile],
    test_files: &[SourceFile],
    acfg: &AccumConfig,
) -> AccumReport {
    analyze_model_standalone(&crate::build_model(files, test_files), acfg)
}

/// [`analyze_files`] over every `crates/*/src/**/*.rs` (analysis) and
/// `crates/*/tests/**/*.rs` + `tests/*.rs` (oracle evidence) under `root`.
pub fn analyze_workspace_accum(root: &Path, acfg: &AccumConfig) -> std::io::Result<AccumReport> {
    let files = crate::workspace_sources(root)?;
    let test_files = crate::workspace_test_sources(root)?;
    Ok(analyze_files(&files, &test_files, acfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            file: format!("crates/{crate_name}/src/{name}"),
            src: src.to_string(),
        }
    }

    fn run(src: &str) -> AccumReport {
        analyze_files(&[file("tensor", "lib.rs", src)], &[], &AccumConfig::workspace_default())
    }

    fn reassoc_count(r: &AccumReport) -> usize {
        r.findings.iter().filter(|f| f.kind == "float-reassoc").count()
    }

    #[test]
    fn single_chain_is_clean() {
        let r = run(
            "fn s(xs: &[f32]) -> f32 { let mut acc = 0.0f32; for x in xs { acc += *x; } acc }\n",
        );
        assert_eq!(reassoc_count(&r), 0);
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0].class, "single-chain");
        assert_eq!(r.loops[0].accumulators, vec!["acc".to_string()]);
    }

    #[test]
    fn lockstep_with_ascending_merge_is_recognized_safe() {
        let r = run("fn s(xs: &[f32]) -> f32 {\n\
             let mut out = Vec::new();\n\
             let mut b = 0;\n\
             while b + 8 <= xs.len() {\n\
                 let mut acc = [0.0f32; 8];\n\
                 for j in 0..8 {\n\
                     for (l, a) in acc.iter_mut().enumerate() {\n\
                         *a += xs[b + l * 8 + j];\n\
                     }\n\
                 }\n\
                 out.extend_from_slice(&acc);\n\
                 b += 64;\n\
             }\n\
             out[0]\n}\n");
        assert_eq!(reassoc_count(&r), 0, "{:?}", r.findings);
        assert!(r.loops.iter().any(|l| l.class == "lockstep"), "{:?}", r.loops);
    }

    #[test]
    fn reversed_lane_merge_is_caught() {
        let r = run("fn s(xs: &[f32]) -> f32 {\n\
             let mut acc = [0.0f32; 8];\n\
             for j in 0..xs.len() {\n\
                 for (l, a) in acc.iter_mut().enumerate() {\n\
                     *a += xs[j] * l as f32;\n\
                 }\n\
             }\n\
             acc.iter().rev().sum::<f32>()\n}\n");
        assert!(
            r.findings.iter().any(|f| f.message.contains("reverse index order")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn in_loop_merge_of_two_chains_is_caught() {
        let r = run("fn s(xs: &[f32]) -> f32 {\n\
             let mut a = 0.0f32;\n\
             let mut b = 0.0f32;\n\
             for x in xs {\n\
                 a += *x;\n\
                 b += a;\n\
             }\n\
             b\n}\n");
        assert!(
            r.findings.iter().any(|f| f.message.contains("inside its body")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn chunked_fold_with_divergent_remainder_is_caught() {
        let r = run("fn s(xs: &[f32]) -> f32 {\n\
             let mut total = 0.0f32;\n\
             for c in xs.chunks(8) {\n\
                 total += c.iter().sum::<f32>();\n\
             }\n\
             total\n}\n");
        assert!(
            r.findings.iter().any(|f| f.message.contains("remainder chunk")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn reshaped_iterator_fold_is_caught_and_allows_demote_it() {
        let src = "fn s(xs: &[f32]) -> f32 { xs.chunks(8).map(|c| c.iter().sum::<f32>()).sum::<f32>() }\n";
        let r = run(src);
        assert_eq!(reassoc_count(&r), 1, "{:?}", r.findings);
        let allowed =
            format!("// detlint::allow(float-reassoc): audited fixed-length input\n{src}");
        let r = run(&allowed);
        assert_eq!(reassoc_count(&r), 0);
        assert!(r.unused_suppressions.is_empty());
    }

    #[test]
    fn stale_accum_allow_is_reported() {
        let r = run("// detlint::allow(float-reassoc): nothing here\nfn s() {}\n");
        assert_eq!(r.unused_suppressions.len(), 1);
        assert!(r.unused_suppressions[0].message.contains("blocked no accumulation finding"));
    }

    #[test]
    fn elementwise_updates_are_not_accumulators() {
        // Header-bound targets over non-array iterables have no carried
        // chain; int counters and offset advances are skipped.
        let r = run("pub fn scale(out: &mut [f32], s: f32) {\n\
             let mut n = 0usize;\n\
             for v in out.iter_mut() { *v *= s; n += 1; }\n\
             let _ = n;\n}\n");
        assert_eq!(reassoc_count(&r), 0, "{:?}", r.findings);
        assert!(r.loops.is_empty(), "{:?}", r.loops);
    }

    #[test]
    fn oracle_pairing_requires_sibling_and_shared_test() {
        let kernel = "pub fn dot(a: &[f32], b: &[f32]) -> f32 { let mut s = 0.0f32; \
                      for i in 0..a.len() { s += a[i] * b[i]; } s }\n";
        // No sibling at all → unpaired.
        let r = run(kernel);
        assert!(r.findings.iter().any(|f| f.kind == "oracle-unpaired"), "{:?}", r.findings);
        // Sibling exists but nothing calls both → still unpaired.
        let with_sib =
            format!("{kernel}pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {{ 0.0 }}\n");
        let r = run(&with_sib);
        assert!(r.findings.iter().any(|f| f.message.contains("never exercised together")));
        // A test file calling both closes the pair.
        let tf = SourceFile {
            crate_name: "tensor".to_string(),
            file: "crates/tensor/tests/pair.rs".to_string(),
            src: "#[test]\nfn pair() { assert_eq!(dot(&[1.0], &[1.0]), dot_scalar(&[1.0], &[1.0])); }\n"
                .to_string(),
        };
        let r = analyze_files(
            &[file("tensor", "lib.rs", &with_sib)],
            &[tf],
            &AccumConfig::workspace_default(),
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let o = r.oracles.iter().find(|o| o.kernel == "dot").unwrap();
        assert!(o.scalar_found && o.tested_together);
    }

    #[test]
    fn private_fns_and_other_crates_are_not_oracle_subjects() {
        let r = run("fn matmul_rows_into(o: &mut [f32]) { o[0] = 0.0; }\n");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let r = analyze_files(
            &[file("sched", "lib.rs", "pub fn dot(a: &[f32]) -> f32 { a[0] }\n")],
            &[],
            &AccumConfig::workspace_default(),
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}

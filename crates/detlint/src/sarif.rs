//! SARIF 2.1.0 serialization for every detlint mode, built on the
//! vendored serde shims (no external schema crates — the document is a
//! hand-assembled [`Value`] tree, which also makes the byte layout
//! deterministic: maps serialize in insertion order, and every input
//! report is already sorted, so repeated and shuffled-order runs emit
//! identical bytes; pinned by a proptest).
//!
//! Layout: one `run` per mode (`leaf`, `taint`, `concur`, `accum`), each
//! with the mode's rule catalog under `tool.driver.rules`, results with
//! physical-location regions, and witness paths/spans as
//! `relatedLocations`. `--sarif PATH` in single-mode runs writes a
//! one-run document; `--all` writes all four.

use crate::accum::AccumReport;
use crate::concur::{ConcurFinding, ConcurReport};
use crate::taint::TaintReport;
use crate::Finding;
use serde::Value;

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
const VERSION: &str = "2.1.0";

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn location(file: &str, line: u32) -> Value {
    map(vec![(
        "physicalLocation",
        map(vec![
            ("artifactLocation", map(vec![("uri", s(file))])),
            ("region", map(vec![("startLine", Value::U64(u64::from(line)))])),
        ]),
    )])
}

/// A `message`-carrying related location (witness span / path hop).
fn related(file: &str, line: u32, text: &str) -> Value {
    map(vec![
        (
            "physicalLocation",
            map(vec![
                ("artifactLocation", map(vec![("uri", s(file))])),
                ("region", map(vec![("startLine", Value::U64(u64::from(line)))])),
            ]),
        ),
        ("message", map(vec![("text", s(text))])),
    ])
}

fn rule_meta(id: &str, description: &str, level: &str) -> Value {
    map(vec![
        ("id", s(id)),
        ("shortDescription", map(vec![("text", s(description))])),
        ("properties", map(vec![("detlintLevel", s(level))])),
    ])
}

fn result(
    rule_id: &str,
    level: &str,
    message: &str,
    file: &str,
    line: u32,
    related_locations: Vec<Value>,
) -> Value {
    let mut entries = vec![
        ("ruleId", s(rule_id)),
        ("level", s(level)),
        ("message", map(vec![("text", s(message))])),
        ("locations", Value::Seq(vec![location(file, line)])),
    ];
    if !related_locations.is_empty() {
        entries.push(("relatedLocations", Value::Seq(related_locations)));
    }
    map(entries)
}

fn run(mode: &str, rules: Vec<Value>, results: Vec<Value>) -> Value {
    map(vec![
        (
            "tool",
            map(vec![(
                "driver",
                map(vec![
                    ("name", s("detlint")),
                    ("version", s(env!("CARGO_PKG_VERSION"))),
                    ("rules", Value::Seq(rules)),
                ]),
            )]),
        ),
        ("results", Value::Seq(results)),
        ("properties", map(vec![("mode", s(mode))])),
    ])
}

/// Map a detlint determinism level to a SARIF result level.
fn sarif_level(detlint_level: &str) -> &'static str {
    match detlint_level {
        "meta" => "note",
        "D1" | "D2" => "warning",
        _ => "error",
    }
}

fn stale_results(stale: &[Finding]) -> Vec<Value> {
    stale
        .iter()
        .map(|f| result("unused-suppression", "note", &f.message, &f.file, f.line, Vec::new()))
        .collect()
}

const UNUSED_SUPPRESSION_DESC: &str =
    "a detlint::allow comment that matches no finding is a stale audit record";

/// The leaf-mode run: one result per finding, catalog rules verbatim.
pub fn leaf_run(findings: &[Finding]) -> Value {
    let rules =
        crate::rules::CATALOG.iter().map(|r| rule_meta(r.name, r.summary, r.level)).collect();
    let results = findings
        .iter()
        .map(|f| {
            let level = if f.rule == "unused-suppression" { "note" } else { sarif_level(f.level) };
            result(f.rule, level, &f.message, &f.file, f.line, Vec::new())
        })
        .collect();
    run("leaf", rules, results)
}

/// The taint-mode run: one result per flow anchored at the source, the
/// call-path witness as related locations; stale allows as notes.
pub fn taint_run(r: &TaintReport) -> Value {
    let rules = vec![
        rule_meta(
            "taint-flow",
            "a nondeterministic source value reaches a decision or output sink",
            "D0",
        ),
        rule_meta("unused-suppression", UNUSED_SUPPRESSION_DESC, "meta"),
    ];
    let mut results: Vec<Value> = r
        .flows
        .iter()
        .map(|f| {
            let mut rel: Vec<Value> =
                f.path.iter().map(|h| related(&h.file, h.line, &h.func)).collect();
            rel.push(related(&f.sink_file, f.sink_line, &format!("sink: {}", f.sink_fn)));
            result(
                "taint-flow",
                "error",
                &format!("{} -> {} ({})", f.source_kind, f.sink_kind, f.sink_fn),
                &f.source_file,
                f.source_line,
                rel,
            )
        })
        .collect();
    results.extend(stale_results(&r.unused_suppressions));
    run("taint", rules, results)
}

/// The concurrency-mode run: findings as errors, warnings as warnings,
/// witness call paths as related locations.
pub fn concur_run(r: &ConcurReport) -> Value {
    let rules = crate::concur::ALLOW_KINDS
        .iter()
        .map(|k| rule_meta(k, "deterministic worker-pool protocol conformance", "D0"))
        .chain(std::iter::once(rule_meta("unused-suppression", UNUSED_SUPPRESSION_DESC, "meta")))
        .collect();
    let render = |f: &ConcurFinding, level: &str| {
        let rel: Vec<Value> = f
            .paths
            .iter()
            .flat_map(|p| p.iter())
            .map(|h| related(&h.file, h.line, &h.func))
            .collect();
        result(f.kind, level, &f.message, &f.file, f.line, rel)
    };
    let mut results: Vec<Value> = r.findings.iter().map(|f| render(f, "error")).collect();
    results.extend(r.warnings.iter().map(|f| render(f, "warning")));
    results.extend(stale_results(&r.unused_suppressions));
    run("concur", rules, results)
}

/// The accumulation-mode run: `float-reassoc` / `oracle-unpaired` results
/// with their span witnesses as related locations.
pub fn accum_run(r: &AccumReport) -> Value {
    let rules = vec![
        rule_meta(
            "float-reassoc",
            "a loop-carried float accumulation whose reduction tree depends on iteration shape",
            "D1",
        ),
        rule_meta(
            "oracle-unpaired",
            "a vectorized kernel without a tested _scalar bit-equality oracle",
            "D1",
        ),
        rule_meta("unused-suppression", UNUSED_SUPPRESSION_DESC, "meta"),
    ];
    let mut results: Vec<Value> = r
        .findings
        .iter()
        .map(|f| {
            let rel: Vec<Value> =
                f.spans.iter().map(|sp| related(&sp.file, sp.line, &sp.label)).collect();
            result(f.kind, "error", &f.message, &f.file, f.line, rel)
        })
        .collect();
    results.extend(stale_results(&r.unused_suppressions));
    run("accum", rules, results)
}

/// Assemble runs into a complete SARIF 2.1.0 document.
pub fn document(runs: Vec<Value>) -> String {
    let root =
        map(vec![("$schema", s(SCHEMA)), ("version", s(VERSION)), ("runs", Value::Seq(runs))]);
    let mut out = serde_json::to_string_pretty(&root).expect("value tree serializes");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_leaf() -> Vec<Finding> {
        vec![Finding {
            rule: "no-wall-clock",
            level: "D0",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "raw Instant::now".to_string(),
        }]
    }

    #[test]
    fn document_has_schema_version_and_runs() {
        let text = document(vec![leaf_run(&sample_leaf())]);
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get_field("version"), Some(&Value::Str(VERSION.to_string())));
        assert_eq!(v.get_field("$schema"), Some(&Value::Str(SCHEMA.to_string())));
        let Some(Value::Seq(runs)) = v.get_field("runs") else { panic!("runs array") };
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get_field("tool").unwrap().get_field("driver").unwrap();
        assert_eq!(driver.get_field("name"), Some(&Value::Str("detlint".to_string())));
    }

    #[test]
    fn leaf_results_carry_rule_and_region() {
        let text = document(vec![leaf_run(&sample_leaf())]);
        let v: Value = serde_json::from_str(&text).unwrap();
        let Some(Value::Seq(runs)) = v.get_field("runs") else { panic!() };
        let Some(Value::Seq(results)) = runs[0].get_field("results") else { panic!() };
        assert_eq!(results[0].get_field("ruleId"), Some(&Value::Str("no-wall-clock".to_string())));
        let loc = &match results[0].get_field("locations") {
            Some(Value::Seq(l)) => l.clone(),
            _ => panic!("locations"),
        }[0];
        let region = loc.get_field("physicalLocation").unwrap().get_field("region").unwrap();
        assert_eq!(region.get_field("startLine"), Some(&Value::U64(7)));
    }

    #[test]
    fn every_mode_produces_a_run_with_its_rule_catalog() {
        let doc = document(vec![
            leaf_run(&[]),
            taint_run(&TaintReport::default()),
            concur_run(&ConcurReport::default()),
            accum_run(&AccumReport::default()),
        ]);
        let v: Value = serde_json::from_str(&doc).unwrap();
        let Some(Value::Seq(runs)) = v.get_field("runs") else { panic!() };
        let modes: Vec<_> = runs
            .iter()
            .map(|r| r.get_field("properties").unwrap().get_field("mode").unwrap().clone())
            .collect();
        assert_eq!(
            modes,
            vec![s("leaf"), s("taint"), s("concur"), s("accum")],
            "one run per mode, in mode order"
        );
        for r in runs {
            let rules = r.get_field("tool").unwrap().get_field("driver").unwrap();
            let Some(Value::Seq(rs)) = rules.get_field("rules") else { panic!("rules array") };
            assert!(!rs.is_empty());
        }
    }
}

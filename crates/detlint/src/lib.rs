//! detlint — a workspace determinism lint.
//!
//! EasyScale's accuracy-consistency story (PAPER.md §3) only holds if the
//! *whole* deterministic path is free of hidden order dependence: hash-table
//! iteration, wall-clock reads, unordered float accumulation, ad-hoc RNG,
//! and thread-completion order. The runtime tests (determinism_matrix,
//! elastic_consistency) catch regressions after the fact; detlint enforces
//! the contract *statically*, at the source level, so a violation is a
//! lint failure before it is a flaky bitwise diff.
//!
//! Design constraints mirror the shims philosophy: fully offline, no
//! external parser — a hand-rolled token scanner ([`lexer`]) feeds a small
//! rule catalog ([`rules`]). Findings carry `file:line` spans, can be
//! rendered as human text or JSON ([`report`]), and are suppressed per-site
//! with `// detlint::allow(rule): reason` comments.

pub mod accum;
pub mod cache;
pub mod callgraph;
pub mod concur;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod suppress;
pub mod taint;

use std::path::Path;

/// Workspace policy: which crates each rule is load-bearing for.
///
/// Crate names here are the directory names under `crates/` (which for this
/// workspace equal the package names, except `core` whose package is
/// `easyscale`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates on the deterministic path — everything a training step's
    /// bitwise result flows through. `no-hash-iter`, `no-adhoc-rng`, and
    /// `no-thread-order` apply here.
    pub deterministic_path: Vec<String>,
    /// Crates allowed to read wall clocks (`no-wall-clock` applies
    /// everywhere else — observability and benches own the clock).
    pub wall_clock_exempt: Vec<String>,
    /// Crates whose float math is numeric-contract-bearing
    /// (`no-raw-float-accum` applies here).
    pub float_accum_crates: Vec<String>,
    /// Type names that, appearing in a fn signature, mark the fn as an
    /// order-parameterized kernel: its accumulation order is explicit
    /// state, so `no-raw-float-accum` does not fire inside it.
    pub order_param_types: Vec<String>,
    /// Identifiers that bless a float ordering as total (`no-float-key-sort`
    /// stands down when one appears in the comparator/statement).
    pub total_order_helpers: Vec<String>,
    /// Skip findings inside `#[cfg(test)] mod … { … }` regions.
    pub skip_test_code: bool,
    /// Report `detlint::allow` comments that suppressed nothing as
    /// `unused-suppression` findings. The taint pass runs the rules with a
    /// permissive scope purely to harvest sources and turns this off there.
    pub report_unused_suppressions: bool,
}

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

impl Config {
    /// The policy for this workspace, matching docs/DETLINT.md.
    pub fn workspace_default() -> Self {
        Config {
            deterministic_path: strs(&[
                "core", "comm", "tensor", "sched", "data", "esrng", "models", "optim", "faultsim",
            ]),
            wall_clock_exempt: strs(&["obs", "bench"]),
            float_accum_crates: strs(&["tensor", "comm", "models"]),
            order_param_types: strs(&["KernelProfile", "ExecCtx", "RingSpec"]),
            total_order_helpers: strs(&["total_cmp"]),
            skip_test_code: true,
            report_unused_suppressions: true,
        }
    }

    /// The scope the taint pass harvests sources with: the order/entropy
    /// rules active in every listed crate, so a source is visible wherever
    /// it lives — the barrier/sink policy, not rule scoping, decides what
    /// matters. Float accumulation stays scoped to the numeric-contract
    /// crates: a sequential `+=` in single-threaded bookkeeping code is
    /// order-explicit by construction, and seeding taint from it would
    /// drown the report in deterministic accumulators.
    pub fn permissive(crate_names: &[String]) -> Self {
        Config {
            deterministic_path: crate_names.to_vec(),
            wall_clock_exempt: Vec::new(),
            float_accum_crates: strs(&["tensor", "comm", "models"]),
            order_param_types: strs(&["KernelProfile", "ExecCtx", "RingSpec"]),
            total_order_helpers: strs(&["total_cmp"]),
            skip_test_code: true,
            report_unused_suppressions: false,
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`no-hash-iter`, …).
    pub rule: &'static str,
    /// Determinism level the rule protects (`D0`/`D1`/`D2`).
    pub level: &'static str,
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to use instead.
    pub message: String,
}

/// Lint one source text as if it lived in crate `crate_name` at path
/// `file`. This is the unit the fixture tests drive directly.
pub fn analyze_source(src: &str, crate_name: &str, file: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    rules::check_file(&lexed, crate_name, file, cfg)
}

/// One source file fed to analysis: the crate directory name it belongs
/// to, its workspace-relative path, and its text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Workspace-relative path, as reported in findings.
    pub file: String,
    /// File contents.
    pub src: String,
}

/// Read every `crates/*/src/**/*.rs` under `root`, in sorted order. IO
/// errors on the crates directory itself are returned; unreadable
/// individual files are skipped (generated artifacts, broken symlinks).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<std::path::PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for dir in crate_dirs {
        let crate_name = match dir.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files);
        files.sort();
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else { continue };
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile { crate_name: crate_name.clone(), file: rel, src });
        }
    }
    Ok(out)
}

/// Lint every `crates/*/src/**/*.rs` under `root`, in sorted order, and
/// return all findings sorted by `(file, line, rule)`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for sf in workspace_sources(root)? {
        findings.extend(analyze_source(&sf.src, &sf.crate_name, &sf.file, cfg));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Read every integration-test file — `crates/*/tests/**/*.rs` plus the
/// workspace-level `tests/*.rs` — in sorted order. Test files are not
/// linted; they are *evidence* for the oracle-pairing pass (a kernel and
/// its `_scalar` sibling must be exercised together by at least one test)
/// and part of the cache's inputs fingerprint.
pub fn workspace_test_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<std::path::PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    let push_dir = |dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>| {
        if !dir.is_dir() {
            return;
        }
        let mut files = Vec::new();
        collect_rs(dir, &mut files);
        files.sort();
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else { continue };
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile { crate_name: crate_name.to_string(), file: rel, src });
        }
    };
    for dir in crate_dirs {
        let crate_name = match dir.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        push_dir(&dir.join("tests"), &crate_name, &mut out);
    }
    push_dir(&root.join("tests"), "tests", &mut out);
    Ok(out)
}

/// One analyzed file inside a [`Model`]: lexed exactly once, with its
/// `#[cfg(test)]` regions precomputed, shared by every mode.
#[derive(Debug)]
pub struct ModelFile {
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Workspace-relative path.
    pub file: String,
    /// File contents (cache fingerprinting).
    pub src: String,
    /// The token stream + comments.
    pub lexed: lexer::Lexed,
    /// `#[cfg(test)] mod … { … }` line ranges.
    pub test_regions: Vec<(u32, u32)>,
}

/// The shared analysis model: every mode (leaf/taint/concur/accum) runs
/// off one lex + one item parse + one call graph, instead of each
/// rebuilding its own. Files are sorted at build time, so downstream
/// output never depends on the caller's visit order.
#[derive(Debug)]
pub struct Model {
    /// Analyzed source files, sorted by `(crate, file)`.
    pub files: Vec<ModelFile>,
    /// Integration-test files (oracle evidence), sorted by `(crate, file)`.
    pub test_files: Vec<SourceFile>,
    /// The cross-crate call graph over `files`.
    pub graph: callgraph::Graph,
}

/// Build the shared model: one lex, one item parse, one graph.
pub fn build_model(files: &[SourceFile], test_files: &[SourceFile]) -> Model {
    let mut sorted: Vec<SourceFile> = files.to_vec();
    sorted.sort_by(|a, b| (&a.crate_name, &a.file).cmp(&(&b.crate_name, &b.file)));
    let mut model_files = Vec::with_capacity(sorted.len());
    let mut file_items = Vec::with_capacity(sorted.len());
    for sf in sorted {
        let lexed = lexer::lex(&sf.src);
        let test_regions = rules::test_regions_pub(&lexed.toks);
        file_items.push(items::parse_lexed(&lexed, &sf.crate_name, &sf.file));
        model_files.push(ModelFile {
            crate_name: sf.crate_name,
            file: sf.file,
            src: sf.src,
            lexed,
            test_regions,
        });
    }
    let mut tests: Vec<SourceFile> = test_files.to_vec();
    tests.sort_by(|a, b| (&a.crate_name, &a.file).cmp(&(&b.crate_name, &b.file)));
    Model { files: model_files, test_files: tests, graph: callgraph::Graph::build(file_items) }
}

/// Every mode's report off one model build (`--all`).
#[derive(Debug)]
pub struct AllReport {
    /// Leaf findings, with the *unified* stale-allow accounting appended:
    /// in `--all` an allow is judged against every mode at once, so the
    /// per-mode reports carry empty `unused_suppressions` and the single
    /// ledger's verdict lands here.
    pub leaf: Vec<Finding>,
    /// Taint flows.
    pub taint: taint::TaintReport,
    /// Concurrency findings/warnings.
    pub concur: concur::ConcurReport,
    /// Accumulation findings + loop/oracle inventories.
    pub accum: accum::AccumReport,
}

impl AllReport {
    /// Does any mode carry a blocking finding?
    pub fn is_clean(&self) -> bool {
        self.leaf.is_empty()
            && self.taint.flows.is_empty()
            && self.concur.findings.is_empty()
            && self.concur.unused_suppressions.is_empty()
            && self.taint.unused_suppressions.is_empty()
            && self.accum.findings.is_empty()
            && self.accum.unused_suppressions.is_empty()
    }
}

/// Run all four modes over one shared model and one shared allow ledger.
pub fn analyze_model_all(
    model: &Model,
    cfg: &Config,
    tcfg: &taint::TaintConfig,
    ccfg: &concur::ConcurConfig,
    acfg: &accum::AccumConfig,
) -> AllReport {
    let mut allows = suppress::AllowSet::new();
    for mf in &model.files {
        let regions: &[(u32, u32)] = if cfg.skip_test_code { &mf.test_regions } else { &[] };
        allows.scan_file(&mf.lexed, &mf.file, regions);
    }
    let mut leaf = Vec::new();
    for mf in &model.files {
        leaf.extend(rules::check_file_with(&mf.lexed, &mf.crate_name, &mf.file, cfg, &mut allows));
    }
    let taint = taint::analyze_model(model, tcfg, &mut allows);
    let concur = concur::analyze_model(model, ccfg, &mut allows);
    let accum = accum::analyze_model(model, acfg, &mut allows);
    // One ledger, one verdict: a token consumed by *any* mode is used; an
    // allow is stale only when no mode consumed it.
    use suppress::Domain;
    leaf.extend(allows.stale(
        &[Domain::Leaf, Domain::Taint, Domain::Concur, Domain::Accum],
        true,
        suppress::phrase::ALL,
    ));
    leaf.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AllReport { leaf, taint, concur, accum }
}

/// [`analyze_model_all`] over the workspace at `root`.
pub fn analyze_workspace_all(
    root: &Path,
    cfg: &Config,
    tcfg: &taint::TaintConfig,
    ccfg: &concur::ConcurConfig,
    acfg: &accum::AccumConfig,
) -> std::io::Result<AllReport> {
    let files = workspace_sources(root)?;
    let test_files = workspace_test_sources(root)?;
    let model = build_model(&files, &test_files);
    Ok(analyze_model_all(&model, cfg, tcfg, ccfg, acfg))
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::workspace_default()
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(analyze_source(src, "sched", "x.rs", &cfg()).is_empty());
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "// detlint::allow(no-wall-clock): measured for logs only\n\
                   fn f() { let t = std::time::Instant::now(); }\n";
        assert!(analyze_source(src, "sched", "x.rs", &cfg()).is_empty());
        let unsuppressed = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(analyze_source(unsuppressed, "sched", "x.rs", &cfg()).len(), 1);
    }

    #[test]
    fn suppression_is_rule_specific() {
        // An allow for a *different* rule must not mask the violation — and
        // since it masks nothing, it is itself flagged as stale.
        let src = "// detlint::allow(no-hash-iter): wrong rule\n\
                   fn f() { let t = std::time::Instant::now(); }\n";
        let found = analyze_source(src, "sched", "x.rs", &cfg());
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unused-suppression", "no-wall-clock"]);
    }

    #[test]
    fn used_suppressions_are_not_reported_stale() {
        let src = "// detlint::allow(no-wall-clock): measured for logs only\n\
                   fn f() { let t = std::time::Instant::now(); }\n";
        assert!(analyze_source(src, "sched", "x.rs", &cfg()).is_empty());
    }

    #[test]
    fn float_key_sort_scopes_to_deterministic_path() {
        let src = "fn f(v: &mut Vec<(u32, f64)>) { v.sort_by(|a, b| \
                   a.1.partial_cmp(&b.1).unwrap()); }\n";
        let found = analyze_source(src, "sched", "x.rs", &cfg());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "no-float-key-sort");
        // Same code off the deterministic path is out of scope.
        assert!(analyze_source(src, "trace", "x.rs", &cfg()).is_empty());
        // total_cmp is the blessed total order.
        let fixed = "fn f(v: &mut Vec<(u32, f64)>) { v.sort_by(|a, b| a.1.total_cmp(&b.1)); }\n";
        assert!(analyze_source(fixed, "sched", "x.rs", &cfg()).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
        assert!(analyze_source(src, "sched", "x.rs", &cfg()).is_empty());
    }

    #[test]
    fn rules_scope_to_configured_crates() {
        let src = "fn f(m: std::collections::HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
        // `sched` is deterministic-path: hash iteration fires.
        assert!(!analyze_source(src, "sched", "x.rs", &cfg()).is_empty());
        // `trace` is not: same code is fine there.
        assert!(analyze_source(src, "trace", "x.rs", &cfg()).is_empty());
    }
}

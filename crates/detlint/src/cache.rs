//! Incremental analysis cache (`--cache-dir`, conventionally
//! `results/detlint_cache/`).
//!
//! Two granularities, both keyed by content, never by mtime:
//!
//! * **Whole-run reuse.** A run's *inputs fingerprint* is FNV-1a over the
//!   config fingerprint plus every `(path, content-hash)` pair — source
//!   *and* test files, sorted by path. When a later run's fingerprint
//!   matches, the cached output bytes (stdout, `--out` report, SARIF) are
//!   replayed wholesale together with the recorded exit status. This is
//!   the warm-path win CI times: byte-identical by construction, because
//!   the replay *is* the cold run's bytes.
//! * **Per-file leaf findings.** The leaf rules are file-local, so their
//!   findings are additionally cached per file under `files/`, keyed by
//!   FNV-1a over config fingerprint + path + content. After a single-file
//!   edit, a leaf run re-analyzes only that file.
//!
//! The cross-file modes (taint/concur/accum walk the call graph) cannot
//! reuse per-file artifacts: any edit can add an edge that reroutes a flow
//! through an unedited file. Their meta records the call-graph *edge hash*
//! as the invalidation witness — when it differs, the whole mode recomputes;
//! there is deliberately no partial path for them.
//!
//! Everything lives in plain JSON with hashes as fixed-width hex strings
//! (the vendored serde shims stay precision-exact that way), so `meta`
//! files are diffable when debugging a surprise miss. A corrupt or
//! version-skewed cache entry is a miss, never an error.

use crate::SourceFile;
use serde::Value;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Bump on any change to the on-disk layout or artifact semantics.
pub const CACHE_VERSION: u32 = 1;

/// FNV-1a 64-bit, same constants as `core::store::payload_checksum` (the
/// workspace's one content-hash idiom; dependency-free and deterministic).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// The whole-run inputs fingerprint: config fingerprint + every
/// `(path, content-hash)` pair, source and test files alike, sorted by
/// path so walk order never leaks into the key.
pub fn inputs_fingerprint(files: &[SourceFile], test_files: &[SourceFile], config_fp: &str) -> u64 {
    let mut pairs: Vec<(&str, u64)> = files
        .iter()
        .chain(test_files.iter())
        .map(|f| (f.file.as_str(), fnv1a(f.src.as_bytes())))
        .collect();
    pairs.sort_unstable();
    let mut h = fnv1a(config_fp.as_bytes());
    for (path, ch) in pairs {
        h = fnv1a_extend(h, path.as_bytes());
        h = fnv1a_extend(h, &ch.to_le_bytes());
    }
    h
}

/// The call-graph edge hash: FNV-1a over every `caller -> callee-name`
/// pair, sorted. Recorded in run meta as the invalidation witness for the
/// cross-file modes.
pub fn edge_fingerprint(graph: &crate::callgraph::Graph) -> u64 {
    let mut edges: Vec<String> = graph
        .edges
        .iter()
        .flat_map(|es| es.iter())
        .map(|e| {
            format!("{} -> {}", graph.fns[e.caller].qualified(), graph.fns[e.callee].qualified())
        })
        .collect();
    edges.sort_unstable();
    let mut h = fnv1a(&[]);
    for e in &edges {
        h = fnv1a_extend(h, e.as_bytes());
        h = fnv1a_extend(h, b"\n");
    }
    h
}

/// One replayable cached run.
pub struct CachedRun {
    /// Recorded process exit status (0 = clean).
    pub exit: u8,
    /// `(name, bytes)` output artifacts in store order.
    pub artifacts: Vec<(String, Vec<u8>)>,
}

/// Handle on one cache directory.
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Cache> {
        fs::create_dir_all(dir.join("files"))?;
        Ok(Cache { dir: dir.to_path_buf() })
    }

    fn meta_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.meta.json"))
    }

    fn artifact_path(&self, key: &str, name: &str) -> PathBuf {
        // Artifact names are fixed short tokens (`stdout`, `report`,
        // `sarif`), never user paths.
        self.dir.join(format!("{key}.{name}"))
    }

    /// Load a whole-run entry if its recorded fingerprint matches
    /// `inputs`. Any parse failure or missing artifact is a miss.
    pub fn load_run(&self, key: &str, inputs: u64) -> Option<CachedRun> {
        let meta = fs::read_to_string(self.meta_path(key)).ok()?;
        let v: Value = serde_json::from_str(&meta).ok()?;
        let field_str = |name: &str| match v.get_field(name) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        if field_str("version")? != CACHE_VERSION.to_string() || field_str("inputs")? != hex(inputs)
        {
            return None;
        }
        let exit: u8 = field_str("exit")?.parse().ok()?;
        let Some(Value::Seq(names)) = v.get_field("artifacts") else { return None };
        let mut artifacts = Vec::new();
        for n in names {
            let Value::Str(name) = n else { return None };
            let bytes = fs::read(self.artifact_path(key, name)).ok()?;
            artifacts.push((name.clone(), bytes));
        }
        Some(CachedRun { exit, artifacts })
    }

    /// Store a whole-run entry: artifacts first, meta last, so a torn
    /// write can only produce a miss (meta names an absent artifact),
    /// never a stale hit.
    pub fn store_run(
        &self,
        key: &str,
        inputs: u64,
        edges: u64,
        exit: u8,
        artifacts: &[(String, Vec<u8>)],
    ) -> io::Result<()> {
        for (name, bytes) in artifacts {
            fs::write(self.artifact_path(key, name), bytes)?;
        }
        let meta = Value::Map(vec![
            ("version".to_string(), Value::Str(CACHE_VERSION.to_string())),
            ("inputs".to_string(), Value::Str(hex(inputs))),
            ("edges".to_string(), Value::Str(hex(edges))),
            ("exit".to_string(), Value::Str(exit.to_string())),
            (
                "artifacts".to_string(),
                Value::Seq(artifacts.iter().map(|(n, _)| Value::Str(n.clone())).collect()),
            ),
        ]);
        fs::write(
            self.meta_path(key),
            serde_json::to_string_pretty(&meta).expect("value tree serializes"),
        )
    }

    fn file_key(config_fp: &str, path: &str, src: &str) -> u64 {
        let mut h = fnv1a(config_fp.as_bytes());
        h = fnv1a_extend(h, path.as_bytes());
        h = fnv1a_extend(h, src.as_bytes());
        h
    }

    /// Cached leaf findings for one file's exact content + config, if any.
    pub fn load_file_findings(
        &self,
        config_fp: &str,
        path: &str,
        src: &str,
    ) -> Option<Vec<crate::Finding>> {
        let key = hex(Self::file_key(config_fp, path, src));
        let text = fs::read_to_string(self.dir.join("files").join(format!("{key}.json"))).ok()?;
        let v: Value = serde_json::from_str(&text).ok()?;
        let Value::Seq(items) = v else { return None };
        let mut out = Vec::new();
        for item in &items {
            let get = |name: &str| match item.get_field(name) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            };
            // `rule`/`level` round-trip through the catalog so the
            // in-memory `&'static str` invariant holds; an unknown rule
            // (catalog changed under us) voids the whole entry.
            let rule = crate::rules::rule(&get("rule")?)?;
            out.push(crate::Finding {
                rule: rule.name,
                level: rule.level,
                file: get("file")?,
                line: get("line")?.parse().ok()?,
                message: get("message")?,
            });
        }
        Some(out)
    }

    /// Store one file's leaf findings.
    pub fn store_file_findings(
        &self,
        config_fp: &str,
        path: &str,
        src: &str,
        findings: &[crate::Finding],
    ) -> io::Result<()> {
        let key = hex(Self::file_key(config_fp, path, src));
        let items: Vec<Value> = findings
            .iter()
            .map(|f| {
                Value::Map(vec![
                    ("rule".to_string(), Value::Str(f.rule.to_string())),
                    ("level".to_string(), Value::Str(f.level.to_string())),
                    ("file".to_string(), Value::Str(f.file.clone())),
                    ("line".to_string(), Value::Str(f.line.to_string())),
                    ("message".to_string(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        fs::write(
            self.dir.join("files").join(format!("{key}.json")),
            serde_json::to_string_pretty(&Value::Seq(items)).expect("value tree serializes"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("detlint-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sf(file: &str, src: &str) -> SourceFile {
        SourceFile { crate_name: "x".to_string(), file: file.to_string(), src: src.to_string() }
    }

    #[test]
    fn fnv_matches_core_store_constants() {
        // Same test vector family as core::store's checksum test.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn inputs_fingerprint_is_order_independent_but_content_sensitive() {
        let a = sf("a.rs", "fn a() {}");
        let b = sf("b.rs", "fn b() {}");
        let fwd = inputs_fingerprint(&[a.clone(), b.clone()], &[], "cfg");
        let rev = inputs_fingerprint(&[b.clone(), a.clone()], &[], "cfg");
        assert_eq!(fwd, rev);
        let edited =
            inputs_fingerprint(&[a.clone(), sf("b.rs", "fn b() { let _x = 1; }")], &[], "cfg");
        assert_ne!(fwd, edited);
        assert_ne!(fwd, inputs_fingerprint(&[a.clone(), b.clone()], &[], "cfg2"));
        // Test files are part of the key (oracle evidence feeds accum).
        assert_ne!(fwd, inputs_fingerprint(&[a, b], &[sf("t.rs", "#[test] fn t() {}")], "cfg"));
    }

    #[test]
    fn run_round_trip_replays_bytes_and_exit() {
        let dir = tmpdir("run");
        let cache = Cache::open(&dir).unwrap();
        let artifacts = vec![
            ("stdout".to_string(), b"hello\n".to_vec()),
            ("sarif".to_string(), b"{}".to_vec()),
        ];
        cache.store_run("all", 42, 7, 1, &artifacts).unwrap();
        let hit = cache.load_run("all", 42).expect("hit on same inputs");
        assert_eq!(hit.exit, 1);
        assert_eq!(hit.artifacts, artifacts);
        assert!(cache.load_run("all", 43).is_none(), "different inputs miss");
        assert!(cache.load_run("leaf", 42).is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_findings_round_trip_preserves_catalog_identity() {
        let dir = tmpdir("file");
        let cache = Cache::open(&dir).unwrap();
        let findings = vec![crate::Finding {
            rule: "no-wall-clock",
            level: "D0",
            file: "crates/x/src/lib.rs".to_string(),
            line: 9,
            message: "m".to_string(),
        }];
        cache.store_file_findings("cfg", "crates/x/src/lib.rs", "src", &findings).unwrap();
        let got = cache.load_file_findings("cfg", "crates/x/src/lib.rs", "src").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "no-wall-clock");
        assert_eq!(got[0].level, "D0");
        assert_eq!(got[0].line, 9);
        assert!(cache.load_file_findings("cfg", "crates/x/src/lib.rs", "src2").is_none());
        assert!(cache.load_file_findings("cfg2", "crates/x/src/lib.rs", "src").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! `cargo run -p detlint [-- --taint | --concurrency | --accum | --all]
//! [--json] [--quiet] [--out PATH] [--out-dir DIR] [--sarif PATH]
//! [--cache-dir DIR] [--root PATH]`
//!
//! Lints every `crates/*/src/**/*.rs` in the workspace against the
//! determinism rule catalog and exits non-zero on findings, so it can gate
//! CI (scripts/ci.sh) exactly like clippy does. `--out` writes the JSON
//! report to a file (the CI artifact) independently of what is printed.
//! `--taint` runs the interprocedural source→sink flow analysis instead of
//! the leaf rules; `--concurrency` runs the channel-lifecycle /
//! blocking-cycle / barrier-conformance passes; `--accum` runs the
//! float-accumulation dataflow + oracle-pairing passes; `--all` runs all
//! four off one shared model with unified stale-suppression accounting.
//!
//! `--sarif PATH` additionally writes a SARIF 2.1.0 document (one run per
//! executed mode). `--cache-dir DIR` enables the incremental cache: when
//! no source or test file changed, the previous run's bytes and exit
//! status are replayed without re-analyzing anything.

use detlint::{accum, cache, concur, report, sarif, taint, Config};
use serde::Value;
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "detlint: static determinism lint for the EasyScale workspace

USAGE: detlint [--taint | --concurrency | --accum | --all] [--json] [--quiet]
               [--out PATH] [--out-dir DIR] [--sarif PATH] [--cache-dir DIR]
               [--root PATH]

--taint       run the interprocedural taint analysis (source
               -> sink flows over the workspace call graph)
--concurrency run the concurrency passes: channel lifecycle,
               role-level blocking cycles, lock-order
               inversions, and barrier conformance
--accum       run the float-accumulation dataflow pass (loop
               classification + reassociation findings) and the
               kernel/_scalar oracle-pairing conformance check
--all         run every mode off one shared workspace model,
               with stale suppressions accounted across modes
--json        emit the JSON report instead of human text
--quiet       print nothing (pair with --out for CI gating)
--out PATH    also write the JSON report to PATH
--out-dir DIR (--all) write per-mode JSON reports plus
               detlint_modes.json into DIR
--sarif PATH  also write a SARIF 2.1.0 document (one run per
               executed mode)
--cache-dir DIR reuse cached results when no input changed; the
               replayed bytes are the previous run's, verbatim
--root PATH   workspace root (default: the enclosing workspace)

Exits 1 when findings exist. Suppress a site with
`// detlint::allow(rule): reason` on the line or the line above;
taint flows use `detlint::allow(taint)` / `taint-<kind>`,
concurrency findings use their kind token (e.g.
`detlint::allow(barrier-unverified): reason`), accumulation
findings use `float-reassoc` / `oracle-unpaired`.";

/// Artifact names inside the cache/emission set. Fixed short tokens — the
/// cache stores them under `<mode>.<name>`.
const ART_HUMAN: &str = "human";
const ART_REPORT: &str = "report.json";
const ART_SARIF: &str = "sarif";

/// `(artifact name, file name under --out-dir)` for the `--all` mode.
const ALL_DIR_ARTIFACTS: &[(&str, &str)] = &[
    ("leaf.json", "detlint_report.json"),
    ("taint.json", "taint_report.json"),
    ("concur.json", "concur_report.json"),
    ("accum.json", "accum_report.json"),
    ("modes.json", "detlint_modes.json"),
];

struct Opts {
    json: bool,
    quiet: bool,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    sarif_path: Option<PathBuf>,
}

/// Write/print one run's artifact set. Both the cold path and the cache
/// replay go through here with the same bytes, so a warm run's outputs are
/// bitwise-identical to the cold run that seeded it.
fn emit(artifacts: &[(String, Vec<u8>)], exit: u8, opts: &Opts) -> ExitCode {
    let get = |name: &str| {
        artifacts.iter().find(|(n, _)| n == name).map(|(_, b)| b.as_slice()).unwrap_or(b"")
    };
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("detlint: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (art, file) in ALL_DIR_ARTIFACTS {
            if artifacts.iter().any(|(n, _)| n == art) {
                if let Err(e) = std::fs::write(dir.join(file), get(art)) {
                    eprintln!("detlint: cannot write {}: {e}", dir.join(file).display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, get(ART_REPORT)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.sarif_path {
        if let Err(e) = std::fs::write(path, get(ART_SARIF)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if !opts.quiet {
        let name = if opts.json { ART_REPORT } else { ART_HUMAN };
        print!("{}", String::from_utf8_lossy(get(name)));
        if opts.json {
            println!();
        }
    }
    ExitCode::from(exit)
}

/// The `--all` per-mode gate summary (`results/detlint_modes.json` in CI):
/// per-stage granularity survives the collapse into one invocation.
fn modes_json(rep: &detlint::AllReport) -> String {
    let entry = |mode: &str, findings: usize| {
        Value::Map(vec![
            ("mode".to_string(), Value::Str(mode.to_string())),
            (
                "status".to_string(),
                Value::Str(if findings == 0 { "clean" } else { "dirty" }.to_string()),
            ),
            ("findings".to_string(), Value::U64(findings as u64)),
        ])
    };
    let taint_n = rep.taint.flows.len() + rep.taint.unused_suppressions.len();
    let concur_n = rep.concur.findings.len() + rep.concur.unused_suppressions.len();
    let accum_n = rep.accum.findings.len() + rep.accum.unused_suppressions.len();
    let root = Value::Map(vec![
        (
            "modes".to_string(),
            Value::Seq(vec![
                entry("leaf", rep.leaf.len()),
                entry("taint", taint_n),
                entry("concur", concur_n),
                entry("accum", accum_n),
            ]),
        ),
        (
            "status".to_string(),
            Value::Str(if rep.is_clean() { "clean" } else { "dirty" }.to_string()),
        ),
    ]);
    serde_json::to_string_pretty(&root).expect("value tree serializes")
}

fn art(name: &str, text: String) -> (String, Vec<u8>) {
    (name.to_string(), text.into_bytes())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    let path_arg = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(PathBuf::from)
    };
    let mode = if flag("--all") {
        "all"
    } else if flag("--accum") {
        "accum"
    } else if flag("--concurrency") {
        "concur"
    } else if flag("--taint") {
        "taint"
    } else {
        "leaf"
    };
    let opts = Opts {
        json: flag("--json"),
        quiet: flag("--quiet"),
        out: path_arg("--out"),
        out_dir: path_arg("--out-dir"),
        sarif_path: path_arg("--sarif"),
    };
    let cache_dir = path_arg("--cache-dir");
    let root = path_arg("--root")
        .or_else(|| {
            // Under `cargo run -p detlint` the manifest dir is
            // crates/detlint; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    // Read the workspace once: the same file set feeds the analysis and
    // the cache fingerprint, so a hit can never replay against different
    // inputs than the analysis would see.
    let files = match detlint::workspace_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let test_files = match detlint::workspace_test_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let config_fp = format!("detlint-v{};mode={mode}", cache::CACHE_VERSION);
    let inputs = cache::inputs_fingerprint(&files, &test_files, &config_fp);
    let cache_handle = cache_dir.as_ref().and_then(|d| match cache::Cache::open(d) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("detlint: cannot open cache {}: {e} (running uncached)", d.display());
            None
        }
    });
    if let Some(c) = &cache_handle {
        if let Some(hit) = c.load_run(mode, inputs) {
            return emit(&hit.artifacts, hit.exit, &opts);
        }
    }

    // Cold path: run the mode, assemble the artifact set, store, emit.
    let mut edges: u64 = 0;
    let mut artifacts: Vec<(String, Vec<u8>)> = Vec::new();
    let exit: u8;
    match mode {
        "all" => {
            let model = detlint::build_model(&files, &test_files);
            edges = cache::edge_fingerprint(&model.graph);
            let rep = detlint::analyze_model_all(
                &model,
                &Config::workspace_default(),
                &taint::TaintConfig::workspace_default(),
                &concur::ConcurConfig::workspace_default(),
                &accum::AccumConfig::workspace_default(),
            );
            exit = u8::from(!rep.is_clean());
            let modes = modes_json(&rep);
            let human = format!(
                "{}{}{}{}",
                report::human(&rep.leaf),
                report::taint_human(&rep.taint),
                report::concur_human(&rep.concur),
                report::accum_human(&rep.accum)
            );
            let doc = sarif::document(vec![
                sarif::leaf_run(&rep.leaf),
                sarif::taint_run(&rep.taint),
                sarif::concur_run(&rep.concur),
                sarif::accum_run(&rep.accum),
            ]);
            artifacts.push(art("leaf.json", report::json(&rep.leaf)));
            artifacts.push(art("taint.json", report::taint_json(&rep.taint)));
            artifacts.push(art("concur.json", report::concur_json(&rep.concur)));
            artifacts.push(art("accum.json", report::accum_json(&rep.accum)));
            artifacts.push(art("modes.json", modes.clone()));
            artifacts.push(art(ART_REPORT, modes));
            artifacts.push(art(ART_HUMAN, human));
            artifacts.push(art(ART_SARIF, doc));
        }
        "accum" => {
            let model = detlint::build_model(&files, &test_files);
            edges = cache::edge_fingerprint(&model.graph);
            let rep =
                accum::analyze_model_standalone(&model, &accum::AccumConfig::workspace_default());
            exit = u8::from(!(rep.findings.is_empty() && rep.unused_suppressions.is_empty()));
            artifacts.push(art(ART_REPORT, report::accum_json(&rep)));
            artifacts.push(art(ART_HUMAN, report::accum_human(&rep)));
            artifacts.push(art(ART_SARIF, sarif::document(vec![sarif::accum_run(&rep)])));
        }
        "concur" => {
            let model = detlint::build_model(&files, &[]);
            edges = cache::edge_fingerprint(&model.graph);
            let rep = concur::analyze_model_standalone(
                &model,
                &concur::ConcurConfig::workspace_default(),
            );
            exit = u8::from(!(rep.findings.is_empty() && rep.unused_suppressions.is_empty()));
            artifacts.push(art(ART_REPORT, report::concur_json(&rep)));
            artifacts.push(art(ART_HUMAN, report::concur_human(&rep)));
            artifacts.push(art(ART_SARIF, sarif::document(vec![sarif::concur_run(&rep)])));
        }
        "taint" => {
            let model = detlint::build_model(&files, &[]);
            edges = cache::edge_fingerprint(&model.graph);
            let rep =
                taint::analyze_model_standalone(&model, &taint::TaintConfig::workspace_default());
            exit = u8::from(!(rep.flows.is_empty() && rep.unused_suppressions.is_empty()));
            artifacts.push(art(ART_REPORT, report::taint_json(&rep)));
            artifacts.push(art(ART_HUMAN, report::taint_human(&rep)));
            artifacts.push(art(ART_SARIF, sarif::document(vec![sarif::taint_run(&rep)])));
        }
        _ => {
            // Leaf mode additionally uses the per-file cache: leaf findings
            // are file-local, so unchanged files skip re-analysis even when
            // the whole-run fingerprint misses.
            let cfg = Config::workspace_default();
            let mut findings = Vec::new();
            for sf in &files {
                let cached = cache_handle
                    .as_ref()
                    .and_then(|c| c.load_file_findings(&config_fp, &sf.file, &sf.src));
                let file_findings = match cached {
                    Some(f) => f,
                    None => {
                        let f = detlint::analyze_source(&sf.src, &sf.crate_name, &sf.file, &cfg);
                        if let Some(c) = &cache_handle {
                            let _ = c.store_file_findings(&config_fp, &sf.file, &sf.src, &f);
                        }
                        f
                    }
                };
                findings.extend(file_findings);
            }
            findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
            exit = u8::from(!findings.is_empty());
            artifacts.push(art(ART_REPORT, report::json(&findings)));
            artifacts.push(art(ART_HUMAN, report::human(&findings)));
            artifacts.push(art(ART_SARIF, sarif::document(vec![sarif::leaf_run(&findings)])));
        }
    }

    if let Some(c) = &cache_handle {
        if let Err(e) = c.store_run(mode, inputs, edges, exit, &artifacts) {
            eprintln!("detlint: cannot write cache entry: {e}");
        }
    }
    emit(&artifacts, exit, &opts)
}

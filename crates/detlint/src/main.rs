//! `cargo run -p detlint [-- --taint | --concurrency] [--json] [--quiet]
//! [--out PATH] [--root PATH]`
//!
//! Lints every `crates/*/src/**/*.rs` in the workspace against the
//! determinism rule catalog and exits non-zero on findings, so it can gate
//! CI (scripts/ci.sh) exactly like clippy does. `--out` writes the JSON
//! report to a file (the CI artifact) independently of what is printed.
//! `--taint` runs the interprocedural source→sink flow analysis instead of
//! the leaf rules; `--concurrency` runs the channel-lifecycle /
//! blocking-cycle / barrier-conformance passes.

use detlint::{analyze_workspace, concur, report, taint, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "detlint: static determinism lint for the EasyScale workspace\n\n\
             USAGE: detlint [--taint | --concurrency] [--json] [--quiet] [--out PATH] [--root PATH]\n\n\
             --taint       run the interprocedural taint analysis (source\n\
             \x20              -> sink flows over the workspace call graph)\n\
             --concurrency run the concurrency passes: channel lifecycle,\n\
             \x20              role-level blocking cycles, lock-order\n\
             \x20              inversions, and barrier conformance\n\
             --json        emit the JSON report instead of human text\n\
             --quiet       print nothing (pair with --out for CI gating)\n\
             --out PATH    also write the JSON report to PATH\n\
             --root PATH   workspace root (default: the enclosing workspace)\n\n\
             Exits 1 when findings exist. Suppress a site with\n\
             `// detlint::allow(rule): reason` on the line or the line above;\n\
             taint flows use `detlint::allow(taint)` / `taint-<kind>`,\n\
             concurrency findings use their kind token (e.g.\n\
             `detlint::allow(barrier-unverified): reason`)."
        );
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    let quiet = args.iter().any(|a| a == "--quiet");
    let taint_mode = args.iter().any(|a| a == "--taint");
    let concur_mode = args.iter().any(|a| a == "--concurrency");
    let path_arg = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(PathBuf::from)
    };
    let out = path_arg("--out");
    let root = path_arg("--root")
        .or_else(|| {
            // Under `cargo run -p detlint` the manifest dir is
            // crates/detlint; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    if concur_mode {
        let ccfg = concur::ConcurConfig::workspace_default();
        let rep = match concur::analyze_workspace_concur(&root, &ccfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("detlint: cannot walk {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, report::concur_json(&rep)) {
                eprintln!("detlint: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if !quiet {
            if json {
                println!("{}", report::concur_json(&rep));
            } else {
                print!("{}", report::concur_human(&rep));
            }
        }
        return if rep.findings.is_empty() && rep.unused_suppressions.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if taint_mode {
        let tcfg = taint::TaintConfig::workspace_default();
        let rep = match taint::analyze_workspace_taint(&root, &tcfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("detlint: cannot walk {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, report::taint_json(&rep)) {
                eprintln!("detlint: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if !quiet {
            if json {
                println!("{}", report::taint_json(&rep));
            } else {
                print!("{}", report::taint_human(&rep));
            }
        }
        return if rep.flows.is_empty() && rep.unused_suppressions.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let cfg = Config::workspace_default();
    let findings = match analyze_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report::json(&findings)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if !quiet {
        if json {
            println!("{}", report::json(&findings));
        } else {
            print!("{}", report::human(&findings));
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `cargo run -p detlint [-- --json] [--root PATH]`
//!
//! Lints every `crates/*/src/**/*.rs` in the workspace against the
//! determinism rule catalog and exits non-zero on findings, so it can gate
//! CI (scripts/check.sh) exactly like clippy does.

use detlint::{analyze_workspace, report, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "detlint: static determinism lint for the EasyScale workspace\n\n\
             USAGE: detlint [--json] [--root PATH]\n\n\
             --json        emit the JSON report instead of human text\n\
             --root PATH   workspace root (default: the enclosing workspace)\n\n\
             Exits 1 when findings exist. Suppress a site with\n\
             `// detlint::allow(rule): reason` on the line or the line above."
        );
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .or_else(|| {
            // Under `cargo run -p detlint` the manifest dir is
            // crates/detlint; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let cfg = Config::workspace_default();
    let findings = match analyze_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report::json(&findings));
    } else {
        print!("{}", report::human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

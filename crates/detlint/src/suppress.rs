//! One grammar, one ledger: every detlint mode reads
//! `// detlint::allow(token[, token…]): reason` comments through this
//! module. Before it existed, the leaf rules, the taint pass, and the
//! concurrency pass each re-scanned comments with slightly different
//! parsers and kept *separate* usage books — an allow consumed by one mode
//! could still be reported stale by another. Now a single [`AllowSet`] is
//! scanned once per file, consumption is recorded in place, and staleness
//! is computed per domain (single-mode runs) or across all domains at once
//! (`--all` runs), so a token is only ever judged by the pass that owns it.

use crate::lexer::Lexed;
use crate::Finding;

/// Which pass owns a suppression token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// A leaf-rule name from [`crate::rules::CATALOG`] (`no-wall-clock`, …).
    Leaf,
    /// `taint` or `taint-<kind>`.
    Taint,
    /// A concurrency kind from [`crate::concur::ALLOW_KINDS`].
    Concur,
    /// An accumulation kind from [`crate::accum::ALLOW_KINDS`].
    Accum,
    /// A token no pass recognizes (typo'd rule, future kind).
    Unknown,
}

/// Classify one suppression token by the pass that owns it.
pub fn domain_of(token: &str) -> Domain {
    if token == "taint" || token.starts_with("taint-") {
        return Domain::Taint;
    }
    if crate::concur::ALLOW_KINDS.contains(&token) {
        return Domain::Concur;
    }
    if crate::accum::ALLOW_KINDS.contains(&token) {
        return Domain::Accum;
    }
    if crate::rules::CATALOG.iter().any(|r| r.name == token) {
        return Domain::Leaf;
    }
    Domain::Unknown
}

/// Extract `(line, [token…])` suppressions from line comments. Only a
/// comment that *is* a suppression counts — `detlint::allow(` must open the
/// comment (standalone or trailing); prose that merely mentions the syntax
/// (doc comments, this very sentence) is ignored.
pub fn parse(lexed: &Lexed) -> Vec<(u32, Vec<String>)> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        let trimmed = text.trim_start();
        if !trimmed.starts_with("detlint::allow(") {
            continue;
        }
        let rest = &trimmed["detlint::allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !rules.is_empty() {
            out.push((*line, rules));
        }
    }
    out
}

/// One suppression comment with usage accounting.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative file the comment lives in.
    pub file: String,
    /// 1-based comment line. Covers findings on this line or the next.
    pub line: u32,
    /// Every token listed, in source order (all domains mixed).
    pub rules: Vec<String>,
    /// Inside a skipped `#[cfg(test)] mod … { … }` region (inert).
    pub in_test: bool,
    /// Did any pass consume any of this allow's tokens?
    pub used: bool,
}

impl Allow {
    /// Does this allow sit on a finding at `line` (same line or directly
    /// above)?
    pub fn covers_line(&self, line: u32) -> bool {
        self.line == line || self.line + 1 == line
    }
}

/// The shared ledger of every allow seen by a run, across all files.
#[derive(Debug, Default)]
pub struct AllowSet {
    /// All allows, in file-scan order.
    pub allows: Vec<Allow>,
}

impl AllowSet {
    /// An empty set; populate with [`AllowSet::scan_file`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Scan one lexed file's comments into the set. `test_regions` marks
    /// allows that sit inside skipped test modules (pass an empty slice to
    /// treat everything as live code).
    pub fn scan_file(&mut self, lexed: &Lexed, file: &str, test_regions: &[(u32, u32)]) {
        for (line, rules) in parse(lexed) {
            self.allows.push(Allow {
                file: file.to_string(),
                line,
                in_test: test_regions.iter().any(|&(a, b)| (a..=b).contains(&line)),
                rules,
                used: false,
            });
        }
    }

    /// Consume any allow covering `(file, line)` that lists `token`
    /// verbatim. Every matching allow is marked used; returns whether any
    /// matched.
    pub fn consume(&mut self, file: &str, line: u32, token: &str) -> bool {
        let mut hit = false;
        for a in self.allows.iter_mut() {
            if a.file == file && a.covers_line(line) && a.rules.iter().any(|r| r == token) {
                a.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Taint-domain consumption: `taint` blocks every kind, `taint-<kind>`
    /// blocks exactly one.
    pub fn consume_taint(&mut self, file: &str, line: u32, kind: &str) -> bool {
        let mut hit = false;
        for a in self.allows.iter_mut() {
            if a.file == file
                && a.covers_line(line)
                && a.rules.iter().any(|r| r == "taint" || r == &format!("taint-{kind}"))
            {
                a.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Stale-allow accounting for the pass(es) that ran. An allow is stale
    /// when nothing consumed it, it is live code, and *every* token it
    /// lists belongs to `domains` (plus [`Domain::Unknown`] when
    /// `unknown_ok` — the leaf pass owns typo'd tokens so they surface
    /// somewhere). Mixed allows whose other tokens belong to passes that
    /// did not run are skipped: their staleness cannot be judged here.
    /// `phrase` is the per-mode message tail after the backticked allow.
    pub fn stale(&self, domains: &[Domain], unknown_ok: bool, phrase: &str) -> Vec<Finding> {
        let in_scope = |t: &str| {
            let d = domain_of(t);
            domains.contains(&d) || (unknown_ok && d == Domain::Unknown)
        };
        self.allows
            .iter()
            .filter(|a| !a.used && !a.in_test)
            .filter(|a| (unknown_ok || !a.rules.is_empty()) && a.rules.iter().all(|r| in_scope(r)))
            .map(|a| Finding {
                rule: "unused-suppression",
                level: "meta",
                file: a.file.clone(),
                line: a.line,
                message: format!("`detlint::allow({})` {}", a.rules.join(", "), phrase),
            })
            .collect()
    }
}

/// The exact per-mode stale-message tails, kept here so every caller (and
/// the report fixtures) agree byte-for-byte.
pub mod phrase {
    /// Leaf rules.
    pub const LEAF: &str = "matches no finding on this or the next line; delete the stale \
                            suppression or fix its rule list";
    /// Taint pass.
    pub const TAINT: &str = "blocked no taint propagation; delete the stale suppression or \
                             fix its kind list";
    /// Concurrency pass.
    pub const CONCUR: &str = "blocked no concurrency finding; delete the stale suppression \
                              or fix its kind list";
    /// Accumulation pass.
    pub const ACCUM: &str = "blocked no accumulation finding; delete the stale suppression \
                             or fix its kind list";
    /// Unified `--all` accounting.
    pub const ALL: &str = "matched no finding in any mode; delete the stale suppression or \
                           fix its rule list";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn domains_classify_every_token_family() {
        assert_eq!(domain_of("no-wall-clock"), Domain::Leaf);
        assert_eq!(domain_of("taint"), Domain::Taint);
        assert_eq!(domain_of("taint-hash-iter"), Domain::Taint);
        assert_eq!(domain_of("raw-channel"), Domain::Concur);
        assert_eq!(domain_of("float-reassoc"), Domain::Accum);
        assert_eq!(domain_of("oracle-unpaired"), Domain::Accum);
        assert_eq!(domain_of("no-such-rule"), Domain::Unknown);
    }

    #[test]
    fn consumption_in_one_domain_silences_cross_domain_staleness() {
        // The quirk this module fixes: a mixed allow consumed by the leaf
        // pass must not be stale in any other pass, and the unified
        // accounting sees one ledger.
        let lexed = lex("// detlint::allow(no-wall-clock, float-reassoc): both audited\nfn f(){}");
        let mut set = AllowSet::new();
        set.scan_file(&lexed, "x.rs", &[]);
        assert!(set.consume("x.rs", 2, "no-wall-clock"));
        assert!(set.stale(&[Domain::Leaf], true, phrase::LEAF).is_empty());
        assert!(set
            .stale(&[Domain::Leaf, Domain::Taint, Domain::Concur, Domain::Accum], true, phrase::ALL)
            .is_empty());
    }

    #[test]
    fn mixed_unused_allows_are_only_judged_when_every_owner_ran() {
        let lexed = lex("// detlint::allow(no-wall-clock, taint): nothing here\nfn f(){}");
        let mut set = AllowSet::new();
        set.scan_file(&lexed, "x.rs", &[]);
        // Single-mode runs cannot judge the other token's usage…
        assert!(set.stale(&[Domain::Leaf], true, phrase::LEAF).is_empty());
        assert!(set.stale(&[Domain::Taint], false, phrase::TAINT).is_empty());
        // …the unified run can, and reports exactly one stale finding.
        let all = set.stale(
            &[Domain::Leaf, Domain::Taint, Domain::Concur, Domain::Accum],
            true,
            phrase::ALL,
        );
        assert_eq!(all.len(), 1);
        assert!(all[0].message.contains("no-wall-clock, taint"));
    }

    #[test]
    fn taint_consumption_accepts_kind_scoped_tokens() {
        let lexed = lex("// detlint::allow(taint-wall-clock): audited\nfn f(){}");
        let mut set = AllowSet::new();
        set.scan_file(&lexed, "x.rs", &[]);
        assert!(!set.consume_taint("x.rs", 2, "hash-iter"));
        assert!(set.consume_taint("x.rs", 2, "wall-clock"));
        assert!(set.stale(&[Domain::Taint], false, phrase::TAINT).is_empty());
    }

    #[test]
    fn test_region_allows_are_inert() {
        let lexed = lex(
            "#[cfg(test)]\nmod tests {\n    // detlint::allow(no-wall-clock): x\n    fn f(){}\n}\n",
        );
        let mut set = AllowSet::new();
        let regions = crate::rules::test_regions_pub(&lexed.toks);
        set.scan_file(&lexed, "x.rs", &regions);
        assert!(set.stale(&[Domain::Leaf], true, phrase::LEAF).is_empty());
    }
}

//! A lightweight item model over the token stream: fn definitions, call
//! expressions, `use` imports, and impl blocks — just enough structure for
//! the cross-crate call graph ([`crate::callgraph`]) without a real parser.
//!
//! The model is deliberately syntactic. A fn is identified by
//! `(crate, self type, name)`; calls are classified as method calls
//! (`recv.name(…)`), path calls (`a::b::name(…)`), or bare calls
//! (`name(…)`), and resolution happens later against the whole-workspace
//! index. Closures contribute their tokens to the enclosing fn; nested fns
//! are items of their own.

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One fn definition with everything taint propagation needs.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Directory name under `crates/` the fn lives in.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The fn's name.
    pub name: String,
    /// Enclosing `impl` type (last path segment), if any.
    pub self_ty: Option<String>,
    /// Does the first parameter name `self` (method vs associated/free fn)?
    pub has_self: bool,
    /// First and last line of the body (brace to matching brace).
    pub body_lines: (u32, u32),
    /// Every call expression inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Is the fn inside a `#[cfg(test)] mod … { … }` region?
    pub in_test: bool,
}

impl FnDef {
    /// `crate::Type::name` / `crate::name` — the display identity used in
    /// reports and witness paths.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}::{}", self.crate_name, ty, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// One call expression inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// How the callee was written at the call site.
    pub callee: CalleeRef,
}

/// Syntactic callee shapes the resolver understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// `recv.name(…)` — resolved against methods (`has_self`) by name.
    Method { name: String },
    /// `a::b::name(…)` — resolved via the qualifier (type, crate, module).
    Path { segs: Vec<String> },
    /// `name(…)` — resolved via `use` imports, then same-crate free fns.
    Bare { name: String },
}

/// Everything extracted from one source file.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Workspace-relative path.
    pub file: String,
    /// Fn definitions in source order.
    pub fns: Vec<FnDef>,
    /// `use` paths, each as its segments (brace groups expanded, one level).
    pub uses: Vec<Vec<String>>,
}

/// Rust keywords that look like call heads but are not (`if (…)`, `match (…)`).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "where", "impl", "dyn", "use", "pub", "mod", "struct", "enum", "trait", "type",
    "const", "static", "unsafe", "extern", "crate", "super", "self", "Self", "box", "await",
];

/// Parse one file's source into its item model.
pub fn parse_file(src: &str, crate_name: &str, file: &str) -> FileItems {
    parse_lexed(&lex(src), crate_name, file)
}

/// [`parse_file`] over an already-lexed token stream (the taint pass lexes
/// once and shares the stream with the rule detectors).
pub fn parse_lexed(lexed: &Lexed, crate_name: &str, file: &str) -> FileItems {
    let toks = &lexed.toks;
    let test_regions = crate::rules::test_regions_pub(toks);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));

    let impls = impl_regions(toks);
    let uses = parse_uses(toks);

    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Signature runs to the body `{` at bracket depth 0, or `;` for a
        // bodyless trait method declaration.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut has_self = false;
        let mut seen_first_param = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => break,
                "self" if depth == 1 && !seen_first_param => {
                    has_self = true;
                    seen_first_param = true;
                }
                "," if depth == 1 => seen_first_param = true,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            i = j + 1;
            continue; // declaration without a body
        }
        let body_open = j;
        let body_close = match_brace(toks, body_open);
        let self_ty = impls
            .iter()
            .find(|r| r.open < body_open && body_close <= r.close)
            .map(|r| r.ty.clone());
        fns.push(FnDef {
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line: toks[i].line,
            name: name_tok.text.clone(),
            self_ty,
            has_self,
            body_lines: (toks[body_open].line, toks[body_close.min(toks.len() - 1)].line),
            calls: collect_calls(toks, body_open + 1, body_close),
            in_test: in_test(toks[i].line),
        });
        // Continue scanning *inside* the body too: nested fns become their
        // own defs (their calls are collected twice, once for the outer fn —
        // a harmless over-approximation for taint).
        i = body_open + 1;
    }
    FileItems { crate_name: crate_name.to_string(), file: file.to_string(), fns, uses }
}

/// Index (into `fns`) of the innermost fn whose body spans `(file, line)`,
/// if any. Nested fns shadow their enclosing fn because their body starts
/// later; shared by the taint and concurrency passes for event attribution.
pub fn innermost_fn_at(fns: &[FnDef], file: &str, line: u32) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, f) in fns.iter().enumerate() {
        if f.file == file
            && f.body_lines.0 <= line
            && line <= f.body_lines.1
            && best.is_none_or(|b| fns[b].body_lines.0 <= f.body_lines.0)
        {
            best = Some(i);
        }
    }
    best
}

/// An `impl` block's body token range and its subject type.
struct ImplRegion {
    ty: String,
    open: usize,
    close: usize,
}

/// Find `impl [<…>] Type { … }` / `impl Trait for Type { … }` regions.
fn impl_regions(toks: &[Tok]) -> Vec<ImplRegion> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "impl" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // The subject type is the last uppercase-ish ident before the body
        // brace, after a `for` if one is present (trait impls).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => break,
                "for" if angle <= 0 => saw_for = true,
                _ => {
                    if t.kind == TokKind::Ident && angle <= 0 {
                        if saw_for {
                            after_for = Some(t.text.clone());
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                }
            }
            j += 1;
        }
        if j < toks.len() && toks[j].text == "{" {
            if let Some(ty) = after_for.or(last_ident) {
                out.push(ImplRegion { ty, open: j, close: match_brace(toks, j) });
            }
            i = j + 1;
        } else {
            i = j;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or last token on EOF).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Collect call expressions in `toks[a..b]`.
fn collect_calls(toks: &[Tok], a: usize, b: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `name (` with nothing or a macro bang in between disqualifies.
        let Some(next) = toks.get(i + 1) else { continue };
        if next.text != "(" {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
        if prev == "." {
            out.push(CallSite { line: t.line, callee: CalleeRef::Method { name: t.text.clone() } });
            continue;
        }
        if prev == "::" {
            // Walk back the whole path: ident (:: ident)*.
            let mut segs = vec![t.text.clone()];
            let mut k = i;
            while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
                segs.push(toks[k - 2].text.clone());
                k -= 2;
            }
            segs.reverse();
            // Enum-variant constructors (`Value::Map(…)`) are data, not
            // calls: an uppercase final segment is skipped.
            if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
                continue;
            }
            out.push(CallSite { line: t.line, callee: CalleeRef::Path { segs } });
            continue;
        }
        // Bare call. Uppercase heads are tuple-struct constructors.
        if t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
            out.push(CallSite { line: t.line, callee: CalleeRef::Bare { name: t.text.clone() } });
        }
    }
    out
}

/// Parse `use` declarations into segment lists. `use a::b::{c, d}` yields
/// `[a,b,c]` and `[a,b,d]`; `use a::b as x` yields `[a,b]` (the rename is
/// not tracked — resolution falls back to name matching anyway); globs are
/// recorded as `[a,b,*]`.
fn parse_uses(toks: &[Tok]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "use" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Collect tokens to the terminating `;`.
        let mut j = i + 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut group_prefix: Option<Vec<String>> = None;
        while j < toks.len() && toks[j].text != ";" {
            let t = &toks[j];
            match t.text.as_str() {
                "{" => group_prefix = Some(prefix.clone()),
                "}" => group_prefix = None,
                "," => {
                    if let Some(gp) = &group_prefix {
                        if prefix.len() > gp.len() {
                            out.push(prefix.clone());
                        }
                        prefix = gp.clone();
                    }
                }
                "::" => {}
                "as" => {
                    // Skip the rename ident.
                    j += 1;
                }
                "*" => prefix.push("*".to_string()),
                _ => {
                    if t.kind == TokKind::Ident {
                        prefix.push(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        if !prefix.is_empty() {
            out.push(prefix);
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_file(src, "demo", "demo/src/lib.rs")
    }

    #[test]
    fn fns_and_impls_are_modeled() {
        let src = "struct S;\n\
                   impl S {\n    pub fn step(&mut self, x: u32) -> u32 { helper(x) }\n}\n\
                   fn helper(x: u32) -> u32 { x + 1 }\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].qualified(), "demo::S::step");
        assert!(items.fns[0].has_self);
        assert_eq!(items.fns[1].qualified(), "demo::helper");
        assert!(!items.fns[1].has_self);
        assert_eq!(
            items.fns[0].calls,
            vec![CallSite { line: 3, callee: CalleeRef::Bare { name: "helper".into() } }]
        );
    }

    #[test]
    fn call_shapes_are_classified() {
        let src = "fn f() {\n\
                   let a = recv.method_one(1);\n\
                   let b = comm::allreduce_avg(&a);\n\
                   let c = Instant::now();\n\
                   let d = Some(3);\n\
                   let e = vec![1];\n\
                   bare_call();\n\
                   }\n";
        let items = parse(src);
        let calls = &items.fns[0].calls;
        assert!(calls.iter().any(|c| c.callee == CalleeRef::Method { name: "method_one".into() }));
        assert!(calls
            .iter()
            .any(|c| c.callee
                == CalleeRef::Path { segs: vec!["comm".into(), "allreduce_avg".into()] }));
        assert!(calls
            .iter()
            .any(|c| c.callee == CalleeRef::Path { segs: vec!["Instant".into(), "now".into()] }));
        assert!(calls.iter().any(|c| c.callee == CalleeRef::Bare { name: "bare_call".into() }));
        // `Some(3)` is a constructor, not a call.
        assert!(!calls.iter().any(|c| matches!(&c.callee,
            CalleeRef::Bare { name } if name == "Some")));
    }

    #[test]
    fn trait_impl_attributes_methods_to_the_subject_type() {
        let src = "impl Display for Engine {\n    fn fmt(&self) -> u8 { 0 }\n}\n";
        let items = parse(src);
        assert_eq!(items.fns[0].qualified(), "demo::Engine::fmt");
    }

    #[test]
    fn use_groups_expand() {
        let src = "use data::{AugmentConfig, loader::cursor};\nuse comm::heartbeat::*;\n";
        let items = parse(src);
        assert!(items.uses.contains(&vec!["data".to_string(), "AugmentConfig".to_string()]));
        assert!(items.uses.contains(&vec![
            "data".to_string(),
            "loader".to_string(),
            "cursor".to_string()
        ]));
        assert!(items.uses.contains(&vec![
            "comm".to_string(),
            "heartbeat".to_string(),
            "*".to_string()
        ]));
    }

    #[test]
    fn test_mod_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let items = parse(src);
        assert!(!items.fns[0].in_test);
        assert!(items.fns[1].in_test);
    }
}

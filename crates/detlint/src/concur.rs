//! Static concurrency analysis over the workspace call graph — the checks
//! that keep the pool engine's threading model honest (docs/PARALLELISM.md).
//!
//! Three passes share one token/event scan and the cross-crate call graph
//! ([`crate::callgraph`]):
//!
//! 1. **Channel lifecycle.** [`Exchange`](../../comm/src/exchange.rs)
//!    endpoints are tracked per binding: a `drain_sorted` on an exchange
//!    nothing ever `seal()`s can hang forever when a publisher dies
//!    (`unsealed-drain`); a `handle()` minted after `seal()` panics at
//!    runtime (`send-after-seal`); raw `mpsc`/`crossbeam` channel
//!    construction outside the audited `comm::exchange`/`core::pool` files
//!    re-introduces the primitive the exchanges exist to fence
//!    (`raw-channel`); and a `recv()` outside a declared drain fn consumes
//!    messages in thread-completion order (`order-leak`).
//!
//! 2. **Blocking cycles.** Thread *roles* are inferred from the graph:
//!    everything reachable from a thread-entry fn (`worker_main`) is worker
//!    role; everything reachable from the `Engine`/`WorkerPool` driver
//!    methods — without entering a thread entry — is engine role. Blocking
//!    operations (`recv`, zero-arg `join`, `park`, calls into drain fns)
//!    are collected per role with call-path witnesses. The engine blocking
//!    while a worker-exclusive fn also blocks on something the engine must
//!    feed is the deadlock shape PR 6's protocol is designed to exclude, so
//!    both sides waiting is reported as a `blocking-cycle`. Lock
//!    acquisitions are inventoried with roles but never form cycle edges —
//!    the shared obs registry mutex is held only for short observational
//!    sections and would otherwise fabricate engine/worker cycles.
//!
//! 3. **Lock order + barrier conformance.** Interprocedural lock-acquisition
//!    order is summarized per fn (held lock → locks taken by callees at or
//!    after the acquisition line); a pair acquired in both orders is a
//!    `lock-inversion`. And — closing the PR 5 trust gap where taint
//!    barriers were *declared, never verified* — every fn named in the
//!    drain list must show canonical-order evidence in its body: a
//!    sort-family call, an indexed `recv` (`replies[i].recv()`), or
//!    delegation to another verified drain. A barrier without evidence is a
//!    `barrier-unverified` finding, demotable to a warning by an audited
//!    `detlint::allow(barrier-unverified): reason` on the fn definition.
//!
//! Suppressions use the same comment form as the other modes with the kind
//! tokens in [`ALLOW_KINDS`]; stale allows are reported, mirroring the
//! taint pass's accounting. The whole analysis is deterministic under file
//! visit order (pinned by a proptest).

use crate::callgraph::Graph;
use crate::items;
use crate::lexer::{Tok, TokKind};
use crate::suppress::{phrase, AllowSet, Domain};
use crate::taint::Hop;
use crate::{Finding, Model, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Every suppression kind the concurrency mode owns. The leaf rule pass
/// exempts these tokens from its own stale-allow reporting (this pass does
/// the accounting), exactly like the `taint`/`taint-*` tokens.
pub const ALLOW_KINDS: &[&str] = &[
    "unsealed-drain",
    "send-after-seal",
    "raw-channel",
    "order-leak",
    "blocking-cycle",
    "lock-inversion",
    "barrier-unverified",
];

/// Policy for one concurrency run: which files may construct raw channels,
/// which fn names are drains/thread entries, and which methods root the
/// engine role.
#[derive(Debug, Clone)]
pub struct ConcurConfig {
    /// File-path suffixes allowed to construct raw channels (the audited
    /// fence modules).
    pub audited_channel_files: Vec<String>,
    /// Fn names that are declared canonical drains. This list is the
    /// barrier-conformance subject set, the order-leak exemption, and the
    /// blocking-op attribution boundary — and it must stay equal to
    /// `TaintConfig::workspace_default().barrier_fns` (pinned by a test):
    /// a fn trusted to absorb taint must be exactly a fn this pass
    /// verifies.
    pub drain_fns: Vec<String>,
    /// Fn names that are thread bodies: forward reachability from them
    /// defines the worker role, and their own blocking receive is the idle
    /// wait, not a deadlock edge.
    pub thread_entry_fns: Vec<String>,
    /// `(impl type, method)` pairs that root the engine role.
    pub engine_roots: Vec<(String, String)>,
}

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

impl ConcurConfig {
    /// The policy for this workspace (docs/DETLINT.md).
    pub fn workspace_default() -> Self {
        let engine = [
            "new",
            "new_opts",
            "from_checkpoint",
            "from_checkpoint_opts",
            "step",
            "try_step",
            "run",
            "checkpoint",
            "rescale",
            "rescale_opts",
            "evaluate",
            "eval_dataset",
        ];
        let mut engine_roots: Vec<(String, String)> =
            engine.iter().map(|m| ("Engine".to_string(), m.to_string())).collect();
        engine_roots.push(("WorkerPool".to_string(), "spawn".to_string()));
        engine_roots.push(("WorkerPool".to_string(), "drop".to_string()));
        ConcurConfig {
            audited_channel_files: strs(&["comm/src/exchange.rs", "core/src/pool.rs"]),
            drain_fns: strs(&[
                "drain_sorted",
                "drain_deadline",
                "worker_main",
                "recv_ordered",
                "recv_ordered_deadline",
            ]),
            thread_entry_fns: strs(&["worker_main"]),
            engine_roots,
        }
    }
}

/// One concurrency finding (or warning): the kind token doubles as the
/// suppression name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurFinding {
    /// Finding kind (one of [`ALLOW_KINDS`]).
    pub kind: &'static str,
    /// Workspace-relative file the finding anchors to.
    pub file: String,
    /// 1-based anchor line.
    pub line: u32,
    /// Human explanation with the witness sites inline.
    pub message: String,
    /// Call-path witnesses (for `blocking-cycle`: the engine wait path,
    /// then the worker wait path). Each path starts at a role root; every
    /// hop's line is where that fn calls the next hop (or performs the op,
    /// for the last hop).
    pub paths: Vec<Vec<Hop>>,
}

/// One blocking operation in the role-tagged inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingOp {
    /// `worker`, `engine`, or `other` (worker wins for fns both roles
    /// reach — the satellite role-inference contract).
    pub role: &'static str,
    /// What blocks: `recv`, `join`, `park`, `drain:<fn>`, `lock:<name>`.
    pub op: String,
    /// Qualified fn containing the op.
    pub func: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the op.
    pub line: u32,
    /// A thread entry's command-channel wait (the worker's normal parked
    /// state, never a deadlock edge).
    pub idle: bool,
}

/// Everything one concurrency run produced.
#[derive(Debug, Default)]
pub struct ConcurReport {
    /// Gate-failing findings, sorted by `(file, line, kind)`.
    pub findings: Vec<ConcurFinding>,
    /// Demoted findings (audited `barrier-unverified` allows). Reported,
    /// never gate.
    pub warnings: Vec<ConcurFinding>,
    /// Concurrency-level `detlint::allow` comments that blocked nothing.
    pub unused_suppressions: Vec<Finding>,
    /// Qualified names of every worker-role fn (reachable from a thread
    /// entry).
    pub worker_fns: Vec<String>,
    /// Qualified names of every engine-role fn (reachable from an engine
    /// root, minus the worker set — the roles are disjoint by
    /// construction).
    pub engine_fns: Vec<String>,
    /// The role-tagged blocking-op inventory, sorted by `(file, line, op)`.
    pub blocking: Vec<BlockingOp>,
}

/// Mark-and-test against the shared suppression ledger: does an allow
/// cover `(file, line)` for `kind`?
fn allow_blocks(allows: &mut AllowSet, file: &str, line: u32, kind: &str) -> bool {
    allows.consume(file, line, kind)
}

/// Sort-family methods that count as canonical-order evidence inside a
/// declared drain.
const SORT_EVIDENCE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

/// One token-level observation the passes consume.
#[derive(Debug, Clone)]
enum EventKind {
    /// `.recv()` / `.try_recv()`. `indexed` when the receiver expression
    /// ends in `]` (per-slot channel read in explicit order).
    Recv { indexed: bool, blocking: bool },
    /// Zero-arg `.join()` (thread join; `join(", ")` string joins have
    /// arguments and never match).
    Join,
    /// `park(…)`.
    Park,
    /// `.lock()` with the receiver's final ident as the lock identity.
    Lock { lock: String },
    /// A sort-family call (barrier evidence only).
    Sort,
    /// A call to a (non-entry) drain fn — the caller blocks until the
    /// drain's expected count arrives.
    DrainCall { callee: String },
    /// Raw channel construction vocabulary outside the audited files.
    RawChannel { what: String },
    /// `binding.seal()` on a tracked exchange binding.
    Seal { binding: String },
    /// `binding.handle()` on a tracked exchange binding.
    Handle { binding: String },
    /// `binding.drain_sorted(…)` on a tracked exchange binding.
    Drain { binding: String },
}

#[derive(Debug, Clone)]
struct Event {
    file: String,
    line: u32,
    /// Token index — intra-file ordering (seal-before-handle checks).
    tok: usize,
    kind: EventKind,
}

/// `let [mut] name = Exchange::new()` / `ExchangeTx` bindings in one file.
/// Field assignments (`self.steps = …`) are not tracked — the walk-back
/// stops at the statement boundary, so only genuine `let` bindings qualify.
fn exchange_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "Exchange" && t.text != "ExchangeTx") {
            continue;
        }
        let txt = |j: usize| toks.get(j).map_or("", |t| t.text.as_str());
        if txt(i + 1) != "::" {
            continue;
        }
        // Optional turbofish: `Exchange::<T>::new(`.
        let mut j = i + 1;
        if txt(j + 1) == "<" {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
            if txt(j) != "::" {
                continue;
            }
        }
        if txt(j + 1) != "new" || txt(j + 2) != "(" {
            continue;
        }
        if let Some(name) = let_binding_before(toks, i) {
            out.insert(name);
        }
    }
    out
}

/// The `let [mut] name` pattern opening the statement containing token `i`,
/// if any.
fn let_binding_before(toks: &[Tok], i: usize) -> Option<String> {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut j = k + 1;
                if toks.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                return toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// One pass over a file's tokens collecting every event, skipping
/// `#[cfg(test)]` regions.
fn scan_events(
    toks: &[Tok],
    file: &str,
    audited: bool,
    ccfg: &ConcurConfig,
    test_regions: &[(u32, u32)],
) -> Vec<Event> {
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));
    let bindings = exchange_bindings(toks);
    let drain_calls: Vec<&str> = ccfg
        .drain_fns
        .iter()
        .filter(|f| !ccfg.thread_entry_fns.contains(f))
        .map(|s| s.as_str())
        .collect();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let txt = |j: usize| toks.get(j).map_or("", |t: &Tok| t.text.as_str());
        let prev1 = if i >= 1 { txt(i - 1) } else { "" };
        let prev2 = if i >= 2 { txt(i - 2) } else { "" };
        let next1 = txt(i + 1);
        let next2 = txt(i + 2);
        let mut push = |kind: EventKind| {
            out.push(Event { file: file.to_string(), line: t.line, tok: i, kind });
        };
        match t.text.as_str() {
            "mpsc" | "sync_channel" if !audited => {
                push(EventKind::RawChannel { what: t.text.clone() });
            }
            "crossbeam" if !audited && next1 == "::" && next2 == "channel" => {
                push(EventKind::RawChannel { what: "crossbeam::channel".to_string() });
            }
            "recv" | "try_recv" | "recv_timeout" if prev1 == "." && next1 == "(" => {
                // `recv_timeout` still blocks (up to the deadline window):
                // a supervised drain waiting on a wedged worker is a real
                // cycle unless the declared drain fn owns the wait.
                push(EventKind::Recv { indexed: prev2 == "]", blocking: t.text != "try_recv" });
            }
            "join" if prev1 == "." && next1 == "(" && next2 == ")" => push(EventKind::Join),
            "park" if next1 == "(" => push(EventKind::Park),
            "lock" if prev1 == "." && next1 == "(" => {
                let lock = if i >= 2 && toks[i - 2].kind == TokKind::Ident {
                    toks[i - 2].text.clone()
                } else {
                    "<expr>".to_string()
                };
                push(EventKind::Lock { lock });
            }
            _ => {}
        }
        let mut push = |kind: EventKind| {
            out.push(Event { file: file.to_string(), line: t.line, tok: i, kind });
        };
        if SORT_EVIDENCE.contains(&t.text.as_str()) && prev1 == "." && next1 == "(" {
            push(EventKind::Sort);
        }
        if drain_calls.contains(&t.text.as_str()) && next1 == "(" && prev1 != "fn" {
            push(EventKind::DrainCall { callee: t.text.clone() });
        }
        if prev1 == "." && next1 == "(" && bindings.contains(prev2) {
            match t.text.as_str() {
                "seal" => push(EventKind::Seal { binding: prev2.to_string() }),
                "handle" => push(EventKind::Handle { binding: prev2.to_string() }),
                "drain_sorted" => push(EventKind::Drain { binding: prev2.to_string() }),
                _ => {}
            }
        }
    }
    out
}

/// Witness path from a role root down to the fn holding a blocking op,
/// using the forward-BFS parents. Every hop's line is in that hop's own
/// file: where it calls the next hop, or (last hop) where the op is.
fn witness(g: &Graph, parent: &[Option<(usize, u32)>], fn_id: usize, op_line: u32) -> Vec<Hop> {
    let mut rev = vec![Hop {
        func: g.fns[fn_id].qualified(),
        file: g.fns[fn_id].file.clone(),
        line: op_line,
    }];
    let mut f = fn_id;
    while let Some((caller, line)) = parent[f] {
        rev.push(Hop { func: g.fns[caller].qualified(), file: g.fns[caller].file.clone(), line });
        f = caller;
    }
    rev.reverse();
    rev
}

/// Run the concurrency analysis over a prebuilt [`Model`], consuming
/// suppressions from the shared ledger `allows` (already scanned by the
/// caller). Stale accounting is the caller's job — the returned report's
/// `unused_suppressions` is empty.
pub fn analyze_model(model: &Model, ccfg: &ConcurConfig, allows: &mut AllowSet) -> ConcurReport {
    // Per file: reuse the model's shared token stream for the event scan.
    let mut events: Vec<Event> = Vec::new();
    for mf in &model.files {
        let audited = ccfg.audited_channel_files.iter().any(|s| mf.file.ends_with(s.as_str()));
        events.extend(scan_events(&mf.lexed.toks, &mf.file, audited, ccfg, &mf.test_regions));
    }

    let g = &model.graph;
    let n = g.fns.len();
    let fn_of: Vec<Option<usize>> =
        events.iter().map(|e| items::innermost_fn_at(&g.fns, &e.file, e.line)).collect();

    let mut findings: Vec<ConcurFinding> = Vec::new();
    let mut warnings: Vec<ConcurFinding> = Vec::new();

    // -- Pass 1: channel lifecycle ---------------------------------------
    let sealed: BTreeSet<(&str, &str)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Seal { binding } => Some((e.file.as_str(), binding.as_str())),
            _ => None,
        })
        .collect();
    for e in &events {
        if let EventKind::Drain { binding } = &e.kind {
            if !sealed.contains(&(e.file.as_str(), binding.as_str()))
                && !allow_blocks(allows, &e.file, e.line, "unsealed-drain")
            {
                findings.push(ConcurFinding {
                    kind: "unsealed-drain",
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "`{binding}` is drained but nothing in this file ever seals it; a \
                         publisher that dies before publishing hangs this drain forever — \
                         call `{binding}.seal()` once every handle is minted"
                    ),
                    paths: Vec::new(),
                });
            }
        }
    }
    for (ei, e) in events.iter().enumerate() {
        let EventKind::Handle { binding } = &e.kind else { continue };
        let seal = events.iter().enumerate().find(|(si, s)| {
            matches!(&s.kind, EventKind::Seal { binding: sb } if sb == binding)
                && s.file == e.file
                && fn_of[*si] == fn_of[ei]
                && fn_of[ei].is_some()
                && s.tok < e.tok
        });
        if let Some((_, s)) = seal {
            if !allow_blocks(allows, &e.file, e.line, "send-after-seal") {
                findings.push(ConcurFinding {
                    kind: "send-after-seal",
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "publisher handle minted on `{binding}` after `seal()` (sealed at \
                         {}:{}); `handle()` panics once the exchange is sealed",
                        s.file, s.line
                    ),
                    paths: Vec::new(),
                });
            }
        }
    }
    for (ei, e) in events.iter().enumerate() {
        match &e.kind {
            EventKind::Recv { .. } => {
                let in_drain = fn_of[ei].is_some_and(|f| ccfg.drain_fns.contains(&g.fns[f].name));
                if !in_drain && !allow_blocks(allows, &e.file, e.line, "order-leak") {
                    findings.push(ConcurFinding {
                        kind: "order-leak",
                        file: e.file.clone(),
                        line: e.line,
                        message: "receive outside a declared drain fn consumes messages in \
                                  thread-completion order; route it through a canonical drain \
                                  (drain_sorted / recv_ordered)"
                            .to_string(),
                        paths: Vec::new(),
                    });
                }
            }
            EventKind::RawChannel { what }
                if !allow_blocks(allows, &e.file, e.line, "raw-channel") =>
            {
                findings.push(ConcurFinding {
                    kind: "raw-channel",
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "raw channel construction (`{what}`) outside the audited \
                         comm::exchange / core::pool modules; publish through \
                         comm::exchange::Exchange so arrival order stays fenced"
                    ),
                    paths: Vec::new(),
                });
            }
            _ => {}
        }
    }

    // -- Pass 2: roles and blocking cycles -------------------------------
    let worker_roots: Vec<usize> = (0..n)
        .filter(|&i| !g.fns[i].in_test && ccfg.thread_entry_fns.contains(&g.fns[i].name))
        .collect();
    let (worker_vis, worker_par) = g.reachable_from(&worker_roots, &|f| f.in_test);
    let engine_root_ids: Vec<usize> = (0..n)
        .filter(|&i| {
            let f = &g.fns[i];
            !f.in_test
                && ccfg
                    .engine_roots
                    .iter()
                    .any(|(ty, m)| f.self_ty.as_deref() == Some(ty.as_str()) && &f.name == m)
        })
        .collect();
    let (engine_vis, engine_par) = g.reachable_from(&engine_root_ids, &|f| {
        f.in_test || ccfg.thread_entry_fns.contains(&f.name)
    });

    struct OpRef {
        fn_id: usize,
        role: &'static str,
        op: String,
        file: String,
        line: u32,
        idle: bool,
        /// Does this op kind form wait-for edges (locks do not)?
        waits: bool,
    }
    let mut ops: Vec<OpRef> = Vec::new();
    for (ei, e) in events.iter().enumerate() {
        let kind = match &e.kind {
            EventKind::Recv { blocking: true, .. } => Some(("recv".to_string(), true)),
            EventKind::Join => Some(("join".to_string(), true)),
            EventKind::Park => Some(("park".to_string(), true)),
            EventKind::DrainCall { callee } => Some((format!("drain:{callee}"), true)),
            EventKind::Lock { lock } => Some((format!("lock:{lock}"), false)),
            _ => None,
        };
        let Some((op, waits)) = kind else { continue };
        let Some(f) = fn_of[ei] else { continue };
        let name = &g.fns[f].name;
        let idle = ccfg.thread_entry_fns.contains(name);
        if !idle && ccfg.drain_fns.contains(name) {
            // A drain's own internals are the audited wait — callers see it
            // as a DrainCall op instead, so nothing is lost.
            continue;
        }
        let role = if worker_vis[f] {
            "worker"
        } else if engine_vis[f] {
            "engine"
        } else {
            "other"
        };
        ops.push(OpRef { fn_id: f, role, op, file: e.file.clone(), line: e.line, idle, waits });
    }
    ops.sort_by(|a, b| (&a.file, a.line, &a.op, a.fn_id).cmp(&(&b.file, b.line, &b.op, b.fn_id)));

    // The role-level wait-for graph has two nodes. Engine→worker edges are
    // every engine-role wait (the engine only ever waits *for workers*);
    // worker→engine edges are waits in worker-exclusive fns that are not
    // the idle command receive (the engine must act for them to resolve).
    // Both edge sets non-empty ⇒ a cycle.
    let engine_waits: Vec<&OpRef> = ops.iter().filter(|o| o.role == "engine" && o.waits).collect();
    let worker_waits: Vec<&OpRef> = ops
        .iter()
        .filter(|o| o.role == "worker" && o.waits && !o.idle && !engine_vis[o.fn_id])
        .collect();
    if let Some(ew) = engine_waits.first() {
        for w in &worker_waits {
            if allow_blocks(allows, &w.file, w.line, "blocking-cycle") {
                continue;
            }
            findings.push(ConcurFinding {
                kind: "blocking-cycle",
                file: w.file.clone(),
                line: w.line,
                message: format!(
                    "engine<->worker wait cycle: worker-side `{}` in `{}` blocks while the \
                     engine blocks in `{}` ({}:{}); if the engine's wait is on this worker, \
                     neither side makes progress",
                    w.op,
                    g.fns[w.fn_id].qualified(),
                    g.fns[ew.fn_id].qualified(),
                    ew.file,
                    ew.line
                ),
                paths: vec![
                    witness(g, &engine_par, ew.fn_id, ew.line),
                    witness(g, &worker_par, w.fn_id, w.line),
                ],
            });
        }
    }

    // -- Pass 3a: interprocedural lock order -----------------------------
    let mut direct: BTreeMap<usize, Vec<(String, u32, usize)>> = BTreeMap::new();
    for (ei, e) in events.iter().enumerate() {
        if let EventKind::Lock { lock } = &e.kind {
            if let Some(f) = fn_of[ei] {
                direct.entry(f).or_default().push((lock.clone(), e.line, e.tok));
            }
        }
    }
    // Transitive summary: every lock a fn (or anything it calls) can take,
    // with one deterministic representative site each.
    let mut summary: Vec<BTreeMap<String, (String, u32)>> = vec![BTreeMap::new(); n];
    for (f, locks) in &direct {
        for (name, line, _) in locks {
            summary[*f].entry(name.clone()).or_insert((g.fns[*f].file.clone(), *line));
        }
    }
    loop {
        let mut changed = false;
        for f in 0..n {
            let inherited: Vec<(String, (String, u32))> = g.edges[f]
                .iter()
                .flat_map(|e| {
                    summary[e.callee]
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (k, v) in inherited {
                if let std::collections::btree_map::Entry::Vacant(slot) = summary[f].entry(k) {
                    slot.insert(v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    struct PairWitness {
        file_a: String,
        line_a: u32,
        file_b: String,
        line_b: u32,
    }
    let mut pairs: BTreeMap<(String, String), PairWitness> = BTreeMap::new();
    for (f, locks) in &direct {
        let file = g.fns[*f].file.clone();
        for (i, (na, la, _)) in locks.iter().enumerate() {
            // Later acquisitions in the same fn (the guard is assumed live —
            // over-approximate on purpose; suppress drop-scoped pairs).
            for (nb, lb, _) in locks.iter().skip(i + 1) {
                if na != nb {
                    pairs.entry((na.clone(), nb.clone())).or_insert(PairWitness {
                        file_a: file.clone(),
                        line_a: *la,
                        file_b: file.clone(),
                        line_b: *lb,
                    });
                }
            }
            // Locks any callee invoked at/after the acquisition can take.
            for e in &g.edges[*f] {
                if e.line < *la {
                    continue;
                }
                for (nb, (fb, lb)) in &summary[e.callee] {
                    if nb != na {
                        pairs.entry((na.clone(), nb.clone())).or_insert(PairWitness {
                            file_a: file.clone(),
                            line_a: *la,
                            file_b: fb.clone(),
                            line_b: *lb,
                        });
                    }
                }
            }
        }
    }
    for ((a, b), w) in &pairs {
        if a >= b {
            continue; // one finding per unordered pair
        }
        let Some(rev) = pairs.get(&(b.clone(), a.clone())) else { continue };
        if allow_blocks(allows, &w.file_a, w.line_a, "lock-inversion") {
            continue;
        }
        findings.push(ConcurFinding {
            kind: "lock-inversion",
            file: w.file_a.clone(),
            line: w.line_a,
            message: format!(
                "lock order inversion between `{a}` and `{b}`: `{a}` -> `{b}` ({}:{} then \
                 {}:{}) but `{b}` -> `{a}` ({}:{} then {}:{}); two threads interleaving \
                 these paths deadlock",
                w.file_a,
                w.line_a,
                w.file_b,
                w.line_b,
                rev.file_a,
                rev.line_a,
                rev.file_b,
                rev.line_b
            ),
            paths: Vec::new(),
        });
    }

    // -- Pass 3b: barrier conformance ------------------------------------
    let subjects: Vec<usize> =
        (0..n).filter(|&i| !g.fns[i].in_test && ccfg.drain_fns.contains(&g.fns[i].name)).collect();
    let mut verified = vec![false; n];
    for &s in &subjects {
        verified[s] = events.iter().enumerate().any(|(ei, e)| {
            fn_of[ei] == Some(s)
                && matches!(&e.kind, EventKind::Sort | EventKind::Recv { indexed: true, .. })
        });
    }
    // Delegation closure: a drain that hands the work to a verified drain
    // is itself verified.
    loop {
        let mut changed = false;
        for &s in &subjects {
            if !verified[s]
                && g.edges[s]
                    .iter()
                    .any(|e| verified[e.callee] && ccfg.drain_fns.contains(&g.fns[e.callee].name))
            {
                verified[s] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &s in &subjects {
        if verified[s] {
            continue;
        }
        let f = &g.fns[s];
        if allow_blocks(allows, &f.file, f.line, "barrier-unverified") {
            warnings.push(ConcurFinding {
                kind: "barrier-unverified",
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "declared barrier `{}` shows no canonical-order evidence; demoted to a \
                     warning by an audited `barrier-unverified` allow",
                    f.qualified()
                ),
                paths: Vec::new(),
            });
        } else {
            findings.push(ConcurFinding {
                kind: "barrier-unverified",
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "declared barrier `{}` shows no canonical-order evidence (no sort-family \
                     call, no indexed `recv`, no delegation to a verified drain); make the \
                     drain canonical or audit it with `detlint::allow(barrier-unverified)`",
                    f.qualified()
                ),
                paths: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.kind).cmp(&(&b.file, b.line, b.kind)));
    warnings.sort_by(|a, b| (&a.file, a.line, a.kind).cmp(&(&b.file, b.line, b.kind)));

    ConcurReport {
        findings,
        warnings,
        unused_suppressions: Vec::new(),
        worker_fns: (0..n).filter(|&i| worker_vis[i]).map(|i| g.fns[i].qualified()).collect(),
        engine_fns: (0..n)
            .filter(|&i| engine_vis[i] && !worker_vis[i])
            .map(|i| g.fns[i].qualified())
            .collect(),
        blocking: ops
            .iter()
            .map(|o| BlockingOp {
                role: o.role,
                op: o.op.clone(),
                func: g.fns[o.fn_id].qualified(),
                file: o.file.clone(),
                line: o.line,
                idle: o.idle,
            })
            .collect(),
    }
}

/// [`analyze_model`] with a private suppression ledger: scan every file's
/// allows, run the passes, and report concurrency-only stale allows.
pub fn analyze_model_standalone(model: &Model, ccfg: &ConcurConfig) -> ConcurReport {
    let mut allows = AllowSet::new();
    for mf in &model.files {
        allows.scan_file(&mf.lexed, &mf.file, &mf.test_regions);
    }
    let mut rep = analyze_model(model, ccfg, &mut allows);
    rep.unused_suppressions = allows.stale(&[Domain::Concur], false, phrase::CONCUR);
    rep
}

/// Run the concurrency analysis over a set of source files with a private
/// suppression ledger. Input order does not matter — files are sorted
/// internally and the report is byte-identical under any permutation
/// (pinned by a proptest).
pub fn analyze_files(files: &[SourceFile], ccfg: &ConcurConfig) -> ConcurReport {
    analyze_model_standalone(&crate::build_model(files, &[]), ccfg)
}

/// [`analyze_files`] over every `crates/*/src/**/*.rs` under `root`.
pub fn analyze_workspace_concur(root: &Path, ccfg: &ConcurConfig) -> std::io::Result<ConcurReport> {
    let files = crate::workspace_sources(root)?;
    Ok(analyze_files(&files, ccfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::TaintConfig;

    fn file(crate_name: &str, name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            file: format!("crates/{crate_name}/src/{name}"),
            src: src.to_string(),
        }
    }

    fn run(files: &[SourceFile]) -> ConcurReport {
        analyze_files(files, &ConcurConfig::workspace_default())
    }

    fn kinds(r: &ConcurReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn drain_set_equals_the_declared_taint_barrier_fns() {
        // The conformance pass verifies exactly the fns taint trusts.
        assert_eq!(
            ConcurConfig::workspace_default().drain_fns,
            TaintConfig::workspace_default().barrier_fns
        );
    }

    #[test]
    fn unsealed_drain_fires_and_seal_clears_it() {
        let bad = run(&[file(
            "comm",
            "lib.rs",
            "fn collect() { let ex = Exchange::new(); ex.handle(); ex.drain_sorted(1); }\n",
        )]);
        assert_eq!(kinds(&bad), vec!["unsealed-drain"]);
        let good = run(&[file(
            "comm",
            "lib.rs",
            "fn collect() { let mut ex = Exchange::new(); ex.handle(); ex.seal(); \
             ex.drain_sorted(1); }\n",
        )]);
        assert!(kinds(&good).is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn handle_after_seal_is_a_finding_handle_before_is_not() {
        let bad = run(&[file(
            "comm",
            "lib.rs",
            "fn mint() { let mut ex = Exchange::new(); ex.seal(); ex.handle(); }\n",
        )]);
        assert_eq!(kinds(&bad), vec!["send-after-seal"]);
        let good = run(&[file(
            "comm",
            "lib.rs",
            "fn mint() { let mut ex = Exchange::new(); ex.handle(); ex.seal(); }\n",
        )]);
        assert!(kinds(&good).is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn raw_channels_flag_only_outside_audited_files() {
        let bad = run(&[file(
            "sched",
            "lib.rs",
            "fn side() { let (tx, rx) = std::sync::mpsc::channel(); }\n",
        )]);
        assert_eq!(kinds(&bad), vec!["raw-channel"]);
        // Same token in the audited exchange module: fine.
        let good = run(&[SourceFile {
            crate_name: "comm".to_string(),
            file: "crates/comm/src/exchange.rs".to_string(),
            src: "fn inside() { let (tx, rx) = std::sync::mpsc::channel(); }\n".to_string(),
        }]);
        assert!(kinds(&good).is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn recv_outside_a_drain_fn_leaks_order() {
        let bad = run(&[file("core", "lib.rs", "fn first_come(rx: R) { let v = rx.recv(); }\n")]);
        assert_eq!(kinds(&bad), vec!["order-leak"]);
        // Inside a declared drain with sort evidence: exempt and verified.
        let good = run(&[file(
            "core",
            "lib.rs",
            "fn drain_sorted(rx: R) -> Vec<u32> { let mut o = vec![rx.recv()]; o.sort(); o }\n",
        )]);
        assert!(kinds(&good).is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn recv_timeout_is_a_blocking_receive_to_the_scanner() {
        // A deadline recv outside any declared drain leaks arrival order
        // exactly like a blocking recv.
        let bad = run(&[file(
            "comm",
            "lib.rs",
            "fn waity(rx: R) { let v = rx.recv_timeout(window); }\n",
        )]);
        assert_eq!(kinds(&bad), vec!["order-leak"]);
        // And it still registers as a *blocking* wait, unlike try_recv
        // (drain internals are elided from the inventory, so check here).
        assert!(
            bad.blocking.iter().any(|o| o.func.contains("waity") && o.op == "recv"),
            "recv_timeout must count as a blocking wait: {:?}",
            bad.blocking
        );
        // Inside the declared deadline drain with inline sort evidence:
        // exempt, and the barrier verifies.
        let good = run(&[file(
            "comm",
            "lib.rs",
            "fn drain_deadline(rx: R) -> V { let mut o = vec![rx.recv_timeout(w)]; \
             o.sort_by_key(|x| *x); o }\n",
        )]);
        assert!(kinds(&good).is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn blocking_cycle_needs_both_sides_waiting() {
        let worker_side = "pub fn worker_main(cmds: R) { handle_cmd(); }\n\
                           fn handle_cmd() { wait_ack(); }\n\
                           fn wait_ack() { acks.recv(); }\n";
        // Engine waits (a drain call) + a worker-exclusive recv: cycle.
        let both = run(&[
            file("core", "a.rs", worker_side),
            file(
                "core",
                "b.rs",
                "struct Engine;\nimpl Engine { pub fn step(&self) { self.recv_ordered(); }\n\
                 fn recv_ordered(&self) { self.replies[0].recv(); } }\n",
            ),
        ]);
        let cycles: Vec<_> = both.findings.iter().filter(|f| f.kind == "blocking-cycle").collect();
        assert_eq!(cycles.len(), 1, "{:?}", both.findings);
        assert_eq!(cycles[0].paths.len(), 2, "engine witness + worker witness");
        let worker_path: Vec<&str> = cycles[0].paths[1].iter().map(|h| h.func.as_str()).collect();
        assert_eq!(worker_path, vec!["core::worker_main", "core::handle_cmd", "core::wait_ack"]);
        // Worker side alone (no engine wait anywhere): only the order leak.
        let alone = run(&[file("core", "a.rs", worker_side)]);
        assert!(!alone.findings.iter().any(|f| f.kind == "blocking-cycle"), "{:?}", alone.findings);
    }

    #[test]
    fn thread_entry_receive_is_idle_not_a_cycle_edge() {
        let r = run(&[
            file("core", "a.rs", "pub fn worker_main(cmds: R) { cmds.recv(); }\n"),
            file(
                "core",
                "b.rs",
                "struct Engine;\nimpl Engine { pub fn step(&self) { self.replies[0].recv(); } }\n",
            ),
        ]);
        assert!(
            !r.findings.iter().any(|f| f.kind == "blocking-cycle"),
            "idle command wait must not close a cycle: {:?}",
            r.findings
        );
        let idle: Vec<_> = r.blocking.iter().filter(|o| o.idle).collect();
        assert_eq!(idle.len(), 1);
        assert_eq!(idle[0].role, "worker");
        // The engine-side indexed recv sits in `step`, which is not a
        // declared drain: that is a real order leak.
        assert!(r.findings.iter().any(|f| f.kind == "order-leak"));
    }

    #[test]
    fn role_inference_worker_reachable_is_never_engine() {
        let r = run(&[file(
            "core",
            "lib.rs",
            "struct Engine;\n\
             impl Engine { pub fn step(&self) { shared(); } }\n\
             pub fn worker_main(c: R) { helper(); shared(); }\n\
             fn helper() {}\n\
             fn shared() {}\n",
        )]);
        for w in &r.worker_fns {
            assert!(!r.engine_fns.contains(w), "`{w}` is in both roles");
        }
        assert!(r.worker_fns.iter().any(|f| f == "core::helper"));
        assert!(r.worker_fns.iter().any(|f| f == "core::shared"), "worker wins shared fns");
        assert!(r.engine_fns.iter().any(|f| f == "core::Engine::step"));
        assert!(!r.engine_fns.iter().any(|f| f == "core::worker_main"));
    }

    #[test]
    fn lock_inversion_is_found_interprocedurally() {
        let r = run(&[file(
            "obs",
            "lib.rs",
            "impl Store {\n\
             fn refresh_a(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn refresh_b(&self) { let b = self.beta.lock(); lock_alpha(self); }\n\
             }\n\
             fn lock_alpha(s: &Store) { s.alpha.lock(); }\n",
        )]);
        assert_eq!(kinds(&r), vec!["lock-inversion"]);
        assert!(r.findings[0].message.contains("`alpha` -> `beta`"));
        assert!(r.findings[0].message.contains("`beta` -> `alpha`"));
        // One direction only: clean.
        let clean = run(&[file(
            "obs",
            "lib.rs",
            "impl Store {\n\
             fn refresh_a(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             }\n",
        )]);
        assert!(kinds(&clean).is_empty(), "{:?}", clean.findings);
    }

    #[test]
    fn barriers_verify_by_sort_index_or_delegation() {
        // Sort evidence.
        let sorted = run(&[file(
            "comm",
            "a.rs",
            "fn drain_sorted(rx: R) -> V { let mut o = vec![rx.recv()]; o.sort_by_key(|x| *x); o }\n",
        )]);
        assert!(kinds(&sorted).is_empty(), "{:?}", sorted.findings);
        // Indexed-recv evidence.
        let indexed = run(&[file(
            "core",
            "b.rs",
            "impl P { fn recv_ordered(&self) { self.replies[0].recv(); } }\n",
        )]);
        assert!(kinds(&indexed).is_empty(), "{:?}", indexed.findings);
        // Delegation to a verified drain.
        let delegated = run(&[file(
            "comm",
            "c.rs",
            "fn drain_sorted(rx: R) -> V { let mut o = vec![rx.recv()]; o.sort(); o }\n\
             fn recv_ordered(rx: R) -> V { drain_sorted(rx) }\n",
        )]);
        assert!(kinds(&delegated).is_empty(), "{:?}", delegated.findings);
        // No evidence at all: finding.
        let fake =
            run(&[file("comm", "d.rs", "fn drain_sorted(rx: R) -> V { vec![rx.recv()] }\n")]);
        assert_eq!(kinds(&fake), vec!["barrier-unverified"]);
    }

    #[test]
    fn barrier_allow_demotes_to_warning_and_counts_as_used() {
        let r = run(&[file(
            "comm",
            "lib.rs",
            "// detlint::allow(barrier-unverified): audited fixture\n\
             fn drain_sorted(rx: R) -> V { vec![rx.recv()] }\n",
        )]);
        assert!(kinds(&r).is_empty(), "{:?}", r.findings);
        assert_eq!(r.warnings.len(), 1);
        assert_eq!(r.warnings[0].kind, "barrier-unverified");
        assert!(r.unused_suppressions.is_empty(), "the allow was used");
    }

    #[test]
    fn stale_concur_allow_is_reported() {
        let r = run(&[file(
            "comm",
            "lib.rs",
            "// detlint::allow(unsealed-drain): nothing here drains\n\
             fn tidy() {}\n",
        )]);
        assert!(r.findings.is_empty());
        assert_eq!(r.unused_suppressions.len(), 1);
        assert_eq!(r.unused_suppressions[0].rule, "unused-suppression");
    }

    #[test]
    fn result_is_invariant_under_file_order() {
        let a = file("core", "a.rs", "pub fn worker_main(c: R) { leak(); }\n");
        let b = file("core", "b.rs", "pub fn leak(rx: R) { rx.recv(); }\n");
        let fwd = run(&[a.clone(), b.clone()]);
        let rev = run(&[b, a]);
        assert_eq!(fwd.findings, rev.findings);
        assert_eq!(fwd.blocking, rev.blocking);
        assert_eq!(fwd.worker_fns, rev.worker_fns);
    }
}

//! The shared oracle test that pairs `dot` with `dot_scalar`: calling
//! both in one test context is exactly the evidence the accum pass's
//! oracle sub-pass looks for.

#[test]
fn dot_matches_scalar_bitwise() {
    let a = [1.0f32, 2.0, 3.0];
    let b = [4.0f32, 5.0, 6.0];
    assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits());
}

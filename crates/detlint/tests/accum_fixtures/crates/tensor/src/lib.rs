//! Planted accumulation fixtures: each fn seeds exactly one classifier or
//! oracle-pairing outcome for the witness test
//! (`crates/detlint/tests/accum_fixtures.rs`). Line numbers are pinned
//! there — append new fixtures at the end or rebaseline the witnesses.

/// Single chain: a deliberate sequential fold. Classified, never a
/// finding — ordered accumulation is the workspace's reference semantics.
pub fn chain(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += *x;
    }
    acc
}

/// Lockstep lanes merged in ascending index order after the loop: the
/// blessed `leaf_partials` shape — same reduction tree at every worker
/// count, so it must classify `lockstep` and stay clean.
pub fn lanes(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    for j in 0..xs.len() {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += xs[j * 8 + l];
        }
    }
    let mut total = 0.0f32;
    for l in 0..8 {
        total += acc[l];
    }
    total
}

/// Reassociation shape 1: lockstep lanes merged in *reverse* index order
/// after the loop — a different tree than the ascending merge.
pub fn reversed_merge(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    for j in 0..xs.len() {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += xs[j * 8 + l];
        }
    }
    acc.iter().rev().sum::<f32>()
}

/// Reassociation shape 2: two chains merged inside the loop body — the
/// partial of one chain feeds the other mid-stream.
pub fn entangled(xs: &[f32]) -> f32 {
    let mut a = 0.0f32;
    let mut b = 0.0f32;
    for x in xs {
        a += *x;
        b += a;
    }
    b
}

/// Reassociation shape 3: a chunked loop folding each chunk into a scalar
/// — the tree depends on the chunk width and the remainder chunk.
pub fn chunked(xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for c in xs.chunks(8) {
        total += c.iter().sum::<f32>();
    }
    total
}

/// Reassociation shape 4: an order-dependent fold over a reshaped
/// iterator chain (no explicit loop at all).
pub fn reshaped(xs: &[f32]) -> f32 {
    xs.chunks(8).map(|c| c.iter().sum::<f32>()).sum::<f32>()
}

/// A demoted copy of shape 4: the audited allow (on the fold line the
/// finding anchors to) absorbs the finding and must count as used.
pub fn reshaped_audited(xs: &[f32]) -> f32 {
    // detlint::allow(float-reassoc): audited fixture — input length is pinned to a multiple of 8
    xs.chunks(8).map(|c| c.iter().sum::<f32>()).sum::<f32>()
}

/// A stale allow: nothing on this fn ever fires, so the suppression is a
/// dead audit record and must be reported.
// detlint::allow(float-reassoc): stale fixture — nothing here accumulates
pub fn inert(x: f32) -> f32 {
    x
}

/// Oracle subject with no `_scalar` sibling anywhere: `oracle-unpaired`.
pub fn blocked_sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += *x;
    }
    acc
}

/// Oracle subject whose sibling exists but is never exercised together
/// with it by any test: still `oracle-unpaired`.
pub fn matmul(a: &[f32], b: &[f32]) -> f32 {
    a[0] * b[0]
}

/// The sibling nothing tests against `matmul`.
pub fn matmul_scalar(a: &[f32], b: &[f32]) -> f32 {
    a[0] * b[0]
}

/// Fully paired oracle subject: sibling below, shared bit-equality test in
/// `tests/calls_both.rs`. Clean.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// The scalar reference for `dot`.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

//! Taint fixture: the blessed home for clocks — a barrier crate whose
//! internal wall-clock reads must never seed a flow. Never compiled.

pub fn stopwatch() -> u64 {
    let _t = std::time::Instant::now(); // absorbed: barrier crates own the clock
    2
}

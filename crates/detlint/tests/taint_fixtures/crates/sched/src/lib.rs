//! Taint fixture: a hash-iteration source three hops above the
//! `sched::decide` sink, plus one audited (suppressed) clock read and one
//! stale taint allow. Never compiled — read as text by taint_fixtures.rs.

use std::collections::HashMap;

fn weigh(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in m {
        // FLOW: hash-iter source (line above names `m`)
        acc = acc + v;
    }
    acc
}

fn plan(m: &HashMap<u32, f64>) -> f64 {
    weigh(m)
}

pub fn decide(m: &HashMap<u32, f64>) -> f64 {
    plan(m)
}

fn stamped() -> u64 {
    // detlint::allow(taint-wall-clock): observational only, audited upstream
    let _t = std::time::Instant::now();
    0
}

pub fn proposals(x: u64) -> u64 {
    x + stamped()
}

// detlint::allow(taint): STALE — the entropy below was removed long ago
pub fn quiet_path(x: u64) -> u64 {
    x + 1
}

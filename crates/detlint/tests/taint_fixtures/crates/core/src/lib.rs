//! Taint fixture: an ad-hoc RNG source whose tainted caller invokes two
//! sinks (`core::save` and, cross-crate, `optim::Sgd::step`) — the
//! tainted-caller (case 2) flow shape — plus a clock read absorbed by the
//! `obs` barrier crate. Never compiled.

fn jitter() -> u64 {
    rand::random() // FLOW: adhoc-rng source
}

pub fn train_loop(opt: &mut Sgd, lr: f64) -> u64 {
    let j = jitter();
    opt.step(lr);
    save(j)
}

pub fn save(x: u64) -> u64 {
    x
}

pub fn observe() -> u64 {
    obs::stopwatch() // no flow: obs is a barrier crate
}

//! Taint fixture: one thread-order source flowing into the
//! `comm::ring_allreduce` sink, and one absorbed by the `drain_sorted`
//! barrier on the way to `allreduce_avg`. Never compiled.

fn raw_merge(rx: &Receiver<u64>) -> u64 {
    rx.try_recv().unwrap_or(0) // FLOW: thread-order source
}

pub fn ring_allreduce(rx: &Receiver<u64>) -> u64 {
    raw_merge(rx)
}

fn gather(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap() // absorbed: only reachable through drain_sorted
}

pub fn drain_sorted(rx: &Receiver<u64>) -> u64 {
    gather(rx)
}

pub fn allreduce_avg(rx: &Receiver<u64>) -> u64 {
    drain_sorted(rx)
}

//! Taint fixture: a wall-clock source directly inside the `optim::step`
//! sink — the one-hop degenerate flow. Never compiled.

pub struct Sgd;

impl Sgd {
    pub fn step(&mut self, lr: f64) -> f64 {
        let _t = std::time::Instant::now(); // FLOW: wall-clock source in the sink itself
        lr
    }
}

//! Planted channel-lifecycle violations for the concurrency fixture test.
//! Never compiled — detlint scans these files as text.

pub struct Exchange;

impl Exchange {
    pub fn new() -> Self {
        Exchange
    }
    pub fn seal(&mut self) {}
    pub fn handle(&self) -> u32 {
        0
    }
}

// PLANTED barrier-unverified: a fake drain — claims the barrier name but
// forwards arrival order untouched.
pub fn drain_sorted(rx: Rx) -> Vec<u32> {
    vec![rx.recv()]
}

// PLANTED unsealed-drain: the exchange is drained but never sealed, so a
// dead publisher hangs the drain forever.
pub fn collect_unsealed() -> Vec<u32> {
    let ex = Exchange::new();
    let _h = ex.handle();
    ex.drain_sorted(1)
}

// PLANTED send-after-seal: a publisher handle minted after `seal()`.
pub fn mint_after_seal() -> u32 {
    let mut late = Exchange::new();
    late.seal();
    late.handle()
}

//! Planted blocking-cycle, order-leak, raw-channel, and lock-inversion
//! violations for the concurrency fixture test. Never compiled — detlint
//! scans these files as text.

pub struct Engine;

impl Engine {
    /// Engine role root: blocks in a drain call waiting on worker replies.
    pub fn step(&mut self) {
        self.recv_ordered(&[0, 1]);
    }

    /// A genuine canonical drain: per-slot channels read in caller-fixed
    /// index order (verified by the indexed-recv evidence).
    fn recv_ordered(&self, from: &[usize]) -> Vec<u32> {
        from.iter().map(|&i| self.replies[i].recv()).collect()
    }
}

/// Worker thread body. The barrier claim is audited: results leave under
/// fixed keys, but this body shows no sort — hence the allow.
// detlint::allow(barrier-unverified): fixture worker publishes under fixed keys
pub fn worker_main(cmds: Rx) {
    loop {
        let _cmd = cmds.recv();
        handle_cmd();
    }
}

fn handle_cmd() {
    wait_for_ack();
}

// PLANTED blocking-cycle + order-leak: a worker-exclusive blocking receive
// outside any drain, while the engine blocks in recv_ordered.
fn wait_for_ack() {
    let _ = acks.recv();
}

// PLANTED raw-channel: raw mpsc construction outside the audited modules.
pub fn ack_channel() -> (Tx, Rx) {
    std::sync::mpsc::channel()
}

pub struct Store;

impl Store {
    // PLANTED lock-inversion (one half): alpha then beta.
    fn refresh_a(&self) {
        let _a = self.alpha.lock();
        let _b = self.beta.lock();
    }

    // PLANTED lock-inversion (other half): beta, then alpha through a
    // callee — only the interprocedural summary sees this direction.
    fn refresh_b(&self) {
        let _b = self.beta.lock();
        lock_alpha(self);
    }
}

fn lock_alpha(s: &Store) {
    let _a = s.alpha.lock();
}

// PLANTED stale suppression: blocks nothing.
// detlint::allow(unsealed-drain): nothing here drains
pub fn tidy() {}

//! The taint analysis's self-test: a planted mini-workspace under
//! `tests/taint_fixtures/crates/` (crate names mirror the real workspace
//! so the default sink/barrier policy applies) seeds one flow of each
//! shape — direct source-in-sink, multi-hop intra-crate, cross-crate
//! through a tainted caller — plus absorbed sources (barrier crate,
//! barrier fn), a used kind-scoped allow, and a stale allow. The report
//! must match the planted set *exactly*: every flow, with its full
//! witness path, and nothing else.

use detlint::taint::{analyze_workspace_taint, TaintConfig};
use std::path::Path;

fn run() -> detlint::taint::TaintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/taint_fixtures");
    analyze_workspace_taint(&root, &TaintConfig::workspace_default()).expect("fixture tree walks")
}

#[test]
fn planted_flows_are_reported_exactly() {
    let rep = run();
    let got: Vec<(String, String, u32, String, Vec<String>)> = rep
        .flows
        .iter()
        .map(|f| {
            (
                f.source_kind.clone(),
                f.source_file.clone(),
                f.source_line,
                f.sink_fn.clone(),
                f.path.iter().map(|h| h.func.clone()).collect(),
            )
        })
        .collect();

    let s = |x: &str| x.to_string();
    let expected = vec![
        (
            s("thread-order"),
            s("crates/comm/src/lib.rs"),
            6,
            s("comm::ring_allreduce"),
            vec![s("comm::raw_merge"), s("comm::ring_allreduce")],
        ),
        (
            s("adhoc-rng"),
            s("crates/core/src/lib.rs"),
            7,
            s("core::save"),
            vec![s("core::jitter"), s("core::train_loop"), s("core::save")],
        ),
        (
            s("adhoc-rng"),
            s("crates/core/src/lib.rs"),
            7,
            s("optim::Sgd::step"),
            vec![s("core::jitter"), s("core::train_loop"), s("optim::Sgd::step")],
        ),
        (
            s("wall-clock"),
            s("crates/optim/src/lib.rs"),
            8,
            s("core::save"),
            vec![s("optim::Sgd::step"), s("core::train_loop"), s("core::save")],
        ),
        (
            s("wall-clock"),
            s("crates/optim/src/lib.rs"),
            8,
            s("optim::Sgd::step"),
            vec![s("optim::Sgd::step")],
        ),
        (
            s("hash-iter"),
            s("crates/sched/src/lib.rs"),
            9,
            s("sched::decide"),
            vec![s("sched::weigh"), s("sched::plan"), s("sched::decide")],
        ),
    ];
    assert_eq!(got, expected, "planted flows must be reported exactly");
}

#[test]
fn stale_taint_allow_is_reported_and_used_one_is_not() {
    let rep = run();
    assert_eq!(rep.unused_suppressions.len(), 1, "{:?}", rep.unused_suppressions);
    let stale = &rep.unused_suppressions[0];
    assert_eq!(stale.rule, "unused-suppression");
    assert_eq!(stale.file, "crates/sched/src/lib.rs");
    assert_eq!(stale.line, 34);
    // The used allow (sched::stamped, taint-wall-clock) must NOT appear —
    // and the source it covers must produce no flow (checked above by the
    // exact-match assertion, which has no sched::proposals flow).
    assert!(!rep.unused_suppressions.iter().any(|f| f.line == 25));
}

//! The concurrency analysis's self-test: a planted mini-workspace under
//! `tests/concur_fixtures/crates/` seeds one violation of each class —
//! fake barrier, unsealed drain, send-after-seal, engine<->worker blocking
//! cycle (with both witness paths), order leak, raw channel, and an
//! interprocedural lock inversion — plus an audited `barrier-unverified`
//! allow (demoted to a warning) and a stale allow. The report must match
//! the planted set *exactly*: every finding, its anchor, its witness
//! paths, and nothing else.

use detlint::concur::{analyze_workspace_concur, ConcurConfig, ConcurReport};
use std::path::Path;

fn run() -> ConcurReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/concur_fixtures");
    analyze_workspace_concur(&root, &ConcurConfig::workspace_default()).expect("fixture tree walks")
}

#[test]
fn planted_findings_are_reported_exactly() {
    let rep = run();
    let got: Vec<(&str, String, u32)> =
        rep.findings.iter().map(|f| (f.kind, f.file.clone(), f.line)).collect();
    let s = |x: &str| x.to_string();
    let expected = vec![
        ("barrier-unverified", s("crates/comm/src/lib.rs"), 18),
        ("unsealed-drain", s("crates/comm/src/lib.rs"), 27),
        ("send-after-seal", s("crates/comm/src/lib.rs"), 34),
        ("blocking-cycle", s("crates/core/src/lib.rs"), 37),
        ("order-leak", s("crates/core/src/lib.rs"), 37),
        ("raw-channel", s("crates/core/src/lib.rs"), 42),
        ("lock-inversion", s("crates/core/src/lib.rs"), 50),
    ];
    assert_eq!(got, expected, "planted findings must be reported exactly: {:#?}", rep.findings);
}

#[test]
fn blocking_cycle_carries_both_witness_paths() {
    let rep = run();
    let cycle =
        rep.findings.iter().find(|f| f.kind == "blocking-cycle").expect("planted cycle is found");
    assert_eq!(cycle.paths.len(), 2, "engine witness then worker witness");
    let engine: Vec<&str> = cycle.paths[0].iter().map(|h| h.func.as_str()).collect();
    let worker: Vec<&str> = cycle.paths[1].iter().map(|h| h.func.as_str()).collect();
    assert_eq!(engine, vec!["core::Engine::step"]);
    assert_eq!(worker, vec!["core::worker_main", "core::handle_cmd", "core::wait_for_ack"]);
    // Last hop of the worker path anchors at the blocking op itself.
    assert_eq!(cycle.paths[1].last().unwrap().line, 37);
}

#[test]
fn lock_inversion_message_cites_both_orders() {
    let rep = run();
    let inv = rep
        .findings
        .iter()
        .find(|f| f.kind == "lock-inversion")
        .expect("planted inversion is found");
    assert!(inv.message.contains("`alpha` -> `beta`"), "{}", inv.message);
    assert!(inv.message.contains("`beta` -> `alpha`"), "{}", inv.message);
}

#[test]
fn audited_barrier_allow_demotes_to_warning() {
    let rep = run();
    assert_eq!(rep.warnings.len(), 1, "{:?}", rep.warnings);
    assert_eq!(rep.warnings[0].kind, "barrier-unverified");
    assert_eq!(rep.warnings[0].file, "crates/core/src/lib.rs");
    assert_eq!(rep.warnings[0].line, 23);
    // The audited fn must not also appear as a gate-failing finding.
    assert!(!rep
        .findings
        .iter()
        .any(|f| f.kind == "barrier-unverified" && f.file == "crates/core/src/lib.rs"));
}

#[test]
fn stale_concur_allow_is_reported_and_used_one_is_not() {
    let rep = run();
    assert_eq!(rep.unused_suppressions.len(), 1, "{:?}", rep.unused_suppressions);
    let stale = &rep.unused_suppressions[0];
    assert_eq!(stale.rule, "unused-suppression");
    assert_eq!(stale.file, "crates/core/src/lib.rs");
    assert_eq!(stale.line, 67);
    // The used barrier allow (line 22) must not be flagged stale.
    assert!(!rep.unused_suppressions.iter().any(|f| f.line == 22));
}

#[test]
fn roles_and_blocking_inventory_cover_the_fixture() {
    let rep = run();
    assert!(rep.worker_fns.iter().any(|f| f == "core::worker_main"));
    assert!(rep.worker_fns.iter().any(|f| f == "core::wait_for_ack"));
    assert!(rep.engine_fns.iter().any(|f| f == "core::Engine::step"));
    for w in &rep.worker_fns {
        assert!(!rep.engine_fns.contains(w), "roles must be disjoint: {w}");
    }
    // The worker's command receive is inventoried as the idle wait.
    let idle: Vec<_> = rep.blocking.iter().filter(|o| o.idle).collect();
    assert_eq!(idle.len(), 1, "{:?}", rep.blocking);
    assert_eq!(idle[0].func, "core::worker_main");
    assert_eq!(idle[0].role, "worker");
    // The engine's drain wait is engine-role and non-idle.
    assert!(rep
        .blocking
        .iter()
        .any(|o| o.role == "engine" && o.op == "drain:recv_ordered" && !o.idle));
}

//! The accumulation pass's self-test: a planted mini-workspace under
//! `tests/accum_fixtures/crates/` seeds every finding kind — four
//! reassociation shapes (reversed lane merge, in-loop chain merge, chunked
//! fold, reshaped-iterator fold), the safe lockstep shape, an unpaired
//! kernel, a paired-but-untested kernel, a fully paired kernel, a used
//! allow, and a stale allow. The report must match the planted set
//! *exactly* — kind, file, line — with nothing extra.
//!
//! The scratch-copy test then takes the *live* `tensor::kernels` source,
//! deliberately reassociates `leaf_partials`' lane merge, and checks the
//! pass catches the edit: the analysis guards the real kernel, not just
//! fixtures shaped like it.

use detlint::accum::{analyze_files, analyze_workspace_accum, AccumConfig, AccumReport};
use detlint::SourceFile;
use std::path::Path;

fn run() -> AccumReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/accum_fixtures");
    analyze_workspace_accum(&root, &AccumConfig::workspace_default()).expect("fixture tree walks")
}

const LIB: &str = "crates/tensor/src/lib.rs";

#[test]
fn planted_findings_are_reported_exactly() {
    let rep = run();
    let got: Vec<(&str, &str, u32)> =
        rep.findings.iter().map(|f| (f.kind, f.file.as_str(), f.line)).collect();
    // `reversed_merge` fires twice on purpose: the post-loop reversed lane
    // merge (anchored at the loop) and the order-dependent `.rev().sum()`
    // fold itself (anchored at the fold line) are two independent lenses on
    // the same defect.
    let expected: Vec<(&str, &str, u32)> = vec![
        ("float-reassoc", LIB, 37),
        ("float-reassoc", LIB, 42),
        ("float-reassoc", LIB, 50),
        ("float-reassoc", LIB, 61),
        ("float-reassoc", LIB, 70),
        ("oracle-unpaired", LIB, 88),
        ("oracle-unpaired", LIB, 98),
    ];
    assert_eq!(got, expected, "full report:\n{}", detlint::report::accum_human(&rep));
}

#[test]
fn messages_and_spans_witness_each_shape() {
    let rep = run();
    let find = |line: u32| {
        rep.findings.iter().find(|f| f.line == line).unwrap_or_else(|| panic!("finding at {line}"))
    };
    let reversed = find(37);
    assert!(reversed.message.contains("reverse index order"), "{}", reversed.message);
    assert!(
        reversed.spans.iter().any(|s| s.label == "reversed-merge" && s.line == 42),
        "{:?}",
        reversed.spans
    );
    let entangled = find(50);
    assert!(entangled.message.contains("`a` and `b`"), "{}", entangled.message);
    assert!(
        entangled.spans.iter().any(|s| s.label == "merge-write" && s.line == 52),
        "{:?}",
        entangled.spans
    );
    let chunked = find(61);
    assert!(chunked.message.contains("remainder chunk"), "{}", chunked.message);
    let reshaped = find(70);
    assert!(reshaped.message.contains("reshaped by `chunks`"), "{}", reshaped.message);
    let unpaired = find(88);
    assert!(unpaired.message.contains("no `blocked_sum_scalar` oracle"), "{}", unpaired.message);
    let untested = find(98);
    assert!(untested.message.contains("never exercised together"), "{}", untested.message);
}

#[test]
fn loop_inventory_classifies_the_safe_shapes() {
    let rep = run();
    let class_at = |line: u32| rep.loops.iter().find(|l| l.line == line).map(|l| l.class);
    assert_eq!(class_at(10), Some("single-chain"), "{:?}", rep.loops);
    assert_eq!(class_at(21), Some("lockstep"), "`lanes` must classify lockstep: {:?}", rep.loops);
}

#[test]
fn oracle_inventory_and_suppression_accounting_are_exact() {
    let rep = run();
    let by_kernel = |k: &str| rep.oracles.iter().find(|o| o.kernel == k);
    let dot = by_kernel("dot").expect("dot is a subject");
    assert!(dot.scalar_found && dot.tested_together, "{dot:?}");
    let blocked = by_kernel("blocked_sum").expect("blocked_sum is a subject");
    assert!(!blocked.scalar_found, "{blocked:?}");
    let matmul = by_kernel("matmul").expect("matmul is a subject");
    assert!(matmul.scalar_found && !matmul.tested_together, "{matmul:?}");
    // `dot_scalar` / `matmul_scalar` are oracles, never subjects.
    assert!(by_kernel("dot_scalar").is_none() && by_kernel("matmul_scalar").is_none());
    // Exactly one stale allow (`inert`); the audited one at the fold counted
    // as used.
    assert_eq!(rep.unused_suppressions.len(), 1, "{:?}", rep.unused_suppressions);
    assert_eq!(rep.unused_suppressions[0].line, 82);
}

#[test]
fn deliberately_reassociating_leaf_partials_is_caught() {
    // Scratch copy of the live kernel source: the unmodified file is clean,
    // and reversing the lane merge in `leaf_partials` is caught.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src = std::fs::read_to_string(root.join("crates/tensor/src/kernels.rs"))
        .expect("live kernels.rs readable");
    let file = |text: &str| SourceFile {
        crate_name: "tensor".to_string(),
        file: "crates/tensor/src/kernels.rs".to_string(),
        src: text.to_string(),
    };
    let acfg = AccumConfig::workspace_default();

    let clean = analyze_files(&[file(&src)], &[], &acfg);
    let reassoc: Vec<_> = clean.findings.iter().filter(|f| f.kind == "float-reassoc").collect();
    assert!(reassoc.is_empty(), "live kernels.rs must be reassoc-clean: {reassoc:?}");

    let marker = "partials.extend_from_slice(&acc);";
    assert_eq!(src.matches(marker).count(), 1, "lane-merge marker must stay unique");
    let broken = src.replace(marker, "partials.push(acc.iter().rev().sum::<f32>());");
    let rep = analyze_files(&[file(&broken)], &[], &acfg);
    assert!(
        rep.findings.iter().any(|f| f.kind == "float-reassoc"),
        "reassociated lane merge must be caught:\n{}",
        detlint::report::accum_human(&rep)
    );
}

//! Fixture: seeded `no-float-key-sort` violations (and near-misses that
//! must stay clean). Never compiled — read as text by rules_fire.rs.

pub fn sorts_proposals_by_float(v: &mut Vec<(u32, f64)>) {
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap()); // VIOLATION: partial_cmp comparator
}

pub fn picks_max_by_float_key(xs: &[f32]) -> Option<&f32> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()) // VIOLATION: partial_cmp in max_by
}

pub fn standalone_comparator(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap() // VIOLATION: non-total comparator helper
}

pub fn explicit_float_key(v: &mut Vec<Item>) {
    v.sort_by_key(|x| x.score as f32 as u32); // VIOLATION: f32 key in sort_by_key
}

pub fn total_cmp_is_blessed(v: &mut Vec<(u32, f64)>) {
    v.sort_by(|a, b| a.1.total_cmp(&b.1)); // clean: total order over all bit patterns
}

pub fn integer_keys_are_fine(v: &mut Vec<(u64, u32)>) {
    v.sort_by_key(|x| (x.0, x.1)); // clean: integers order totally
    v.sort_by(|a, b| b.0.cmp(&a.0)); // clean: Ord comparator
}

pub fn suppressed_site(v: &mut Vec<(u32, f64)>) {
    // detlint::allow(no-float-key-sort): inputs proven NaN-free upstream
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}

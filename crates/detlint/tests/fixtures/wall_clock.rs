//! Fixture: seeded `no-wall-clock` violations. Never compiled.

use std::time::{Duration, Instant};

pub fn reads_a_monotonic_clock() -> Duration {
    let t = Instant::now(); // VIOLATION: Instant::now outside obs/bench
    t.elapsed()
}

pub fn reads_the_wall_clock() -> u64 {
    let now = std::time::SystemTime::now(); // VIOLATION: SystemTime
    now.elapsed().unwrap().as_secs()
}

pub fn durations_are_fine() -> Duration {
    Duration::from_millis(5) // clean: a duration constant reads no clock
}

pub fn suppressed_site() -> Duration {
    // detlint::allow(no-wall-clock): log-only timing, audited
    let t = Instant::now();
    t.elapsed()
}

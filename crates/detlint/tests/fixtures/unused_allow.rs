//! Fixture: seeded `unused-suppression` violations (and used allows that
//! must stay clean). Never compiled — read as text by rules_fire.rs.

// detlint::allow(no-wall-clock): stale — the clock read below was removed // VIOLATION: allow matches nothing
pub fn clock_read_was_refactored_away(elapsed_us: u64) -> u64 {
    elapsed_us * 2
}

pub fn wrong_rule_listed() -> u32 {
    // detlint::allow(no-hash-iter): typo'd rule for the line below // VIOLATION: names the wrong rule
    42
}

// detlint::allow(no-such-rule): rule id that does not exist // VIOLATION: unknown rule never matches
pub fn unknown_rule_name() {}

pub fn used_allow_is_not_stale() {
    // detlint::allow(no-wall-clock): log-only timing, audited
    let _t = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    // detlint::allow(no-wall-clock): inert inside a skipped test region
    fn helper() {}
}

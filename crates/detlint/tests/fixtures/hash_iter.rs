//! Fixture: seeded `no-hash-iter` violations (and near-misses that must
//! stay clean). Never compiled — read as text by rules_fire.rs.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn iterates_a_param_map(table: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in table.iter() { // VIOLATION: .iter() on a hash map
        acc += v;
    }
    acc
}

pub fn for_loops_a_local_set() {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    for s in seen { // VIOLATION: for-in over a hash set
        let _ = s;
    }
}

pub fn keys_of_a_let_binding() {
    let index = HashMap::from([(1u32, 2u32)]);
    let _ks: Vec<_> = index.keys().collect(); // VIOLATION: .keys()
}

pub fn lookups_are_fine(table: &HashMap<u32, f64>) -> Option<f64> {
    table.get(&1).copied() // clean: point lookup has no order
}

pub fn btree_iteration_is_fine(ordered: &BTreeMap<u32, f64>) -> f64 {
    // Note: ident tracking is file-coarse — reusing the name `table` here
    // would (conservatively) flag this too. A rename or an allow resolves it.
    ordered.values().sum() // clean: BTreeMap iterates in key order
}

pub fn suppressed_site(table: &HashMap<u32, f64>) -> usize {
    // detlint::allow(no-hash-iter): order-insensitive count
    table.iter().count()
}

//! Fixture: code that exercises every rule's *neighborhood* without
//! violating any of them — the false-positive canary. Never compiled.

use std::collections::BTreeMap;

pub fn ordered_iteration(free: &BTreeMap<u32, u32>) -> u32 {
    free.values().sum() // BTreeMap: deterministic order, integer sum
}

pub fn duration_math(budget_ms: u64) -> std::time::Duration {
    std::time::Duration::from_millis(budget_ms)
}

pub fn strings_do_not_trip_rules() -> &'static str {
    // Rule tokens inside literals must be invisible to the scanner.
    "HashMap Instant::now() thread_rng .recv()"
}

pub fn integer_offsets(lens: &[usize]) -> usize {
    let mut off = 0;
    for n in lens {
        off += n;
    }
    off
}

pub fn kernel_reduction(xs: &[f32], profile: &KernelProfile) -> f32 {
    let mut acc = 0.0f32;
    for tile in xs.chunks(profile.tile) {
        acc += tile[0];
    }
    acc
}

//! Fixture: seeded `no-adhoc-rng` violations. Never compiled.

pub fn seeds_from_the_os() -> u64 {
    let mut rng = rand::thread_rng(); // VIOLATION: rand:: and thread_rng
    rng.gen()
}

pub fn hasher_randomness() -> u64 {
    let h = RandomState::new(); // VIOLATION: per-process random hasher seed
    h.hash_one(&42u32)
}

pub fn philox_streams_are_fine(seed: u64) -> u32 {
    let mut rng = esrng::EsRng::for_stream(seed, key);
    rng.next_u32() // clean: the sanctioned counter-based generator
}

pub fn suppressed_site() -> u64 {
    // detlint::allow(no-adhoc-rng): jitter for backoff, off the math path
    fastrand::u64(..)
}

//! Fixture: violations confined to a `#[cfg(test)]` module — all must be
//! skipped by default. Never compiled.

pub fn production_code() -> u32 {
    42
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_do_what_they_like() {
        let t = Instant::now(); // skipped: inside #[cfg(test)]
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in m.iter() { // skipped: inside #[cfg(test)]
            let _ = (k, v, t);
        }
    }
}

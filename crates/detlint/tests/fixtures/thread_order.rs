//! Fixture: seeded `no-thread-order` violations plus the sanctioned
//! scoped-join pattern. Never compiled.

pub fn detached_spawn() {
    std::thread::spawn(|| {}); // VIOLATION: thread::spawn, detached
}

pub fn channel_completion_order() -> u32 {
    let (tx, rx) = std::sync::mpsc::channel(); // VIOLATION: mpsc
    tx.send(1).unwrap();
    rx.recv().unwrap() // VIOLATION: .recv() surfaces completion order
}

pub fn scoped_join_in_spawn_order(parts: &[Part]) -> Vec<Out> {
    // clean: the core::engine pattern — results collected by joining
    // handles in spawn order, so completion order cannot leak.
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = parts.iter().map(|p| s.spawn(move |_| work(p))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap()
}

pub fn suppressed_site() {
    // detlint::allow(no-thread-order): fire-and-forget logging flush
    std::thread::spawn(|| {});
}

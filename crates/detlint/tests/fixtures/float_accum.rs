//! Fixture: seeded `no-raw-float-accum` violations plus the exemptions the
//! rule must honor (order-parameterized kernels, integer arithmetic,
//! elementwise idioms). Never compiled.

pub fn naive_sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x; // VIOLATION: float += reduction, no order parameter
    }
    acc
}

pub fn turbofish_sum(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() // VIOLATION: .sum::<f32>() is always flagged
}

pub fn plain_sum_with_float_context(xs: &[f64]) -> f64 {
    xs.iter().sum() // VIOLATION: .sum() where the signature says f64
}

pub fn kernel_sum(xs: &[f32], profile: &KernelProfile) -> f32 {
    let mut acc = 0.0;
    for chunk in xs.chunks(profile.tile) {
        acc += chunk[0]; // clean: KernelProfile in signature → order explicit
    }
    acc
}

pub fn counters_are_fine(xs: &[f32]) -> usize {
    let mut n = 0;
    n += 1; // clean: integer-literal increment
    let mut off: usize = 0;
    for x in xs {
        let step = x.to_bits() as usize;
        off += step; // clean: usize arithmetic in the statement
    }
    n + off
}

pub fn suppressed_site(xs: &mut [f32], d: f32) {
    for x in xs.iter_mut() {
        // detlint::allow(no-raw-float-accum): elementwise, single addend
        *x += d * 2.0;
    }
}

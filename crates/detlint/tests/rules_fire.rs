//! The rule catalog's self-test: every fixture under `tests/fixtures/`
//! seeds violations on lines marked `VIOLATION`, and detlint must find a
//! violation on exactly those lines — no more (false positives), no fewer
//! (false negatives) — while `detlint::allow` comments suppress exactly
//! their own rule.
//!
//! Fixtures are read as *text* (they are not compiled; some reference
//! types that do not exist) and analyzed as if they lived in a crate that
//! activates the rule under test.

use detlint::{analyze_source, Config, Finding};

fn findings(fixture: &str, crate_name: &str) -> Vec<Finding> {
    analyze_source(fixture, crate_name, "fixture.rs", &Config::workspace_default())
}

/// Lines (1-based) carrying a `VIOLATION` marker comment.
fn marked_lines(fixture: &str) -> Vec<u32> {
    fixture
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("VIOLATION"))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

/// Distinct finding lines, sorted.
fn finding_lines(findings: &[Finding]) -> Vec<u32> {
    let mut lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Assert the fixture's findings are all `rule` and land exactly on the
/// marked lines.
fn assert_exact(fixture: &str, crate_name: &str, rule: &str) {
    let found = findings(fixture, crate_name);
    assert!(!found.is_empty(), "{rule}: fixture must trigger");
    for f in &found {
        assert_eq!(f.rule, rule, "unexpected rule {} at line {}: {}", f.rule, f.line, f.message);
    }
    assert_eq!(
        finding_lines(&found),
        marked_lines(fixture),
        "{rule}: findings must match the VIOLATION markers exactly"
    );
}

#[test]
fn no_hash_iter_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/hash_iter.rs"), "sched", "no-hash-iter");
}

#[test]
fn no_wall_clock_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/wall_clock.rs"), "core", "no-wall-clock");
}

#[test]
fn no_raw_float_accum_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/float_accum.rs"), "tensor", "no-raw-float-accum");
}

#[test]
fn no_adhoc_rng_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/adhoc_rng.rs"), "esrng", "no-adhoc-rng");
}

#[test]
fn no_thread_order_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/thread_order.rs"), "comm", "no-thread-order");
}

#[test]
fn no_float_key_sort_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/float_key_sort.rs"), "sched", "no-float-key-sort");
}

#[test]
fn unused_suppression_fires_on_marked_lines_only() {
    assert_exact(include_str!("fixtures/unused_allow.rs"), "core", "unused-suppression");
}

#[test]
fn clean_fixture_stays_clean_under_the_harshest_crate() {
    // `tensor` activates deterministic-path, wall-clock, and float-accum
    // rules at once; the canary fixture must survive all of them.
    let found = findings(include_str!("fixtures/clean.rs"), "tensor");
    assert!(found.is_empty(), "false positives: {found:?}");
}

#[test]
fn test_modules_are_exempt_by_default() {
    let fixture = include_str!("fixtures/test_mod.rs");
    assert!(findings(fixture, "core").is_empty());

    // …but only because the config says so.
    let mut strict = Config::workspace_default();
    strict.skip_test_code = false;
    let found = analyze_source(fixture, "core", "fixture.rs", &strict);
    assert!(!found.is_empty(), "with skip_test_code=false the seeded test-mod violations surface");
}

#[test]
fn allow_comment_suppresses_only_its_own_rule() {
    // Two different violations on the same line; the allow names one rule.
    let src = "// detlint::allow(no-wall-clock): timing only\n\
               fn f() { let t = std::time::Instant::now(); let r = rand::random(); }\n";
    let found = findings(src, "core");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "no-adhoc-rng");

    // Naming both rules in one allow suppresses both.
    let src2 = "// detlint::allow(no-wall-clock, no-adhoc-rng): audited\n\
                fn f() { let t = std::time::Instant::now(); let r = rand::random(); }\n";
    assert!(findings(src2, "core").is_empty());
}

#[test]
fn every_catalog_rule_has_a_fixture_exercising_it() {
    let all: std::collections::BTreeSet<&str> = [
        findings(include_str!("fixtures/hash_iter.rs"), "sched"),
        findings(include_str!("fixtures/wall_clock.rs"), "core"),
        findings(include_str!("fixtures/float_accum.rs"), "tensor"),
        findings(include_str!("fixtures/adhoc_rng.rs"), "esrng"),
        findings(include_str!("fixtures/thread_order.rs"), "comm"),
        findings(include_str!("fixtures/float_key_sort.rs"), "sched"),
        findings(include_str!("fixtures/unused_allow.rs"), "core"),
    ]
    .iter()
    .flatten()
    .map(|f| f.rule)
    .collect();
    let catalog: std::collections::BTreeSet<&str> =
        detlint::rules::CATALOG.iter().map(|r| r.name).collect();
    assert_eq!(all, catalog, "catalog coverage");
}

//! Property-based tests for the taint, concurrency, and accumulation
//! analyses (and the SARIF serialization over all of them): each report is
//! a pure function of the file *set*, never the file *visit order*. The walker feeds files in sorted order, but nothing may depend
//! on that — graph node ids, BFS frontiers, and witness selection all have
//! explicit tie-breaks, and these properties pin them byte-for-byte.

use detlint::accum::AccumConfig;
use detlint::concur::ConcurConfig;
use detlint::report;
use detlint::taint::{analyze_files, TaintConfig};
use detlint::{sarif, SourceFile};
use proptest::prelude::*;

/// The planted fixture mini-workspace: five crates, six flows, one stale
/// suppression — enough structure for an order bug to change the bytes.
fn corpus() -> Vec<SourceFile> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/taint_fixtures");
    detlint::workspace_sources(&root).expect("fixture tree walks")
}

/// The concurrency fixture mini-workspace: all seven finding classes, a
/// warning, a stale allow, witness paths, and the blocking inventory.
fn concur_corpus() -> Vec<SourceFile> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/concur_fixtures");
    detlint::workspace_sources(&root).expect("fixture tree walks")
}

/// The accumulation fixture mini-workspace: every reassociation shape,
/// both oracle-pairing failures, a used allow, and a stale allow.
fn accum_corpus() -> (Vec<SourceFile>, Vec<SourceFile>) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/accum_fixtures");
    let files = detlint::workspace_sources(&root).expect("fixture tree walks");
    let test_files = detlint::workspace_test_sources(&root).expect("fixture tests walk");
    (files, test_files)
}

/// Fisher–Yates with an xorshift generator seeded by the property case.
fn shuffle(files: &mut [SourceFile], seed: u64) {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    for i in (1..files.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        files.swap(i, (s % (i as u64 + 1)) as usize);
    }
}

proptest! {
    /// Any permutation of the input files yields a byte-identical JSON
    /// taint report.
    #[test]
    fn taint_report_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let cfg = TaintConfig::workspace_default();
        let baseline = report::taint_json(&analyze_files(&corpus(), &cfg));
        let mut files = corpus();
        shuffle(&mut files, seed);
        let shuffled = report::taint_json(&analyze_files(&files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }

    /// Any permutation of the input files yields a byte-identical JSON
    /// concurrency report — findings, witness paths, role counts, and the
    /// blocking inventory included.
    #[test]
    fn concur_report_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let cfg = ConcurConfig::workspace_default();
        let baseline =
            report::concur_json(&detlint::concur::analyze_files(&concur_corpus(), &cfg));
        let mut files = concur_corpus();
        shuffle(&mut files, seed);
        let shuffled = report::concur_json(&detlint::concur::analyze_files(&files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }

    /// Any permutation of the source *and* test files yields a
    /// byte-identical JSON accumulation report — loop inventory, oracle
    /// checks, and suppression accounting included.
    #[test]
    fn accum_report_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let cfg = AccumConfig::workspace_default();
        let (files, test_files) = accum_corpus();
        let baseline =
            report::accum_json(&detlint::accum::analyze_files(&files, &test_files, &cfg));
        let (mut files, mut test_files) = accum_corpus();
        shuffle(&mut files, seed);
        shuffle(&mut test_files, seed.rotate_left(17));
        let shuffled =
            report::accum_json(&detlint::accum::analyze_files(&files, &test_files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }

    /// The full four-run SARIF document is byte-identical under shuffled
    /// file order: the serializer has no map-ordering freedom (insertion
    /// order only) and every input report is already canonically sorted.
    #[test]
    fn sarif_document_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let tcfg = TaintConfig::workspace_default();
        let ccfg = ConcurConfig::workspace_default();
        let acfg = AccumConfig::workspace_default();
        let document = |taint_files: &[SourceFile],
                        concur_files: &[SourceFile],
                        accum: &(Vec<SourceFile>, Vec<SourceFile>)| {
            sarif::document(vec![
                sarif::taint_run(&analyze_files(taint_files, &tcfg)),
                sarif::concur_run(&detlint::concur::analyze_files(concur_files, &ccfg)),
                sarif::accum_run(&detlint::accum::analyze_files(&accum.0, &accum.1, &acfg)),
            ])
        };
        let baseline = document(&corpus(), &concur_corpus(), &accum_corpus());
        let mut taint_files = corpus();
        let mut concur_files = concur_corpus();
        let (mut accum_files, mut accum_tests) = accum_corpus();
        shuffle(&mut taint_files, seed);
        shuffle(&mut concur_files, seed.rotate_left(7));
        shuffle(&mut accum_files, seed.rotate_left(29));
        shuffle(&mut accum_tests, seed.rotate_left(41));
        let shuffled = document(&taint_files, &concur_files, &(accum_files, accum_tests));
        prop_assert_eq!(baseline, shuffled);
    }
}

//! Property-based tests for the taint and concurrency analyses: each
//! report is a pure function of the file *set*, never the file *visit
//! order*. The walker feeds files in sorted order, but nothing may depend
//! on that — graph node ids, BFS frontiers, and witness selection all have
//! explicit tie-breaks, and these properties pin them byte-for-byte.

use detlint::concur::ConcurConfig;
use detlint::report;
use detlint::taint::{analyze_files, TaintConfig};
use detlint::SourceFile;
use proptest::prelude::*;

/// The planted fixture mini-workspace: five crates, six flows, one stale
/// suppression — enough structure for an order bug to change the bytes.
fn corpus() -> Vec<SourceFile> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/taint_fixtures");
    detlint::workspace_sources(&root).expect("fixture tree walks")
}

/// The concurrency fixture mini-workspace: all seven finding classes, a
/// warning, a stale allow, witness paths, and the blocking inventory.
fn concur_corpus() -> Vec<SourceFile> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/concur_fixtures");
    detlint::workspace_sources(&root).expect("fixture tree walks")
}

/// Fisher–Yates with an xorshift generator seeded by the property case.
fn shuffle(files: &mut [SourceFile], seed: u64) {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    for i in (1..files.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        files.swap(i, (s % (i as u64 + 1)) as usize);
    }
}

proptest! {
    /// Any permutation of the input files yields a byte-identical JSON
    /// taint report.
    #[test]
    fn taint_report_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let cfg = TaintConfig::workspace_default();
        let baseline = report::taint_json(&analyze_files(&corpus(), &cfg));
        let mut files = corpus();
        shuffle(&mut files, seed);
        let shuffled = report::taint_json(&analyze_files(&files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }

    /// Any permutation of the input files yields a byte-identical JSON
    /// concurrency report — findings, witness paths, role counts, and the
    /// blocking inventory included.
    #[test]
    fn concur_report_is_byte_identical_under_any_file_visit_order(seed in 0u64..u64::MAX) {
        let cfg = ConcurConfig::workspace_default();
        let baseline =
            report::concur_json(&detlint::concur::analyze_files(&concur_corpus(), &cfg));
        let mut files = concur_corpus();
        shuffle(&mut files, seed);
        let shuffled = report::concur_json(&detlint::concur::analyze_files(&files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }
}

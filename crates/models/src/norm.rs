//! Batch normalization — the canonical "implicit framework state" of the
//! paper's §3.3: its running mean/variance are updated as a side effect of
//! every training forward pass, are *not* synchronized by DDP (each replica
//! tracks its own), and therefore belong to the EST context, not to the
//! shared parameters.

use crate::model::{ExecCtx, Layer};
use tensor::ops::blocked_sum;
use tensor::Tensor;

/// BatchNorm over the channel axis: accepts `[B, C]` or `[B, C, H, W]`.
pub struct BatchNorm {
    gamma: Tensor,
    beta: Tensor,
    ggamma: Tensor,
    gbeta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    cached: Option<Cached>,
}

struct Cached {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm {
    /// BatchNorm over `channels` with PyTorch-default momentum 0.1, eps 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            ggamma: Tensor::zeros(&[channels]),
            gbeta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cached: None,
        }
    }

    /// Current running statistics (mean, var).
    pub fn running_stats(&self) -> (&Tensor, &Tensor) {
        (&self.running_mean, &self.running_var)
    }

    /// Gather per-channel values of `x` into `buf` (indices of channel `c`).
    fn channel_slice(shape: &[usize]) -> (usize, usize, usize) {
        // Returns (outer, stride, inner): element (o, c, i) lives at
        // o*stride_outer + c*inner + i.
        match shape.len() {
            2 => (shape[0], shape[1], 1),
            4 => (shape[0], shape[1] * shape[2] * shape[3], shape[2] * shape[3]),
            _ => panic!("BatchNorm expects [B,C] or [B,C,H,W], got {shape:?}"),
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let shape = x.shape().to_vec();
        let (outer, stride, inner) = Self::channel_slice(&shape);
        assert_eq!(
            stride / inner.max(1),
            self.channels,
            "channel mismatch: BatchNorm({}) got {shape:?}",
            self.channels
        );
        let m = (outer * inner) as f32;
        let xd = x.data();
        let mut out = Tensor::zeros(&shape);
        let mut x_hat = Tensor::zeros(&shape);
        let mut inv_std = vec![0.0f32; self.channels];
        let mut buf = vec![0.0f32; outer * inner];

        #[allow(clippy::needless_range_loop)] // c indexes several parallel arrays
        for c in 0..self.channels {
            // Gather channel c.
            let mut k = 0;
            for o in 0..outer {
                let base = o * stride + c * inner;
                for i in 0..inner {
                    buf[k] = xd[base + i];
                    k += 1;
                }
            }
            let (mean, var) = if ctx.training {
                let mean = blocked_sum(&buf, &ctx.profile) / m;
                let sq: Vec<f32> = buf.iter().map(|&v| (v - mean) * (v - mean)).collect();
                let var = blocked_sum(&sq, &ctx.profile) / m;
                // Update running stats (PyTorch: unbiased var for running).
                let unbiased = if m > 1.0 { var * m / (m - 1.0) } else { var };
                let rm = &mut self.running_mean.data_mut()[c];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[c];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * unbiased;
                (mean, var)
            } else {
                (self.running_mean.data()[c], self.running_var.data()[c])
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[c] = istd;
            let g = self.gamma.data()[c];
            let b = self.beta.data()[c];
            let od = out.data_mut();
            let xh = x_hat.data_mut();
            let mut k = 0;
            for o in 0..outer {
                let base = o * stride + c * inner;
                for i in 0..inner {
                    let h = (buf[k] - mean) * istd;
                    xh[base + i] = h;
                    od[base + i] = g * h + b;
                    k += 1;
                }
            }
        }
        self.cached = Some(Cached { x_hat, inv_std, shape });
        out
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let cached = self.cached.take().expect("backward before forward");
        let shape = cached.shape;
        assert_eq!(grad.shape(), &shape[..], "grad shape mismatch");
        let (outer, stride, inner) = Self::channel_slice(&shape);
        let m = (outer * inner) as f32;
        let gd = grad.data();
        let xh = cached.x_hat.data();
        let mut gx = Tensor::zeros(&shape);
        let mut gbuf = vec![0.0f32; outer * inner];
        let mut ghbuf = vec![0.0f32; outer * inner];

        for c in 0..self.channels {
            let mut k = 0;
            for o in 0..outer {
                let base = o * stride + c * inner;
                for i in 0..inner {
                    gbuf[k] = gd[base + i];
                    ghbuf[k] = gd[base + i] * xh[base + i];
                    k += 1;
                }
            }
            let dbeta = blocked_sum(&gbuf, &ctx.profile);
            let dgamma = blocked_sum(&ghbuf, &ctx.profile);
            self.gbeta.data_mut()[c] += dbeta;
            self.ggamma.data_mut()[c] += dgamma;

            let g = self.gamma.data()[c];
            let istd = cached.inv_std[c];
            let gxd = gx.data_mut();
            let mut k = 0;
            for o in 0..outer {
                let base = o * stride + c * inner;
                for i in 0..inner {
                    // dx = gamma*istd * (g - dbeta/m - x_hat*dgamma/m)
                    gxd[base + i] = g * istd * (gbuf[k] - dbeta / m - xh[base + i] * dgamma / m);
                    k += 1;
                }
            }
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.ggamma, &self.gbeta]
    }

    fn zero_grads(&mut self) {
        self.ggamma.zero_();
        self.gbeta.zero_();
    }

    fn implicit_state(&self) -> Vec<Tensor> {
        vec![self.running_mean.clone(), self.running_var.clone()]
    }

    fn set_implicit_state(&mut self, state: &[Tensor]) {
        assert_eq!(state.len(), 2, "BatchNorm implicit state is (mean, var)");
        self.running_mean = state[0].clone();
        self.running_var = state[1].clone();
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{EsRng, StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn mk_rng() -> EsRng {
        EsRng::for_stream(3, StreamKey::global(StreamKind::ModelInit))
    }

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm::new(2);
        let mut rng = mk_rng();
        let data: Vec<f32> = (0..32).map(|_| rng.normal_f32() * 3.0 + 5.0).collect();
        let x = Tensor::from_vec(data, &[16, 2]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
        let y = bn.forward(&x, &mut ctx);
        for c in 0..2 {
            let vals: Vec<f32> = (0..16).map(|i| y.data()[i * 2 + c]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 16.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm::new(1);
        let x = Tensor::from_vec(vec![10.0; 8], &[8, 1]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
        for _ in 0..50 {
            bn.forward(&x, &mut ctx);
        }
        let (mean, _) = bn.running_stats();
        assert!(
            (mean.data()[0] - 10.0).abs() < 0.1,
            "running mean converges to 10: {}",
            mean.data()[0]
        );
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        // Seed running stats away from batch stats.
        bn.set_implicit_state(&[Tensor::from_slice(&[4.0]), Tensor::from_slice(&[4.0])]);
        let x = Tensor::from_vec(vec![4.0; 4], &[4, 1]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: false, dropout: &mut drng };
        let y = bn.forward(&x, &mut ctx);
        // (4-4)/sqrt(4+eps) = 0 for all entries.
        assert!(y.data().iter().all(|&v| v.abs() < 1e-6));
        // Eval must not move running stats.
        assert_eq!(bn.running_stats().0.data()[0], 4.0);
    }

    #[test]
    fn implicit_state_roundtrip() {
        let mut bn = BatchNorm::new(3);
        let mut rng = mk_rng();
        let x = Tensor::from_vec((0..24).map(|_| rng.normal_f32()).collect(), &[8, 3]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
        bn.forward(&x, &mut ctx);
        let state = bn.implicit_state();
        let mut bn2 = BatchNorm::new(3);
        bn2.set_implicit_state(&state);
        assert!(bn2.running_stats().0.bitwise_eq(bn.running_stats().0));
        assert!(bn2.running_stats().1.bitwise_eq(bn.running_stats().1));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm::new(2);
        let mut rng = mk_rng();
        let x = Tensor::from_vec((0..12).map(|_| rng.normal_f32()).collect(), &[6, 2]);

        // Loss = sum(y * w) for fixed random weights, so grads are nontrivial.
        let w: Vec<f32> = (0..12).map(|_| rng.normal_f32()).collect();
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            let mut fresh = BatchNorm::new(2);
            fresh.gamma = bn.gamma.clone();
            fresh.beta = bn.beta.clone();
            let mut drng = mk_rng();
            let mut ctx =
                ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
            let y = fresh.forward(x, &mut ctx);
            y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };

        let base = loss(&mut bn, &x);
        {
            let mut drng = mk_rng();
            let mut ctx =
                ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
            let y = bn.forward(&x, &mut ctx);
            let grad = Tensor::from_vec(w.clone(), y.shape());
            let gx = bn.backward(&grad, &mut ctx);

            let eps = 1e-3f32;
            for &xi in &[0usize, 5, 11] {
                let mut x2 = x.clone();
                x2.data_mut()[xi] += eps;
                let fd = (loss(&mut bn, &x2) - base) / eps;
                assert!((fd - gx.data()[xi]).abs() < 0.05, "dx[{xi}] fd {fd} vs {}", gx.data()[xi]);
            }
        }
        // gamma gradient FD.
        let eps = 1e-3f32;
        let analytic = bn.grads()[0].data()[0];
        bn.params_mut()[0].data_mut()[0] += eps;
        let bumped = loss(&mut bn, &x);
        let fd = (bumped - base) / eps;
        assert!((fd - analytic).abs() < 0.05, "dgamma fd {fd} vs {analytic}");
    }

    #[test]
    fn conv_shaped_input_accepted() {
        let mut bn = BatchNorm::new(3);
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
        let y = bn.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
        let gx = bn.backward(&Tensor::zeros(&[2, 3, 4, 4]), &mut ctx);
        assert_eq!(gx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "BatchNorm expects")]
    fn rejects_3d_input() {
        let mut bn = BatchNorm::new(3);
        let x = Tensor::zeros(&[2, 3, 4]);
        let mut drng = mk_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut drng };
        bn.forward(&x, &mut ctx);
    }
}

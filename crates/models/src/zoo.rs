//! Proxy-model constructors: a real trainable miniature network for each
//! workload family, sized for CPU-speed micro experiments.
//!
//! The proxies preserve what matters for determinism experiments: conv
//! models exercise conv + BatchNorm (implicit state, vendor-kernel
//! sensitivity), attention models exercise embedding + softmax + dropout
//! (RNG state), and MLPs exercise plain dense reductions.

use crate::attention::{Embedding, MeanPool, SelfAttention};
use crate::blocks::{Gelu, LayerNorm, Residual};
use crate::conv::Conv2d;
use crate::layers::{Dense, Dropout, Flatten, Relu};
use crate::model::Model;
use crate::norm::BatchNorm;
use crate::pool::{GlobalAvgPool, MaxPool2};
use crate::workloads::Workload;
use esrng::{EsRng, StreamKey, StreamKind};

/// What input a proxy consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// `[B, 3, 8, 8]` synthetic images, 10 classes.
    Image,
    /// `[B, 16]` token-id sequences over a 256-token vocabulary, 10 classes.
    Sequence,
}

/// Canonical image geometry of the proxies.
pub const IMAGE_SHAPE: [usize; 3] = [3, 8, 8];
/// Canonical sequence length.
pub const SEQ_LEN: usize = 16;
/// Canonical vocabulary size.
pub const VOCAB: usize = 256;
/// Class count of every proxy task.
pub const NUM_CLASSES: usize = 10;

/// Input kind each workload's proxy consumes.
pub fn input_kind(workload: Workload) -> InputKind {
    match workload {
        Workload::ShuffleNetV2
        | Workload::ResNet50
        | Workload::Vgg19
        | Workload::YoloV3
        | Workload::ResNet18 => InputKind::Image,
        Workload::NeuMF | Workload::Bert | Workload::Electra | Workload::SwinTransformer => {
            InputKind::Sequence
        }
    }
}

/// Build the proxy model for a workload, initialized from the global
/// `ModelInit` stream of `seed` — so every replica constructs bitwise-
/// identical initial parameters, exactly like seeding PyTorch before
/// `DistributedDataParallel` broadcasts.
pub fn build_proxy(workload: Workload, seed: u64) -> Model {
    let mut rng = EsRng::for_stream(seed, StreamKey::global(StreamKind::ModelInit));
    match workload {
        // Residual conv family (true skip connections + pooling).
        Workload::ResNet18 => resnet(&mut rng, 8, 16),
        Workload::ResNet50 => resnet(&mut rng, 12, 24),
        // Lightweight conv stack.
        Workload::ShuffleNetV2 => cnn(&mut rng, 6, 12),
        // VGG: plain (no skips) deeper conv stack with max pooling.
        Workload::Vgg19 => vgg(&mut rng, 16, 32),
        Workload::YoloV3 => cnn(&mut rng, 12, 16),
        // Embedding + MLP for the recommender.
        Workload::NeuMF => mlp(&mut rng),
        // Transformer block family (pre-LN residual attention).
        Workload::Bert | Workload::Electra | Workload::SwinTransformer => attention(&mut rng),
    }
}

/// ResNet-style: stem conv → residual block → maxpool → conv → GAP → head,
/// for `[B,3,8,8]`.
fn resnet(rng: &mut EsRng, c1: usize, c2: usize) -> Model {
    Model::new(vec![
        Box::new(Conv2d::init(3, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c1)),
        Box::new(Relu::new()),
        Box::new(Residual::new(vec![
            Box::new(Conv2d::init(c1, c1, 3, 1, 1, rng)),
            Box::new(BatchNorm::new(c1)),
            Box::new(Relu::new()),
        ])),
        Box::new(MaxPool2::new()),
        Box::new(Conv2d::init(c1, c2, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c2)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Dense::init(c2, NUM_CLASSES, rng)),
    ])
}

/// Two conv-BN-ReLU blocks (second strided) + dense head, for `[B,3,8,8]`.
fn cnn(rng: &mut EsRng, c1: usize, c2: usize) -> Model {
    Model::new(vec![
        Box::new(Conv2d::init(3, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::init(c1, c2, 3, 2, 1, rng)),
        Box::new(BatchNorm::new(c2)),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::init(c2 * 4 * 4, NUM_CLASSES, rng)),
    ])
}

/// VGG-style plain stack: conv-conv-pool-conv + dense head, no skips.
fn vgg(rng: &mut EsRng, c1: usize, c2: usize) -> Model {
    Model::new(vec![
        Box::new(Conv2d::init(3, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::init(c1, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c1)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new()),
        Box::new(Conv2d::init(c1, c2, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(c2)),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::init(c2 * 4 * 4, NUM_CLASSES, rng)),
    ])
}

/// NeuMF-style recommender: embedding lookup + mean-pool + 2-layer MLP with
/// dropout (neural collaborative filtering's embedding-then-MLP shape).
fn mlp(rng: &mut EsRng) -> Model {
    let dim = 16;
    Model::new(vec![
        Box::new(Embedding::init(VOCAB, dim, rng)),
        Box::new(MeanPool::new()),
        Box::new(Dense::init(dim, 64, rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.2)),
        Box::new(Dense::init(64, NUM_CLASSES, rng)),
    ])
}

/// Transformer block: embedding → pre-LN residual attention → LayerNorm →
/// mean-pool → GELU MLP head with dropout, for `[B,16]` token sequences.
fn attention(rng: &mut EsRng) -> Model {
    let dim = 16;
    Model::new(vec![
        Box::new(Embedding::init(VOCAB, dim, rng)),
        Box::new(Residual::new(vec![
            Box::new(LayerNorm::new(dim)),
            Box::new(SelfAttention::init(dim, rng)),
        ])),
        Box::new(LayerNorm::new(dim)),
        Box::new(MeanPool::new()),
        Box::new(Dense::init(dim, 32, rng)),
        Box::new(Gelu::new()),
        Box::new(Dropout::new(0.1)),
        Box::new(Dense::init(32, NUM_CLASSES, rng)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ExecCtx;
    use tensor::{KernelProfile, Tensor};

    fn drng() -> EsRng {
        EsRng::for_stream(0, StreamKey::ranked(StreamKind::Dropout, 0))
    }

    #[test]
    fn proxies_build_and_run() {
        for w in crate::WORKLOADS {
            let mut m = build_proxy(w, 1);
            let x = match input_kind(w) {
                InputKind::Image => Tensor::zeros(&[2, 3, 8, 8]),
                InputKind::Sequence => Tensor::from_vec(vec![1.0; 2 * SEQ_LEN], &[2, SEQ_LEN]),
            };
            let mut rng = drng();
            let mut ctx =
                ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut rng };
            let y = m.forward(&x, &mut ctx);
            assert_eq!(y.shape(), &[2, NUM_CLASSES], "{}", w.name());
            let gx = m.backward(&Tensor::zeros(&[2, NUM_CLASSES]), &mut ctx);
            assert_eq!(gx.shape()[0], 2, "{}", w.name());
        }
    }

    #[test]
    fn same_seed_same_initialization() {
        let a = build_proxy(Workload::ResNet18, 7);
        let b = build_proxy(Workload::ResNet18, 7);
        assert_eq!(a.flat_params(), b.flat_params());
        let c = build_proxy(Workload::ResNet18, 8);
        assert_ne!(a.flat_params(), c.flat_params());
    }

    #[test]
    fn conv_scan_identifies_families() {
        assert!(build_proxy(Workload::ResNet50, 1).uses_conv());
        assert!(build_proxy(Workload::Vgg19, 1).uses_conv());
        assert!(!build_proxy(Workload::Bert, 1).uses_conv());
        assert!(!build_proxy(Workload::NeuMF, 1).uses_conv());
    }

    #[test]
    fn conv_proxies_have_batchnorm_implicit_state() {
        let m = build_proxy(Workload::ResNet18, 1);
        let state = m.implicit_state();
        let non_empty = state.per_layer.iter().filter(|s| !s.is_empty()).count();
        // Stem BN, residual-body BN (surfaced through the block), final BN.
        assert_eq!(non_empty, 3, "three BatchNorm layers carry running stats");
    }
}

//! Spatial pooling layers with deterministic backward passes.
//!
//! Max pooling backward is a scatter of gradients to argmax positions; ties
//! are broken toward the first (row-major) maximum — a fixed rule, so the
//! op is deterministic without needing a kernel profile. Average pooling's
//! small fixed-size window sums are done in index order.

use crate::model::{ExecCtx, Layer};
use tensor::Tensor;

/// 2×2 stride-2 max pooling over `[B, C, H, W]` (H, W even).
pub struct MaxPool2 {
    cached: Option<PoolCache>,
}

struct PoolCache {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2 {
    /// New 2×2 max pool.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        MaxPool2 { cached: None }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "MaxPool2 expects [B,C,H,W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool2 needs even spatial dims, got {h}x{w}");
        let (oh, ow) = (h / 2, w / 2);
        let xd = x.data();
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        {
            let od = out.data_mut();
            for bi in 0..b {
                for ci in 0..c {
                    let plane = (bi * c + ci) * h * w;
                    let oplane = (bi * c + ci) * oh * ow;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best_idx = plane + (2 * oy) * w + 2 * ox;
                            let mut best = xd[best_idx];
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let idx = plane + (2 * oy + dy) * w + 2 * ox + dx;
                                    // Strict > keeps the FIRST maximum on
                                    // ties: a fixed, placement-independent
                                    // rule.
                                    if xd[idx] > best {
                                        best = xd[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            od[oplane + oy * ow + ox] = best;
                            argmax[oplane + oy * ow + ox] = best_idx;
                        }
                    }
                }
            }
        }
        self.cached = Some(PoolCache { argmax, in_shape: s.to_vec() });
        out
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let cache = self.cached.take().expect("backward before forward");
        let mut gx = Tensor::zeros(&cache.in_shape);
        let gxd = gx.data_mut();
        for (g, &idx) in grad.data().iter().zip(&cache.argmax) {
            gxd[idx] += g;
        }
        gx
    }

    fn name(&self) -> &'static str {
        "MaxPool2"
    }
}

/// Global average pooling: `[B, C, H, W]` → `[B, C]`.
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// New global average pool.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        GlobalAvgPool { cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "GlobalAvgPool expects [B,C,H,W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        let spatial = h * w;
        let xd = x.data();
        let mut out = Tensor::zeros(&[b, c]);
        let od = out.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * spatial;
                od[bi * c + ci] =
                    tensor::ops::blocked_sum(&xd[plane..plane + spatial], &ctx.profile)
                        / spatial as f32;
            }
        }
        self.cached_shape = Some(s.to_vec());
        out
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = self.cached_shape.take().expect("backward before forward");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(grad.shape(), &[b, c]);
        let spatial = h * w;
        let inv = 1.0 / spatial as f32;
        let mut gx = Tensor::zeros(&s);
        let gxd = gx.data_mut();
        let gd = grad.data();
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * spatial;
                let g = gd[bi * c + ci] * inv;
                for p in 0..spatial {
                    gxd[plane + p] = g;
                }
            }
        }
        gx
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{EsRng, StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn mk_ctx(rng: &mut EsRng) -> ExecCtx<'_> {
        ExecCtx { profile: KernelProfile::default(), training: true, dropout: rng }
    }

    fn rng() -> EsRng {
        EsRng::for_stream(1, StreamKey::global(StreamKind::ModelInit))
    }

    #[test]
    fn maxpool_picks_maxima() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let mut r = rng();
        let mut ctx = mk_ctx(&mut r);
        let y = p.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let mut r = rng();
        let mut ctx = mk_ctx(&mut r);
        p.forward(&x, &mut ctx);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let gx = p.backward(&g, &mut ctx);
        // Maxima were at positions 5, 7, 13, 15.
        let mut expect = [0.0f32; 16];
        expect[5] = 1.0;
        expect[7] = 2.0;
        expect[13] = 3.0;
        expect[15] = 4.0;
        assert_eq!(gx.data(), &expect[..]);
    }

    #[test]
    fn maxpool_tie_break_is_first_position() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(vec![5.0, 5.0, 0.0, 0.0, 5.0, 5.0, 0.0, 0.0], &[1, 1, 2, 4]);
        let mut r = rng();
        let mut ctx = mk_ctx(&mut r);
        p.forward(&x, &mut ctx);
        let gx = p.backward(&Tensor::from_vec(vec![1.0, 1.0], &[1, 1, 1, 2]), &mut ctx);
        // All four left-window values tie at 5.0; gradient goes to index 0.
        assert_eq!(gx.data()[0], 1.0);
        assert_eq!(gx.data()[1], 0.0);
        assert_eq!(gx.data()[4], 0.0);
    }

    #[test]
    fn gap_averages_and_distributes() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]);
        let mut r = rng();
        let mut ctx = mk_ctx(&mut r);
        let y = p.forward(&x, &mut ctx);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let gx = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]), &mut ctx);
        assert!(gx.data()[..4].iter().all(|&v| v == 1.0));
        assert!(gx.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn maxpool_rejects_odd_dims() {
        let mut p = MaxPool2::new();
        let x = Tensor::zeros(&[1, 1, 3, 4]);
        let mut r = rng();
        let mut ctx = mk_ctx(&mut r);
        p.forward(&x, &mut ctx);
    }
}

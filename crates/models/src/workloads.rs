//! The Table 1 workload catalog, with the cost/memory/D2 metadata the
//! scheduling and overhead experiments consume.
//!
//! Absolute numbers are calibrated to reproduce the paper's *shapes*:
//! Fig 10's OOM points (worker packing dies past 8 ResNet50 workers / past 2
//! ShuffleNetV2 workers on a 32 GB V100), Fig 12's D2 overhead split (~236%
//! average on the four conv models, <1% on the four attention/embedding
//! models), and the Eq 1 throughput model's per-GPU-type capabilities.

use device::memory::WorkloadFootprint;
use device::{GpuType, PerfModel};
use serde::{Deserialize, Serialize};

/// The DL workloads of Table 1 (plus ResNet18, used by the motivation
/// experiments in Figs 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// ShuffleNetv2 / ImageNet.
    ShuffleNetV2,
    /// ResNet50 / ImageNet.
    ResNet50,
    /// VGG19 / ImageNet.
    Vgg19,
    /// YOLOv3 / PASCAL VOC.
    YoloV3,
    /// NeuMF / MovieLens.
    NeuMF,
    /// BERT / SQuAD.
    Bert,
    /// ELECTRA / SQuAD.
    Electra,
    /// SwinTransformer / ImageNet.
    SwinTransformer,
    /// ResNet18 / CIFAR10 (motivation experiments, Figs 2–4).
    ResNet18,
}

/// The eight Table 1 workloads, in the paper's order.
pub const WORKLOADS: [Workload; 8] = [
    Workload::ShuffleNetV2,
    Workload::ResNet50,
    Workload::Vgg19,
    Workload::YoloV3,
    Workload::NeuMF,
    Workload::Bert,
    Workload::Electra,
    Workload::SwinTransformer,
];

/// Static metadata for one workload.
///
/// `Serialize`-only: the `&'static str` columns point into the compiled-in
/// Table 1 catalog, so a spec is looked up via [`Workload::spec`] rather
/// than deserialized (and `&'static str` has no `Deserialize` impl anyway).
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadSpec {
    /// Which workload.
    pub workload: Workload,
    /// Task column of Table 1.
    pub task: &'static str,
    /// Dataset column of Table 1.
    pub dataset: &'static str,
    /// Whether the model leans on vendor-optimized convolution kernels
    /// (EasyScale's model scan; decides D2 overhead and hetero-eligibility).
    pub conv_dependent: bool,
    /// Per-iteration time multiplier when D2 hardware-agnostic kernels
    /// replace vendor kernels (Fig 12).
    pub d2_overhead: f64,
    /// Reference mini-batch time on a V100 with vendor kernels, seconds.
    pub base_v100_secs: f64,
    /// Default per-worker batch size.
    pub batch_size: usize,
    /// Default maximum number of ESTs (maxP) declared at model design time.
    pub max_p: u32,
    /// Device memory footprint per worker.
    pub footprint: WorkloadFootprint,
}

const MIB: u64 = 1024 * 1024;

impl Workload {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ShuffleNetV2 => "ShuffleNetv2",
            Workload::ResNet50 => "ResNet50",
            Workload::Vgg19 => "VGG19",
            Workload::YoloV3 => "YOLOv3",
            Workload::NeuMF => "NeuMF",
            Workload::Bert => "Bert",
            Workload::Electra => "Electra",
            Workload::SwinTransformer => "SwinTransformer",
            Workload::ResNet18 => "ResNet18",
        }
    }

    /// The catalog entry.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Workload::ShuffleNetV2 => WorkloadSpec {
                workload: self,
                task: "Image Classification",
                dataset: "ImageNet",
                conv_dependent: true,
                d2_overhead: 2.8,
                base_v100_secs: 0.35,
                batch_size: 512,
                max_p: 16,
                // Batch 512 "fully utilizes" a 32 GB V100 with one worker:
                // huge activations, tiny parameters.
                footprint: WorkloadFootprint {
                    params_and_opt: 60 * MIB,
                    activations: 12 * 1024 * MIB,
                    gradients: 20 * MIB,
                },
            },
            Workload::ResNet50 => WorkloadSpec {
                workload: self,
                task: "Image Classification",
                dataset: "ImageNet",
                conv_dependent: true,
                d2_overhead: 3.4,
                base_v100_secs: 0.12,
                batch_size: 32,
                max_p: 16,
                footprint: WorkloadFootprint {
                    params_and_opt: 300 * MIB,
                    activations: 2600 * MIB,
                    gradients: 100 * MIB,
                },
            },
            Workload::Vgg19 => WorkloadSpec {
                workload: self,
                task: "Image Classification",
                dataset: "ImageNet",
                conv_dependent: true,
                d2_overhead: 4.5,
                base_v100_secs: 0.30,
                batch_size: 32,
                max_p: 8,
                footprint: WorkloadFootprint {
                    params_and_opt: 1600 * MIB,
                    activations: 3200 * MIB,
                    gradients: 550 * MIB,
                },
            },
            Workload::YoloV3 => WorkloadSpec {
                workload: self,
                task: "Object Detection",
                dataset: "PASCAL",
                conv_dependent: true,
                d2_overhead: 2.7,
                base_v100_secs: 0.25,
                batch_size: 16,
                max_p: 8,
                footprint: WorkloadFootprint {
                    params_and_opt: 700 * MIB,
                    activations: 4000 * MIB,
                    gradients: 240 * MIB,
                },
            },
            Workload::NeuMF => WorkloadSpec {
                workload: self,
                task: "Recommendation",
                dataset: "MovieLens",
                conv_dependent: false,
                d2_overhead: 1.005,
                base_v100_secs: 0.02,
                batch_size: 256,
                max_p: 16,
                footprint: WorkloadFootprint {
                    params_and_opt: 250 * MIB,
                    activations: 500 * MIB,
                    gradients: 80 * MIB,
                },
            },
            Workload::Bert => WorkloadSpec {
                workload: self,
                task: "Question Answering",
                dataset: "SQuAD",
                conv_dependent: false,
                d2_overhead: 1.008,
                base_v100_secs: 0.15,
                batch_size: 16,
                max_p: 8,
                footprint: WorkloadFootprint {
                    params_and_opt: 1300 * MIB,
                    activations: 5000 * MIB,
                    gradients: 420 * MIB,
                },
            },
            Workload::Electra => WorkloadSpec {
                workload: self,
                task: "Question Answering",
                dataset: "SQuAD",
                conv_dependent: false,
                d2_overhead: 1.01,
                base_v100_secs: 0.16,
                batch_size: 16,
                max_p: 8,
                footprint: WorkloadFootprint {
                    params_and_opt: 1300 * MIB,
                    activations: 5200 * MIB,
                    gradients: 420 * MIB,
                },
            },
            Workload::SwinTransformer => WorkloadSpec {
                workload: self,
                task: "Image Classification",
                dataset: "ImageNet",
                conv_dependent: false,
                d2_overhead: 1.006,
                base_v100_secs: 0.20,
                batch_size: 32,
                max_p: 8,
                footprint: WorkloadFootprint {
                    params_and_opt: 900 * MIB,
                    activations: 6000 * MIB,
                    gradients: 300 * MIB,
                },
            },
            Workload::ResNet18 => WorkloadSpec {
                workload: self,
                task: "Image Classification",
                dataset: "CIFAR10",
                conv_dependent: true,
                d2_overhead: 3.0,
                base_v100_secs: 0.06,
                batch_size: 32,
                max_p: 16,
                footprint: WorkloadFootprint {
                    params_and_opt: 140 * MIB,
                    activations: 900 * MIB,
                    gradients: 45 * MIB,
                },
            },
        }
    }
}

impl WorkloadSpec {
    /// Mini-batches per second one worker achieves on `gpu` — the `C_i` of
    /// the companion module's Eq 1 throughput model.
    pub fn capability(&self, gpu: GpuType, d2_kernels: bool) -> f64 {
        let overhead = if d2_kernels && self.conv_dependent { self.d2_overhead } else { 1.0 };
        1.0 / PerfModel::default().minibatch_time(self.base_v100_secs, gpu, overhead)
    }

    /// Whether EasyScale's model scan allows this job on heterogeneous GPUs
    /// without a conv-kernel slowdown: attention/embedding models yes, conv
    /// models only at a price (§3.3's auto-analysis).
    pub fn hetero_friendly(&self) -> bool {
        !self.conv_dependent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_table1_entries() {
        assert_eq!(WORKLOADS.len(), 8);
        let names: std::collections::HashSet<_> = WORKLOADS.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn conv_split_matches_fig12() {
        // Conv models: ShuffleNetv2, ResNet50, VGG19, YOLOv3. Others ~free.
        let conv: Vec<_> = WORKLOADS.iter().filter(|w| w.spec().conv_dependent).collect();
        assert_eq!(conv.len(), 4);
        let avg: f64 = conv.iter().map(|w| w.spec().d2_overhead).sum::<f64>() / conv.len() as f64;
        assert!((avg - 3.36).abs() < 0.3, "average conv D2 overhead ≈236%: {avg}");
        for w in WORKLOADS.iter().filter(|w| !w.spec().conv_dependent) {
            assert!(w.spec().d2_overhead < 1.02, "{} should be <1% overhead", w.name());
        }
    }

    #[test]
    fn fig10_oom_points() {
        use device::GIB;
        let v100 = GpuType::V100.memory_bytes();
        let r50 = Workload::ResNet50.spec().footprint;
        assert!(r50.packed_peak(8) <= v100, "8 packed ResNet50 workers fit");
        assert!(r50.packed_peak(9) > v100, "9 packed ResNet50 workers OOM");
        assert!(r50.easyscale_peak(16) <= v100, "16 ESTs always fit");

        let shfl = Workload::ShuffleNetV2.spec().footprint;
        assert!(shfl.packed_peak(2) <= v100, "2 packed ShuffleNet workers fit");
        assert!(shfl.packed_peak(3) > v100, "3 packed ShuffleNet workers OOM");
        assert!(shfl.easyscale_peak(16) <= v100);
        // One ShuffleNet worker "fully utilizes" the V100: > 1/3 of memory.
        assert!(shfl.packed_peak(1) > 10 * GIB);
    }

    #[test]
    fn capability_ordering_follows_gpu_speed() {
        for w in WORKLOADS {
            let s = w.spec();
            let v = s.capability(GpuType::V100, false);
            let p = s.capability(GpuType::P100, false);
            let t = s.capability(GpuType::T4, false);
            assert!(v > p && p > t, "{}", w.name());
        }
    }

    #[test]
    fn d2_kernels_only_hurt_conv_models() {
        let r50 = Workload::ResNet50.spec();
        assert!(r50.capability(GpuType::V100, true) < r50.capability(GpuType::V100, false) / 3.0);
        let bert = Workload::Bert.spec();
        let ratio = bert.capability(GpuType::V100, false) / bert.capability(GpuType::V100, true);
        assert!(ratio < 1.02);
    }

    #[test]
    fn hetero_friendliness_matches_conv_scan() {
        assert!(!Workload::ResNet50.spec().hetero_friendly());
        assert!(Workload::Bert.spec().hetero_friendly());
    }
}

//! 2-D convolution layer (im2col + matmul formulation).
//!
//! This is the layer whose vendor-optimized kernels the paper's D2 analysis
//! is about: its forward/backward matmuls inherit their accumulation order
//! from the `KernelProfile`, so the same weights on "different GPUs"
//! (different vendor profiles) produce different bits unless the hardware-
//! agnostic profile is pinned.

use crate::model::{ExecCtx, Layer};
use esrng::EsRng;
use tensor::ops::{self, ConvGeom};
use tensor::Tensor;

/// Conv2d: input `[B, cin, h, w]` → output `[B, cout, oh, ow]`.
pub struct Conv2d {
    /// `[cout, cin*k*k]` (pre-flattened for the im2col matmul).
    weight: Tensor,
    bias: Tensor,
    gw: Tensor,
    gb: Tensor,
    cin: usize,
    cout: usize,
    geom: ConvGeom,
    cached: Option<Cached>,
}

struct Cached {
    cols: Vec<Tensor>,
    in_h: usize,
    in_w: usize,
    batch: usize,
}

impl Conv2d {
    /// Kaiming-uniform initialized convolution.
    pub fn init(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut EsRng,
    ) -> Self {
        let fan_in = cin * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let weight = Tensor::from_vec(
            (0..cout * fan_in).map(|_| rng.uniform_range_f32(-bound, bound)).collect(),
            &[cout, fan_in],
        );
        Conv2d {
            gw: Tensor::zeros(&[cout, fan_in]),
            gb: Tensor::zeros(&[cout]),
            bias: Tensor::zeros(&[cout]),
            weight,
            cin,
            cout,
            geom: ConvGeom { kernel, stride, pad },
            cached: None,
        }
    }

    /// Output spatial dims for an input of `(h, w)`.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        (self.geom.out_size(h), self.geom.out_size(w))
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "Conv2d expects [B,cin,h,w], got {s:?}");
        assert_eq!(s[1], self.cin, "channel mismatch");
        let (b, h, w) = (s[0], s[2], s[3]);
        let (oh, ow) = self.out_dims(h, w);
        let plane = self.cin * h * w;
        let mut out = Tensor::zeros(&[b, self.cout, oh, ow]);
        let mut cols = Vec::with_capacity(b);
        {
            let od = out.data_mut();
            let out_plane = self.cout * oh * ow;
            for i in 0..b {
                let sample = Tensor::from_vec(
                    x.data()[i * plane..(i + 1) * plane].to_vec(),
                    &[self.cin, h, w],
                );
                let col = ops::im2col(&sample, self.geom);
                let y = ops::matmul(&self.weight, &col, &ctx.profile);
                let yd = y.data();
                let dst = &mut od[i * out_plane..(i + 1) * out_plane];
                let spatial = oh * ow;
                for c in 0..self.cout {
                    let bias = self.bias.data()[c];
                    for p in 0..spatial {
                        dst[c * spatial + p] = yd[c * spatial + p] + bias;
                    }
                }
                cols.push(col);
            }
        }
        self.cached = Some(Cached { cols, in_h: h, in_w: w, batch: b });
        out
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let cached = self.cached.take().expect("backward before forward");
        let (b, h, w) = (cached.batch, cached.in_h, cached.in_w);
        let (oh, ow) = self.out_dims(h, w);
        let spatial = oh * ow;
        let out_plane = self.cout * spatial;
        let in_plane = self.cin * h * w;
        assert_eq!(grad.shape(), &[b, self.cout, oh, ow], "grad shape mismatch");

        let mut gx = Tensor::zeros(&[b, self.cin, h, w]);
        for i in 0..b {
            let g = Tensor::from_vec(
                grad.data()[i * out_plane..(i + 1) * out_plane].to_vec(),
                &[self.cout, spatial],
            );
            // dW += g · colᵀ   ([cout, spatial]·[spatial, cin·k²]).
            let dw = ops::matmul_a_bt(&g, &cached.cols[i], &ctx.profile);
            self.gw.axpy_(1.0, &dw);
            // db += row sums of g.
            {
                let gbd = self.gb.data_mut();
                let gd = g.data();
                for c in 0..self.cout {
                    gbd[c] += ops::blocked_sum(&gd[c * spatial..(c + 1) * spatial], &ctx.profile);
                }
            }
            // dcol = Wᵀ · g, then fold back with col2im.
            let dcol = ops::matmul_at_b(&self.weight, &g, &ctx.profile);
            let dx = ops::col2im(&dcol, self.cin, h, w, self.geom);
            gx.data_mut()[i * in_plane..(i + 1) * in_plane].copy_from_slice(dx.data());
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn zero_grads(&mut self) {
        self.gw.zero_();
        self.gb.zero_();
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn uses_conv(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn init_rng() -> EsRng {
        EsRng::for_stream(2, StreamKey::global(StreamKind::ModelInit))
    }

    fn mk_ctx(rng: &mut EsRng) -> ExecCtx<'_> {
        ExecCtx { profile: KernelProfile::default(), training: true, dropout: rng }
    }

    #[test]
    fn forward_shape() {
        let mut rng = init_rng();
        let mut conv = Conv2d::init(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let mut drng = init_rng();
        let mut ctx = mk_ctx(&mut drng);
        let y = conv.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn strided_forward_shrinks() {
        let mut rng = init_rng();
        let mut conv = Conv2d::init(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let mut drng = init_rng();
        let mut ctx = mk_ctx(&mut drng);
        let y = conv.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = init_rng();
        let mut conv = Conv2d::init(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 2 * 4 * 4).map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.6).collect(),
            &[2, 2, 4, 4],
        );

        let loss = |conv: &mut Conv2d, x: &Tensor| -> f32 {
            let mut drng = init_rng();
            let mut ctx = mk_ctx(&mut drng);
            let y = conv.forward(x, &mut ctx);
            y.data().iter().sum()
        };

        let base = loss(&mut conv, &x);
        {
            let mut drng = init_rng();
            let mut ctx = mk_ctx(&mut drng);
            let y = conv.forward(&x, &mut ctx);
            conv.backward(&Tensor::full(y.shape(), 1.0), &mut ctx);
        }
        let eps = 1e-2f32;

        // Check a few weight entries.
        for &wi in &[0usize, 5, 17] {
            let analytic = conv.grads()[0].data()[wi];
            conv.params_mut()[0].data_mut()[wi] += eps;
            let bumped = loss(&mut conv, &x);
            conv.params_mut()[0].data_mut()[wi] -= eps;
            let fd = (bumped - base) / eps;
            assert!((fd - analytic).abs() < 0.05, "dW[{wi}] fd {fd} vs {analytic}");
        }

        // Bias gradient: dL/db_c = number of output positions = B*oh*ow.
        let expected = (2 * 4 * 4) as f32;
        for c in 0..3 {
            let got = conv.grads()[1].data()[c];
            assert!((got - expected).abs() < 1e-3, "db[{c}] = {got}, want {expected}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = init_rng();
        let mut conv = Conv2d::init(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), &[1, 1, 4, 4]);
        let mut drng = init_rng();
        let mut ctx = mk_ctx(&mut drng);
        let y = conv.forward(&x, &mut ctx);
        let gx = conv.backward(&Tensor::full(y.shape(), 1.0), &mut ctx);

        let loss = |conv: &mut Conv2d, x: &Tensor| -> f32 {
            let mut drng = init_rng();
            let mut ctx = mk_ctx(&mut drng);
            conv.forward(x, &mut ctx).data().iter().sum()
        };
        let base = loss(&mut conv, &x);
        let eps = 1e-2f32;
        for &xi in &[0usize, 5, 10, 15] {
            let mut x2 = x.clone();
            x2.data_mut()[xi] += eps;
            let fd = (loss(&mut conv, &x2) - base) / eps;
            assert!((fd - gx.data()[xi]).abs() < 0.05, "dx[{xi}] fd {fd} vs {}", gx.data()[xi]);
        }
    }

    #[test]
    fn profile_changes_conv_bits() {
        let mut rng = init_rng();
        let mut conv = Conv2d::init(3, 16, 3, 1, 1, &mut rng);
        let x = Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32).sin() * 10f32.powi((i % 5) - 2)).collect(),
            &[1, 3, 8, 8],
        );
        let run = |conv: &mut Conv2d, profile: KernelProfile| {
            let mut drng = init_rng();
            let mut ctx = ExecCtx { profile, training: true, dropout: &mut drng };
            conv.forward(&x, &mut ctx)
        };
        let y_v100 = run(&mut conv, KernelProfile::vendor_optimized(80));
        let y_t4 = run(&mut conv, KernelProfile::vendor_optimized(40));
        assert!(!y_v100.bitwise_eq(&y_t4), "vendor kernels must differ across GPU types");
        assert!(y_v100.max_abs_diff(&y_t4) < 1e-3, "but only in low-order bits");
        let y_agn1 = run(&mut conv, KernelProfile::hardware_agnostic());
        let y_agn2 = run(&mut conv, KernelProfile::hardware_agnostic());
        assert!(y_agn1.bitwise_eq(&y_agn2));
    }

    #[test]
    fn conv_reports_conv_usage() {
        let mut rng = init_rng();
        let conv = Conv2d::init(1, 1, 3, 1, 1, &mut rng);
        assert!(conv.uses_conv());
    }
}

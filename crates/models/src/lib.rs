//! Trainable miniature networks and the paper's workload catalog.
//!
//! Two audiences share this crate:
//!
//! * The **micro determinism experiments** (Figs 2–4, 9–13) need *real
//!   numerics*: actual forward/backward passes whose f32 bits respond to
//!   kernel profiles, RNG streams, and gradient-aggregation order. The
//!   [`model`] / [`layers`] / [`conv`] / [`norm`] / [`attention`] modules
//!   provide that: a small layer library with hand-derived backward passes,
//!   every reduction routed through a [`tensor::KernelProfile`].
//!
//! * The **scheduling experiments** (Figs 14–16) need *cost models*, not
//!   numerics: per-GPU-type throughput, memory footprints, D2 kernel
//!   overheads. [`workloads`] carries the Table 1 catalog with that
//!   metadata, plus a proxy-model constructor for each entry so micro and
//!   macro experiments stay linked.

#![deny(missing_docs)]

pub mod attention;
pub mod blocks;
pub mod conv;
pub mod layers;
pub mod model;
pub mod norm;
pub mod pool;
pub mod workloads;
pub mod zoo;

pub use model::{ExecCtx, ImplicitState, Layer, Model};
pub use workloads::{Workload, WorkloadSpec, WORKLOADS};

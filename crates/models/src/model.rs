//! The sequential model container, execution context, and implicit state.

use esrng::EsRng;
use serde::{Deserialize, Serialize};
use tensor::{KernelProfile, Tensor};

/// Execution context for a forward/backward pass: the kernel profile
/// (accumulation-order policy), the training/eval switch, and the dropout
/// generator — which belongs to the *EST*, not the model, because it is part
/// of the per-logical-worker state that must move with the EST.
pub struct ExecCtx<'a> {
    /// Kernel profile every reduction in the pass uses.
    pub profile: KernelProfile,
    /// Training mode (dropout active, BatchNorm uses batch stats).
    pub training: bool,
    /// Dropout mask generator (owned by the calling EST).
    pub dropout: &'a mut EsRng,
}

/// A differentiable layer. `forward` caches whatever `backward` needs; the
/// pair must be called in strict alternation (standard tape-free reverse
/// mode for a sequential network). Parameter gradients accumulate inside the
/// layer until [`Layer::zero_grads`].
pub trait Layer: Send {
    /// Forward pass.
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor;
    /// Backward pass: takes dL/d(output), returns dL/d(input), accumulates
    /// parameter gradients.
    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor;
    /// Learnable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }
    /// Mutable learnable parameters, same order as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }
    /// Accumulated gradients, same order as [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }
    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}
    /// Implicit (non-learnable, per-replica) state — BatchNorm running
    /// stats. Part of the EST context, not of the shared parameters.
    fn implicit_state(&self) -> Vec<Tensor> {
        Vec::new()
    }
    /// Restore implicit state captured by [`Layer::implicit_state`].
    fn set_implicit_state(&mut self, state: &[Tensor]) {
        assert!(state.is_empty(), "layer {} has no implicit state", self.name());
    }
    /// Human-readable layer kind.
    fn name(&self) -> &'static str;
    /// Whether the layer's forward relies on convolution kernels (drives the
    /// paper's D2 vendor-kernel analysis).
    fn uses_conv(&self) -> bool {
        false
    }
}

/// Implicit per-replica state of a whole model (the BatchNorm running stats
/// of every layer, in layer order). Saved inside EST contexts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplicitState {
    /// Per-layer captured tensors (empty vectors for stateless layers).
    pub per_layer: Vec<Vec<Tensor>>,
}

/// A sequential stack of layers.
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
}

impl Model {
    /// Build from layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Model { layers }
    }

    /// Layer count.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward through all layers.
    pub fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, ctx);
        }
        cur
    }

    /// Backward through all layers (reverse order), accumulating gradients.
    pub fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur, ctx);
        }
        cur
    }

    /// Zero all parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Total parameter element count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().flat_map(|l| l.params()).map(|p| p.len()).sum()
    }

    /// Flatten all parameters into one vector. Order: **reverse layer order**
    /// (the "reversed topological order of the computation graph" PyTorch
    /// DDP uses to lay out gradient buckets), parameters within a layer in
    /// declaration order.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in self.layers.iter().rev() {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Flatten all gradients, same order as [`Model::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in self.layers.iter().rev() {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Sizes of each parameter tensor in flat order — the unit the gradient
    /// bucketer maps into buckets.
    pub fn param_sizes(&self) -> Vec<usize> {
        self.layers.iter().rev().flat_map(|l| l.params().into_iter().map(|p| p.len())).collect()
    }

    /// Load a flat parameter vector (inverse of [`Model::flat_params`]).
    pub fn load_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        for layer in self.layers.iter_mut().rev() {
            for p in layer.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            }
        }
        assert_eq!(off, flat.len(), "flat parameter vector has wrong length");
    }

    /// Apply `update[i]` to parameter element `i` (flat order):
    /// `p[i] += update[i]`. Used by optimizers operating on flat vectors.
    pub fn apply_flat_delta(&mut self, delta: &[f32]) {
        let mut off = 0;
        for layer in self.layers.iter_mut().rev() {
            for p in layer.params_mut() {
                let n = p.len();
                for (x, d) in p.data_mut().iter_mut().zip(&delta[off..off + n]) {
                    // Elementwise update, one addend per element.
                    // detlint::allow(no-raw-float-accum): no reduction order
                    *x += d;
                }
                off += n;
            }
        }
        assert_eq!(off, delta.len(), "flat delta vector has wrong length");
    }

    /// Capture implicit (per-replica) state — BatchNorm running stats.
    pub fn implicit_state(&self) -> ImplicitState {
        ImplicitState { per_layer: self.layers.iter().map(|l| l.implicit_state()).collect() }
    }

    /// Restore implicit state.
    pub fn set_implicit_state(&mut self, state: &ImplicitState) {
        assert_eq!(state.per_layer.len(), self.layers.len(), "implicit state layer count mismatch");
        for (layer, s) in self.layers.iter_mut().zip(&state.per_layer) {
            layer.set_implicit_state(s);
        }
    }

    /// Whether any layer relies on convolution kernels — the model scan
    /// EasyScale performs to decide if D2 (heterogeneous GPUs) is safe
    /// without vendor-kernel slowdown considerations (§3.3).
    pub fn uses_conv(&self) -> bool {
        self.layers.iter().any(|l| l.uses_conv())
    }

    /// Layer kind names, for diagnostics.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use esrng::{StreamKey, StreamKind};

    fn ctx_rng() -> EsRng {
        EsRng::for_stream(0, StreamKey::ranked(StreamKind::Dropout, 0))
    }

    fn tiny_model() -> Model {
        let mut rng = EsRng::for_stream(1, StreamKey::global(StreamKind::ModelInit));
        Model::new(vec![
            Box::new(Dense::init(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::init(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut m = tiny_model();
        let flat = m.flat_params();
        assert_eq!(flat.len(), m.num_params());
        let mut scaled: Vec<f32> = flat.iter().map(|x| x * 2.0).collect();
        m.load_flat_params(&scaled);
        let back = m.flat_params();
        assert_eq!(back, scaled);
        // apply_flat_delta adds elementwise.
        let delta = vec![1.0f32; scaled.len()];
        m.apply_flat_delta(&delta);
        for (a, b) in m.flat_params().iter().zip(scaled.iter_mut()) {
            assert_eq!(*a, *b + 1.0);
        }
    }

    #[test]
    fn flat_order_is_reverse_topological() {
        let m = tiny_model();
        let sizes = m.param_sizes();
        // Reverse order: last Dense (8→3: w=24, b=3) first.
        assert_eq!(sizes, vec![24, 3, 32, 8]);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = tiny_model();
        let mut rng = ctx_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut rng };
        let x = Tensor::zeros(&[5, 4]);
        let y = m.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[5, 3]);
        let gx = m.backward(&Tensor::zeros(&[5, 3]), &mut ctx);
        assert_eq!(gx.shape(), &[5, 4]);
    }

    #[test]
    fn zero_grads_clears() {
        let mut m = tiny_model();
        let mut rng = ctx_rng();
        let mut ctx =
            ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut rng };
        let x = Tensor::full(&[2, 4], 0.5);
        let y = m.forward(&x, &mut ctx);
        m.backward(&Tensor::full(y.shape(), 1.0), &mut ctx);
        assert!(m.flat_grads().iter().any(|&g| g != 0.0));
        m.zero_grads();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mlp_does_not_use_conv() {
        assert!(!tiny_model().uses_conv());
    }
}

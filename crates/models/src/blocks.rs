//! Composite blocks: residual connections, LayerNorm, and GELU — the pieces
//! that turn the flat layer list into realistic ResNet/Transformer proxies.

use crate::model::{ExecCtx, Layer};
use tensor::ops::blocked_sum;
use tensor::Tensor;

/// A residual block: `y = x + F(x)` where `F` is a sequential stack of
/// layers whose output shape equals its input shape. Backward:
/// `dx = grad + F'(grad)`.
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Wrap a shape-preserving layer stack in a skip connection.
    pub fn new(inner: Vec<Box<dyn Layer>>) -> Self {
        assert!(!inner.is_empty(), "empty residual body");
        Residual { inner }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.inner {
            cur = layer.forward(&cur, ctx);
        }
        assert_eq!(cur.shape(), x.shape(), "residual body must preserve shape");
        cur.add(x)
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.inner.iter_mut().rev() {
            cur = layer.backward(&cur, ctx);
        }
        cur.add(grad)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.inner.iter().flat_map(|l| l.grads()).collect()
    }

    fn zero_grads(&mut self) {
        for l in &mut self.inner {
            l.zero_grads();
        }
    }

    fn implicit_state(&self) -> Vec<Tensor> {
        // Concatenate inner implicit states with per-layer length prefixes
        // encoded positionally: flatten in layer order (restore splits by
        // the same per-layer counts).
        self.inner.iter().flat_map(|l| l.implicit_state()).collect()
    }

    fn set_implicit_state(&mut self, state: &[Tensor]) {
        let mut off = 0;
        for l in &mut self.inner {
            let n = l.implicit_state().len();
            l.set_implicit_state(&state[off..off + n]);
            off += n;
        }
        assert_eq!(off, state.len(), "residual implicit-state length mismatch");
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn uses_conv(&self) -> bool {
        self.inner.iter().any(|l| l.uses_conv())
    }
}

/// Layer normalization over the last axis of `[.., D]` (transformer-style),
/// with learnable gain/bias. Unlike BatchNorm it has no running state — it
/// is stateless across steps, so it contributes nothing to EST contexts.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    ggamma: Tensor,
    gbeta: Tensor,
    dim: usize,
    eps: f32,
    cached: Option<LnCache>,
}

struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl LayerNorm {
    /// LayerNorm over a last axis of `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::full(&[dim], 1.0),
            beta: Tensor::zeros(&[dim]),
            ggamma: Tensor::zeros(&[dim]),
            gbeta: Tensor::zeros(&[dim]),
            dim,
            eps: 1e-5,
            cached: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let shape = x.shape().to_vec();
        let d = *shape.last().expect("nonempty shape");
        assert_eq!(d, self.dim, "LayerNorm dim mismatch");
        let rows = x.len() / d;
        let xd = x.data();
        let mut out = Tensor::zeros(&shape);
        let mut x_hat = Tensor::zeros(&shape);
        let mut inv_std = vec![0.0f32; rows];
        {
            let od = out.data_mut();
            let xh = x_hat.data_mut();
            for r in 0..rows {
                let row = &xd[r * d..(r + 1) * d];
                let mean = blocked_sum(row, &ctx.profile) / d as f32;
                let sq: Vec<f32> = row.iter().map(|&v| (v - mean) * (v - mean)).collect();
                let var = blocked_sum(&sq, &ctx.profile) / d as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[r] = istd;
                for j in 0..d {
                    let h = (row[j] - mean) * istd;
                    xh[r * d + j] = h;
                    od[r * d + j] = self.gamma.data()[j] * h + self.beta.data()[j];
                }
            }
        }
        self.cached = Some(LnCache { x_hat, inv_std, shape });
        out
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let cache = self.cached.take().expect("backward before forward");
        let d = self.dim;
        let rows = grad.len() / d;
        assert_eq!(grad.shape(), &cache.shape[..]);
        let gd = grad.data();
        let xh = cache.x_hat.data();
        let mut gx = Tensor::zeros(&cache.shape);
        {
            let gxd = gx.data_mut();
            let mut gbuf = vec![0.0f32; d];
            let mut ghbuf = vec![0.0f32; d];
            for r in 0..rows {
                for j in 0..d {
                    gbuf[j] = gd[r * d + j] * self.gamma.data()[j];
                    ghbuf[j] = gbuf[j] * xh[r * d + j];
                    // Parameter grads use the raw upstream gradient.
                    self.gbeta.data_mut()[j] += gd[r * d + j];
                    self.ggamma.data_mut()[j] += gd[r * d + j] * xh[r * d + j];
                }
                let sum_g = blocked_sum(&gbuf, &ctx.profile);
                let sum_gh = blocked_sum(&ghbuf, &ctx.profile);
                let istd = cache.inv_std[r];
                for j in 0..d {
                    gxd[r * d + j] =
                        istd * (gbuf[j] - sum_g / d as f32 - xh[r * d + j] * sum_gh / d as f32);
                }
            }
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.ggamma, &self.gbeta]
    }

    fn zero_grads(&mut self) {
        self.ggamma.zero_();
        self.gbeta.zero_();
    }

    fn name(&self) -> &'static str {
        "LayerNorm"
    }
}

/// GELU activation (tanh approximation, matching PyTorch's default).
pub struct Gelu {
    cached: Option<Tensor>,
}

impl Gelu {
    /// New GELU.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Gelu { cached: None }
    }

    #[inline]
    fn gelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/π)
        0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }

    #[inline]
    fn dgelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let u = C * (x + 0.044715 * x * x * x);
        let t = u.tanh();
        let du = C * (1.0 + 3.0 * 0.044715 * x * x);
        0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        self.cached = Some(x.clone());
        Tensor::from_vec(x.data().iter().map(|&v| Self::gelu(v)).collect(), x.shape())
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let x = self.cached.take().expect("backward before forward");
        let data = grad.data().iter().zip(x.data()).map(|(&g, &v)| g * Self::dgelu(v)).collect();
        Tensor::from_vec(data, grad.shape())
    }

    fn name(&self) -> &'static str {
        "GELU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::layers::{Dense, Relu};
    use crate::norm::BatchNorm;
    use esrng::{EsRng, StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn rng() -> EsRng {
        EsRng::for_stream(6, StreamKey::global(StreamKind::ModelInit))
    }

    fn mk_ctx(r: &mut EsRng) -> ExecCtx<'_> {
        ExecCtx { profile: KernelProfile::default(), training: true, dropout: r }
    }

    #[test]
    fn residual_identity_body_doubles() {
        // F = Dense initialized to zero weights ⇒ y = x + 0·x = x... use an
        // explicit zero Dense by zeroing params after init.
        let mut r = rng();
        let mut dense = Dense::init(4, 4, &mut r);
        for p in dense.params_mut() {
            p.zero_();
        }
        let mut res = Residual::new(vec![Box::new(dense)]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let mut dr = rng();
        let mut ctx = mk_ctx(&mut dr);
        let y = res.forward(&x, &mut ctx);
        assert!(y.bitwise_eq(&x), "zero body ⇒ skip passes through");
        let gx = res.backward(&Tensor::full(&[1, 4], 1.0), &mut ctx);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0], "zero body ⇒ gradient passes through");
    }

    #[test]
    fn residual_gradients_match_finite_differences() {
        let mut r = rng();
        let mut res =
            Residual::new(vec![Box::new(Dense::init(3, 3, &mut r)), Box::new(Relu::new())]);
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.8], &[1, 3]);
        let loss = |res: &mut Residual, x: &Tensor| -> f32 {
            let mut dr = rng();
            let mut ctx = mk_ctx(&mut dr);
            res.forward(x, &mut ctx).data().iter().sum()
        };
        let base = loss(&mut res, &x);
        let gx = {
            let mut dr = rng();
            let mut ctx = mk_ctx(&mut dr);
            let y = res.forward(&x, &mut ctx);
            res.backward(&Tensor::full(y.shape(), 1.0), &mut ctx)
        };
        let eps = 1e-3;
        for i in 0..3 {
            let mut x2 = x.clone();
            x2.data_mut()[i] += eps;
            let fd = (loss(&mut res, &x2) - base) / eps;
            assert!((fd - gx.data()[i]).abs() < 0.02, "dx[{i}] fd {fd} vs {}", gx.data()[i]);
        }
    }

    #[test]
    fn residual_forwards_implicit_state() {
        let mut r = rng();
        let res = Residual::new(vec![
            Box::new(Conv2d::init(2, 2, 3, 1, 1, &mut r)),
            Box::new(BatchNorm::new(2)),
        ]);
        let state = res.implicit_state();
        assert_eq!(state.len(), 2, "inner BatchNorm stats surface through the block");
        assert!(res.uses_conv());
        let mut res = res;
        res.set_implicit_state(&state);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let mut dr = rng();
        let mut ctx = mk_ctx(&mut dr);
        let y = ln.forward(&x, &mut ctx);
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_has_no_implicit_state() {
        let ln = LayerNorm::new(8);
        assert!(ln.implicit_state().is_empty(), "stateless across steps, unlike BatchNorm");
    }

    #[test]
    fn layernorm_gradients_match_finite_differences() {
        let mut ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![0.2, -0.7, 1.1], &[1, 3]);
        let w = [0.3f32, -1.2, 0.8];
        let loss = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
            let mut fresh = LayerNorm::new(3);
            fresh.gamma = ln.gamma.clone();
            fresh.beta = ln.beta.clone();
            let mut dr = rng();
            let mut ctx = mk_ctx(&mut dr);
            fresh.forward(x, &mut ctx).data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let base = loss(&mut ln, &x);
        let gx = {
            let mut dr = rng();
            let mut ctx = mk_ctx(&mut dr);
            let y = ln.forward(&x, &mut ctx);
            ln.backward(&Tensor::from_vec(w.to_vec(), y.shape()), &mut ctx)
        };
        let eps = 1e-3;
        for i in 0..3 {
            let mut x2 = x.clone();
            x2.data_mut()[i] += eps;
            let fd = (loss(&mut ln, &x2) - base) / eps;
            assert!((fd - gx.data()[i]).abs() < 0.05, "dx[{i}] fd {fd} vs {}", gx.data()[i]);
        }
        // gamma FD.
        let analytic = ln.grads()[0].data()[1];
        ln.params_mut()[0].data_mut()[1] += eps;
        let fd = (loss(&mut ln, &x) - base) / eps;
        assert!((fd - analytic).abs() < 0.05, "dgamma fd {fd} vs {analytic}");
    }

    #[test]
    fn gelu_matches_reference_points() {
        // GELU(0) = 0; GELU(large) ≈ x; GELU(-large) ≈ 0.
        let mut g = Gelu::new();
        let x = Tensor::from_slice(&[0.0, 5.0, -5.0, 1.0]);
        let mut dr = rng();
        let mut ctx = mk_ctx(&mut dr);
        let y = g.forward(&x, &mut ctx);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 5.0).abs() < 1e-3);
        assert!(y.data()[2].abs() < 1e-3);
        assert!((y.data()[3] - 0.8412).abs() < 1e-3, "GELU(1) ≈ 0.8412, got {}", y.data()[3]);
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        let mut g = Gelu::new();
        let xs = [-2.0f32, -0.5, 0.0, 0.7, 3.0];
        let x = Tensor::from_slice(&xs);
        let mut dr = rng();
        let mut ctx = mk_ctx(&mut dr);
        g.forward(&x, &mut ctx);
        let gx = g.backward(&Tensor::full(&[5], 1.0), &mut ctx);
        let eps = 1e-3f32;
        for (i, &v) in xs.iter().enumerate() {
            let fd = (Gelu::gelu(v + eps) - Gelu::gelu(v - eps)) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-2, "dgelu({v}) fd {fd} vs {}", gx.data()[i]);
        }
    }
}

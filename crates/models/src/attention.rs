//! Sequence layers for the NLP/recommendation workload proxies: token
//! embedding, single-head self-attention, and mean pooling.
//!
//! These are the "no vendor conv kernel" workloads of Fig 12 (Bert, Electra,
//! NeuMF, SwinTransformer): their reductions are all matmuls and softmax
//! denominators, which stay cheap under the hardware-agnostic D2 profile.

use crate::model::{ExecCtx, Layer};
use esrng::EsRng;
use tensor::ops;
use tensor::Tensor;

/// Token embedding: `[B, S]` of token ids (carried as f32) → `[B, S, D]`.
pub struct Embedding {
    table: Tensor,
    gtable: Tensor,
    vocab: usize,
    dim: usize,
    cached_tokens: Option<Vec<usize>>,
    cached_batch: usize,
    cached_seq: usize,
}

impl Embedding {
    /// Normal(0, 0.02) initialized embedding table.
    pub fn init(vocab: usize, dim: usize, rng: &mut EsRng) -> Self {
        let table = Tensor::from_vec(
            (0..vocab * dim).map(|_| rng.normal_f32() * 0.02).collect(),
            &[vocab, dim],
        );
        Embedding {
            gtable: Tensor::zeros(&[vocab, dim]),
            table,
            vocab,
            dim,
            cached_tokens: None,
            cached_batch: 0,
            cached_seq: 0,
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "Embedding expects [B,S] token ids");
        let (b, seq) = (s[0], s[1]);
        let tokens: Vec<usize> = x
            .data()
            .iter()
            .map(|&t| {
                let id = t as usize;
                assert!(id < self.vocab, "token id {id} out of vocab {}", self.vocab);
                id
            })
            .collect();
        let mut out = Tensor::zeros(&[b, seq, self.dim]);
        let od = out.data_mut();
        let td = self.table.data();
        for (i, &tok) in tokens.iter().enumerate() {
            od[i * self.dim..(i + 1) * self.dim]
                .copy_from_slice(&td[tok * self.dim..(tok + 1) * self.dim]);
        }
        self.cached_tokens = Some(tokens);
        self.cached_batch = b;
        self.cached_seq = seq;
        out
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let tokens = self.cached_tokens.take().expect("backward before forward");
        assert_eq!(grad.shape(), &[self.cached_batch, self.cached_seq, self.dim]);
        let gd = grad.data();
        let gt = self.gtable.data_mut();
        // Fixed-order scatter-add (token occurrence order), deterministic.
        for (i, &tok) in tokens.iter().enumerate() {
            for d in 0..self.dim {
                gt[tok * self.dim + d] += gd[i * self.dim + d];
            }
        }
        // Token ids are not differentiable; return zeros of the input shape.
        Tensor::zeros(&[self.cached_batch, self.cached_seq])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gtable]
    }

    fn zero_grads(&mut self) {
        self.gtable.zero_();
    }

    fn name(&self) -> &'static str {
        "Embedding"
    }
}

/// Single-head self-attention over `[B, S, D]` with output projection.
pub struct SelfAttention {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    gq: Tensor,
    gk: Tensor,
    gv: Tensor,
    go: Tensor,
    dim: usize,
    cached: Option<AttnCache>,
}

struct AttnCache {
    x: Tensor,
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    p: Vec<Tensor>,
    o: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl SelfAttention {
    /// Xavier-initialized attention block.
    pub fn init(dim: usize, rng: &mut EsRng) -> Self {
        let mk = |rng: &mut EsRng| {
            let bound = (3.0 / dim as f32).sqrt();
            Tensor::from_vec(
                (0..dim * dim).map(|_| rng.uniform_range_f32(-bound, bound)).collect(),
                &[dim, dim],
            )
        };
        SelfAttention {
            wq: mk(rng),
            wk: mk(rng),
            wv: mk(rng),
            wo: mk(rng),
            gq: Tensor::zeros(&[dim, dim]),
            gk: Tensor::zeros(&[dim, dim]),
            gv: Tensor::zeros(&[dim, dim]),
            go: Tensor::zeros(&[dim, dim]),
            dim,
            cached: None,
        }
    }

    fn sample(&self, x: &Tensor, i: usize, seq: usize) -> Tensor {
        let plane = seq * self.dim;
        Tensor::from_vec(x.data()[i * plane..(i + 1) * plane].to_vec(), &[seq, self.dim])
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "SelfAttention expects [B,S,D]");
        assert_eq!(s[2], self.dim, "dim mismatch");
        let (b, seq) = (s[0], s[1]);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut out = Tensor::zeros(&[b, seq, self.dim]);
        let plane = seq * self.dim;
        let (mut qs, mut ks, mut vs, mut ps, mut os) = (
            Vec::with_capacity(b),
            Vec::with_capacity(b),
            Vec::with_capacity(b),
            Vec::with_capacity(b),
            Vec::with_capacity(b),
        );
        for i in 0..b {
            let xb = self.sample(x, i, seq);
            let q = ops::matmul(&xb, &self.wq, &ctx.profile);
            let k = ops::matmul(&xb, &self.wk, &ctx.profile);
            let v = ops::matmul(&xb, &self.wv, &ctx.profile);
            let mut scores = ops::matmul_a_bt(&q, &k, &ctx.profile);
            scores.scale_(scale);
            let p = ops::softmax_rows(&scores, &ctx.profile);
            let o = ops::matmul(&p, &v, &ctx.profile);
            let y = ops::matmul(&o, &self.wo, &ctx.profile);
            out.data_mut()[i * plane..(i + 1) * plane].copy_from_slice(y.data());
            qs.push(q);
            ks.push(k);
            vs.push(v);
            ps.push(p);
            os.push(o);
        }
        self.cached =
            Some(AttnCache { x: x.clone(), q: qs, k: ks, v: vs, p: ps, o: os, batch: b, seq });
        out
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let c = self.cached.take().expect("backward before forward");
        let (b, seq) = (c.batch, c.seq);
        let plane = seq * self.dim;
        assert_eq!(grad.shape(), &[b, seq, self.dim]);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut gx = Tensor::zeros(&[b, seq, self.dim]);

        for i in 0..b {
            let gy = Tensor::from_vec(
                grad.data()[i * plane..(i + 1) * plane].to_vec(),
                &[seq, self.dim],
            );
            let xb = self.sample(&c.x, i, seq);

            // Output projection.
            self.go.axpy_(1.0, &ops::matmul_at_b(&c.o[i], &gy, &ctx.profile));
            let g_o = ops::matmul_a_bt(&gy, &self.wo, &ctx.profile);

            // O = P·V.
            let g_p = ops::matmul_a_bt(&g_o, &c.v[i], &ctx.profile);
            let g_v = ops::matmul_at_b(&c.p[i], &g_o, &ctx.profile);

            // Softmax backward, row-wise: ds = (dp - <dp,p>) * p.
            let mut g_s = Tensor::zeros(&[seq, seq]);
            {
                let gpd = g_p.data();
                let pd = c.p[i].data();
                let gsd = g_s.data_mut();
                for r in 0..seq {
                    let row_gp = &gpd[r * seq..(r + 1) * seq];
                    let row_p = &pd[r * seq..(r + 1) * seq];
                    let inner = ops::dot(row_gp, row_p, &ctx.profile);
                    for j in 0..seq {
                        gsd[r * seq + j] = (row_gp[j] - inner) * row_p[j];
                    }
                }
            }
            g_s.scale_(scale);

            // scores = Q·Kᵀ (after scaling).
            let g_q = ops::matmul(&g_s, &c.k[i], &ctx.profile);
            let g_k = ops::matmul_at_b(&g_s, &c.q[i], &ctx.profile);

            // Projections: Q = X·Wq etc.
            self.gq.axpy_(1.0, &ops::matmul_at_b(&xb, &g_q, &ctx.profile));
            self.gk.axpy_(1.0, &ops::matmul_at_b(&xb, &g_k, &ctx.profile));
            self.gv.axpy_(1.0, &ops::matmul_at_b(&xb, &g_v, &ctx.profile));
            let mut gxb = ops::matmul_a_bt(&g_q, &self.wq, &ctx.profile);
            gxb.axpy_(1.0, &ops::matmul_a_bt(&g_k, &self.wk, &ctx.profile));
            gxb.axpy_(1.0, &ops::matmul_a_bt(&g_v, &self.wv, &ctx.profile));
            gx.data_mut()[i * plane..(i + 1) * plane].copy_from_slice(gxb.data());
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gq, &self.gk, &self.gv, &self.go]
    }

    fn zero_grads(&mut self) {
        self.gq.zero_();
        self.gk.zero_();
        self.gv.zero_();
        self.go.zero_();
    }

    fn name(&self) -> &'static str {
        "SelfAttention"
    }
}

/// Mean pooling over the sequence axis: `[B, S, D]` → `[B, D]`.
pub struct MeanPool {
    cached_shape: Option<Vec<usize>>,
}

impl MeanPool {
    /// New pool.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        MeanPool { cached_shape: None }
    }
}

impl Layer for MeanPool {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "MeanPool expects [B,S,D]");
        let (b, seq, d) = (s[0], s[1], s[2]);
        let mut out = Tensor::zeros(&[b, d]);
        let xd = x.data();
        let od = out.data_mut();
        let mut col = vec![0.0f32; seq];
        for i in 0..b {
            for j in 0..d {
                for t in 0..seq {
                    col[t] = xd[(i * seq + t) * d + j];
                }
                od[i * d + j] = ops::blocked_sum(&col, &ctx.profile) / seq as f32;
            }
        }
        self.cached_shape = Some(s.to_vec());
        out
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = self.cached_shape.take().expect("backward before forward");
        let (b, seq, d) = (s[0], s[1], s[2]);
        assert_eq!(grad.shape(), &[b, d]);
        let mut gx = Tensor::zeros(&s);
        let gd = grad.data();
        let gxd = gx.data_mut();
        let inv = 1.0 / seq as f32;
        for i in 0..b {
            for t in 0..seq {
                for j in 0..d {
                    gxd[(i * seq + t) * d + j] = gd[i * d + j] * inv;
                }
            }
        }
        gx
    }

    fn name(&self) -> &'static str {
        "MeanPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn mk_rng() -> EsRng {
        EsRng::for_stream(4, StreamKey::global(StreamKind::ModelInit))
    }

    fn mk_ctx(rng: &mut EsRng) -> ExecCtx<'_> {
        ExecCtx { profile: KernelProfile::default(), training: true, dropout: rng }
    }

    #[test]
    fn embedding_looks_up_rows() {
        let mut rng = mk_rng();
        let mut emb = Embedding::init(10, 4, &mut rng);
        let x = Tensor::from_vec(vec![3.0, 7.0], &[1, 2]);
        let mut drng = mk_rng();
        let mut ctx = mk_ctx(&mut drng);
        let y = emb.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[1, 2, 4]);
        assert_eq!(&y.data()[0..4], &emb.table.data()[12..16]);
    }

    #[test]
    fn embedding_backward_scatters() {
        let mut rng = mk_rng();
        let mut emb = Embedding::init(10, 2, &mut rng);
        // Token 5 appears twice — gradients must accumulate.
        let x = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[1, 3]);
        let mut drng = mk_rng();
        let mut ctx = mk_ctx(&mut drng);
        emb.forward(&x, &mut ctx);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        emb.backward(&g, &mut ctx);
        let gt = emb.grads()[0].data();
        assert_eq!(&gt[10..12], &[4.0, 6.0], "token 5 row sums both positions");
        assert_eq!(&gt[2..4], &[5.0, 6.0], "token 1 row");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_checks_vocab() {
        let mut rng = mk_rng();
        let mut emb = Embedding::init(4, 2, &mut rng);
        let x = Tensor::from_vec(vec![4.0], &[1, 1]);
        let mut drng = mk_rng();
        let mut ctx = mk_ctx(&mut drng);
        emb.forward(&x, &mut ctx);
    }

    #[test]
    fn attention_forward_shape_and_determinism() {
        let mut rng = mk_rng();
        let mut attn = SelfAttention::init(8, &mut rng);
        let x =
            Tensor::from_vec((0..2 * 4 * 8).map(|i| (i as f32 * 0.11).sin()).collect(), &[2, 4, 8]);
        let mut drng = mk_rng();
        let y1 = attn.forward(&x, &mut mk_ctx(&mut drng));
        let y2 = attn.forward(&x, &mut mk_ctx(&mut drng));
        assert_eq!(y1.shape(), &[2, 4, 8]);
        assert!(y1.bitwise_eq(&y2));
    }

    #[test]
    fn attention_gradients_match_finite_differences() {
        let mut rng = mk_rng();
        let mut attn = SelfAttention::init(4, &mut rng);
        let x = Tensor::from_vec((0..3 * 4).map(|i| (i as f32 * 0.37).cos()).collect(), &[1, 3, 4]);
        let w: Vec<f32> = (0..12).map(|_| rng.normal_f32()).collect();

        let loss = |attn: &mut SelfAttention, x: &Tensor| -> f32 {
            let mut drng = mk_rng();
            let y = attn.forward(x, &mut mk_ctx(&mut drng));
            y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let base = loss(&mut attn, &x);
        let gx = {
            let mut drng = mk_rng();
            let mut ctx = mk_ctx(&mut drng);
            let y = attn.forward(&x, &mut ctx);
            attn.backward(&Tensor::from_vec(w.clone(), y.shape()), &mut ctx)
        };
        let eps = 1e-3f32;
        for &xi in &[0usize, 4, 11] {
            let mut x2 = x.clone();
            x2.data_mut()[xi] += eps;
            let fd = (loss(&mut attn, &x2) - base) / eps;
            assert!((fd - gx.data()[xi]).abs() < 0.02, "dx[{xi}] fd {fd} vs {}", gx.data()[xi]);
        }
        // Wq gradient check.
        let analytic = attn.grads()[0].data()[3];
        attn.params_mut()[0].data_mut()[3] += eps;
        let fd = (loss(&mut attn, &x) - base) / eps;
        assert!((fd - analytic).abs() < 0.02, "dWq fd {fd} vs {analytic}");
    }

    #[test]
    fn meanpool_averages_and_distributes() {
        let mut mp = MeanPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        let mut drng = mk_rng();
        let mut ctx = mk_ctx(&mut drng);
        let y = mp.forward(&x, &mut ctx);
        assert_eq!(y.data(), &[3.0, 4.0]);
        let g = mp.backward(&Tensor::from_vec(vec![3.0, 6.0], &[1, 2]), &mut ctx);
        assert_eq!(g.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }
}

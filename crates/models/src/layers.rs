//! Basic layers: Dense, ReLU, Dropout, Flatten.

use crate::model::{ExecCtx, Layer};
use esrng::EsRng;
use tensor::ops;
use tensor::Tensor;

/// Fully-connected layer `y = x·W + b`, `W: [in, out]`.
pub struct Dense {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// Kaiming-uniform initialization from the model-init stream.
    pub fn init(inp: usize, out: usize, rng: &mut EsRng) -> Self {
        let bound = (6.0 / inp as f32).sqrt();
        let w = Tensor::from_vec(
            (0..inp * out).map(|_| rng.uniform_range_f32(-bound, bound)).collect(),
            &[inp, out],
        );
        let b = Tensor::zeros(&[out]);
        Dense { gw: Tensor::zeros(&[inp, out]), gb: Tensor::zeros(&[out]), w, b, cached_x: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut y = ops::matmul(x, &self.w, &ctx.profile);
        let (n, out) = (y.shape()[0], y.shape()[1]);
        let yd = y.data_mut();
        let bd = self.b.data();
        for i in 0..n {
            for j in 0..out {
                yd[i * out + j] += bd[j];
            }
        }
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        // dW = xᵀ·g  (accumulate), db = column sums of g, dx = g·Wᵀ.
        let dw = ops::matmul_at_b(x, grad, &ctx.profile);
        self.gw.axpy_(1.0, &dw);
        let (n, out) = (grad.shape()[0], grad.shape()[1]);
        let gd = grad.data();
        {
            let gbd = self.gb.data_mut();
            let mut col = vec![0.0f32; n];
            for j in 0..out {
                for i in 0..n {
                    col[i] = gd[i * out + j];
                }
                gbd[j] += ops::blocked_sum(&col, &ctx.profile);
            }
        }
        // dx = g · Wᵀ, with W: [in, out] so Wᵀ rows are W columns: use a·bᵀ
        // against W viewed as [in,out] — matmul_a_bt expects B:[n,k] with
        // k = out, i.e. exactly W with rows=in; but we need B rows indexed
        // by `in`. W is [in, out] and matmul_a_bt(grad [n,out], W [in,out])
        // gives [n, in]: correct.
        self.cached_x = None;
        ops::matmul_a_bt(grad, &self.w, &ctx.profile)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn zero_grads(&mut self) {
        self.gw.zero_();
        self.gb.zero_();
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// ReLU activation.
pub struct Relu {
    cached_pre: Option<Tensor>,
}

impl Relu {
    /// New ReLU.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Relu { cached_pre: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        self.cached_pre = Some(x.clone());
        ops::relu(x)
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let pre = self.cached_pre.take().expect("backward before forward");
        ops::relu_backward(grad, &pre)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Inverted dropout. The mask generator comes from the ExecCtx (i.e. from
/// the EST), making dropout reproducible per virtual rank — one of the D0
/// "implicit framework states".
pub struct Dropout {
    p: f32,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Dropout with drop probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout { p, mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        if !ctx.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> =
            (0..x.len()).map(|_| if ctx.dropout.bernoulli(keep) { scale } else { 0.0 }).collect();
        let mask = Tensor::from_vec(mask_data, x.shape());
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        match self.mask.take() {
            Some(mask) => grad.mul(&mask),
            None => grad.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// Flatten `[B, …]` to `[B, prod(…)]`.
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// New Flatten.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = x.shape().to_vec();
        let b = s[0];
        let rest: usize = s[1..].iter().product();
        self.cached_shape = Some(s);
        x.clone().reshape(&[b, rest])
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let s = self.cached_shape.take().expect("backward before forward");
        grad.clone().reshape(&s)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esrng::{StreamKey, StreamKind};
    use tensor::KernelProfile;

    fn mk_ctx(rng: &mut EsRng, training: bool) -> ExecCtx<'_> {
        ExecCtx { profile: KernelProfile::default(), training, dropout: rng }
    }

    fn init_rng() -> EsRng {
        EsRng::for_stream(5, StreamKey::global(StreamKind::ModelInit))
    }

    /// Finite-difference check of Dense gradients.
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = init_rng();
        let mut layer = Dense::init(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -0.2, 0.8, 0.1, 0.4, -0.6], &[2, 3]);
        // Loss = sum(y); dL/dy = ones.
        let mut drng = init_rng();
        let mut ctx = mk_ctx(&mut drng, true);
        let y = layer.forward(&x, &mut ctx);
        let ones = Tensor::full(y.shape(), 1.0);
        let gx = layer.backward(&ones, &mut ctx);

        // FD on one weight and one input element.
        let eps = 1e-3f32;
        let loss = |layer: &mut Dense, x: &Tensor| {
            let mut drng = init_rng();
            let mut ctx = mk_ctx(&mut drng, true);
            let y = layer.forward(x, &mut ctx);
            let s: f32 = y.data().iter().sum();
            s
        };
        // Weight (0,1): index 1 in w data.
        let base = loss(&mut layer, &x);
        layer.params_mut()[0].data_mut()[1] += eps;
        let bumped = loss(&mut layer, &x);
        layer.params_mut()[0].data_mut()[1] -= eps;
        let fd = (bumped - base) / eps;
        let analytic = layer.grads()[0].data()[1];
        assert!((fd - analytic).abs() < 1e-2, "dW fd {fd} vs analytic {analytic}");

        // Input (1,2): index 5.
        let mut x2 = x.clone();
        x2.data_mut()[5] += eps;
        let bumped = loss(&mut layer, &x2);
        let fd = (bumped - base) / eps;
        assert!((fd - gx.data()[5]).abs() < 1e-2, "dx fd {fd} vs analytic {}", gx.data()[5]);
    }

    #[test]
    fn dense_bias_gradient_is_batch_sum() {
        let mut rng = init_rng();
        let mut layer = Dense::init(2, 2, &mut rng);
        let x = Tensor::full(&[3, 2], 1.0);
        let mut drng = init_rng();
        let mut ctx = mk_ctx(&mut drng, true);
        layer.forward(&x, &mut ctx);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        layer.backward(&g, &mut ctx);
        assert_eq!(layer.grads()[1].data(), &[9.0, 12.0]);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[4, 4], 2.0);
        let mut rng = init_rng();
        let mut ctx = mk_ctx(&mut rng, false);
        let y = d.forward(&x, &mut ctx);
        assert!(y.bitwise_eq(&x));
    }

    #[test]
    fn dropout_is_reproducible_from_rng_state() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[8, 8], 1.0);
        let mut rng1 = init_rng();
        let mut ctx = mk_ctx(&mut rng1, true);
        let y1 = d.forward(&x, &mut ctx);
        let mut rng2 = init_rng();
        let mut ctx = mk_ctx(&mut rng2, true);
        let y2 = d.forward(&x, &mut ctx);
        assert!(y1.bitwise_eq(&y2));
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3);
        let x = Tensor::full(&[100, 100], 1.0);
        let mut rng = init_rng();
        let mut ctx = mk_ctx(&mut rng, true);
        let y = d.forward(&x, &mut ctx);
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.02, "inverted dropout keeps E[x]: {mean}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[4, 4], 1.0);
        let mut rng = init_rng();
        let mut ctx = mk_ctx(&mut rng, true);
        let y = d.forward(&x, &mut ctx);
        let g = d.backward(&Tensor::full(&[4, 4], 1.0), &mut ctx);
        // Gradient passes exactly where activations passed.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv.to_bits(), gv.to_bits());
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let mut rng = init_rng();
        let mut ctx = mk_ctx(&mut rng, true);
        let y = f.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 48]);
        let gx = f.backward(&y, &mut ctx);
        assert_eq!(gx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0);
    }
}

//! Property-based tests for the model layer: gradient correctness by finite
//! differences over random shapes/values, and bit-purity of forward passes.

use esrng::{EsRng, StreamKey, StreamKind};
use models::layers::Dense;
use models::model::{ExecCtx, Layer};
use models::zoo::{self, build_proxy};

use proptest::prelude::*;
use tensor::{KernelProfile, Tensor};

fn rng(seed: u64) -> EsRng {
    EsRng::for_stream(seed, StreamKey::global(StreamKind::ModelInit))
}

proptest! {
    /// Dense gradients match finite differences for arbitrary shapes,
    /// inputs, and weight entries.
    #[test]
    fn dense_fd_check(
        n in 1usize..4,
        inp in 1usize..6,
        out in 1usize..5,
        seed in any::<u64>(),
        probe in any::<u32>(),
    ) {
        let mut init = rng(seed);
        let mut layer = Dense::init(inp, out, &mut init);
        let x = Tensor::from_vec(
            (0..n * inp).map(|i| ((i as f32) * 0.73 + seed as f32 * 1e-9).sin()).collect(),
            &[n, inp],
        );
        let loss = |layer: &mut Dense, x: &Tensor| -> f32 {
            let mut d = rng(0);
            let mut ctx = ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut d };
            layer.forward(x, &mut ctx).data().iter().sum()
        };
        let base = loss(&mut layer, &x);
        let gx = {
            let mut d = rng(0);
            let mut ctx = ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut d };
            let y = layer.forward(&x, &mut ctx);
            layer.backward(&Tensor::full(y.shape(), 1.0), &mut ctx)
        };
        // Probe one random weight and one random input element.
        let wi = (probe as usize) % (inp * out);
        let eps = 1e-2f32;
        let analytic_w = layer.grads()[0].data()[wi];
        layer.params_mut()[0].data_mut()[wi] += eps;
        let fd_w = (loss(&mut layer, &x) - base) / eps;
        layer.params_mut()[0].data_mut()[wi] -= eps;
        prop_assert!((fd_w - analytic_w).abs() < 0.05, "dW[{wi}]: fd {fd_w} vs {analytic_w}");

        let xi = (probe as usize) % (n * inp);
        let mut x2 = x.clone();
        x2.data_mut()[xi] += eps;
        let fd_x = (loss(&mut layer, &x2) - base) / eps;
        prop_assert!((fd_x - gx.data()[xi]).abs() < 0.05, "dx[{xi}]: fd {fd_x} vs {}", gx.data()[xi]);
    }

    /// Every proxy's forward pass is a pure function of (seed, input, RNG
    /// position) — two evaluations agree bitwise.
    #[test]
    fn proxy_forward_is_pure(widx in 0usize..8, seed in any::<u64>()) {
        let w = models::WORKLOADS[widx];
        let mut m1 = build_proxy(w, seed);
        let mut m2 = build_proxy(w, seed);
        let x = match zoo::input_kind(w) {
            zoo::InputKind::Image => Tensor::from_vec(
                (0..2 * 3 * 8 * 8).map(|i| (i as f32 * 0.31).sin()).collect(),
                &[2, 3, 8, 8],
            ),
            zoo::InputKind::Sequence => Tensor::from_vec(
                (0..2 * zoo::SEQ_LEN).map(|i| (i % zoo::VOCAB) as f32).collect(),
                &[2, zoo::SEQ_LEN],
            ),
        };
        let run = |m: &mut models::Model| {
            let mut d = EsRng::for_stream(seed, StreamKey::ranked(StreamKind::Dropout, 0));
            let mut ctx = ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut d };
            m.forward(&x, &mut ctx)
        };
        let a = run(&mut m1);
        let b = run(&mut m2);
        prop_assert!(a.bitwise_eq(&b));
    }

    /// flat_params / load_flat_params round-trips on every proxy.
    #[test]
    fn flat_param_roundtrip(widx in 0usize..8, seed in any::<u64>()) {
        let w = models::WORKLOADS[widx];
        let mut m = build_proxy(w, seed);
        let flat = m.flat_params();
        prop_assert_eq!(flat.len(), m.num_params());
        let perturbed: Vec<f32> = flat.iter().map(|v| v * 1.5 + 0.01).collect();
        m.load_flat_params(&perturbed);
        prop_assert_eq!(m.flat_params(), perturbed);
    }

    /// Implicit-state capture/restore round-trips on every proxy.
    #[test]
    fn implicit_state_roundtrip(widx in 0usize..8) {
        let w = models::WORKLOADS[widx];
        let mut m = build_proxy(w, 3);
        // Run a training step so BN stats move off their init values.
        let x = match zoo::input_kind(w) {
            zoo::InputKind::Image => Tensor::from_vec((0..3 * 64).map(|i| (i as f32).cos()).collect(), &[1, 3, 8, 8]),
            zoo::InputKind::Sequence => Tensor::from_vec(vec![5.0; zoo::SEQ_LEN], &[1, zoo::SEQ_LEN]),
        };
        let mut d = EsRng::for_stream(0, StreamKey::ranked(StreamKind::Dropout, 0));
        let mut ctx = ExecCtx { profile: KernelProfile::default(), training: true, dropout: &mut d };
        m.forward(&x, &mut ctx);
        let state = m.implicit_state();
        let mut fresh = build_proxy(w, 3);
        fresh.set_implicit_state(&state);
        prop_assert_eq!(fresh.implicit_state(), state);
    }
}

//! The silent-fault detection matrix: the suite of schedules the
//! self-healing control plane must handle *without being told anything*.
//!
//! Every case injects only silent fault kinds ([`FaultKind::is_silent`]) —
//! crash-without-notification, creeping straggler, heartbeat drop — and
//! asserts the two halves of the paper's §4 claim:
//!
//! 1. **bounded detection**: each non-superseded fault is flagged by the
//!    supervisor within its precomputed SimClock latency bound;
//! 2. **consistency**: the final model parameters are byte-identical to
//!    the fault-free run — detection and self-healing live entirely on the
//!    allocation path, never on the numeric path.
//!
//! [`run_matrix`] is what `scripts/ci.sh detect` runs; its report is
//! serialized to `results/detect_report.json`.

use std::path::Path;

use serde::Serialize;

use crate::harness::{run_fault_free, DetectionRecord, FaultHarness, HarnessConfig};
use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};
use sched::HealthEvent;

/// Seeds for the generated half of the matrix.
pub const DETECT_SEEDS: [u64; 3] = [70, 71, 72];

/// One matrix case: a named silent-fault schedule.
#[derive(Debug, Clone)]
pub struct DetectCase {
    /// Stable case name (used in reports and failure messages).
    pub name: String,
    /// The schedule to inject. Must contain only silent kinds.
    pub schedule: FaultSchedule,
}

/// The full silent-fault matrix: three hand-authored schedules covering
/// each silent kind in isolation, plus one generated schedule per seed in
/// [`DETECT_SEEDS`].
pub fn silent_matrix() -> Vec<DetectCase> {
    let mut cases = vec![
        DetectCase {
            name: "silent-crash".to_string(),
            schedule: FaultSchedule::from_events(vec![FaultEvent {
                step: 3,
                kind: FaultKind::SilentCrash { worker: 1 },
            }]),
        },
        DetectCase {
            name: "creeping-straggler".to_string(),
            schedule: FaultSchedule::from_events(vec![FaultEvent {
                step: 2,
                kind: FaultKind::CreepingStraggler {
                    worker: 0,
                    start_milli: 1200,
                    ramp_milli: 400,
                },
            }]),
        },
        DetectCase {
            name: "heartbeat-drop".to_string(),
            schedule: FaultSchedule::from_events(vec![
                FaultEvent { step: 0, kind: FaultKind::HeartbeatDrop { worker: 1, beats: 12 } },
                // A benign-length drop on the other device: short enough
                // that the lease may survive it — the detector must not be
                // required to flag it, and the run must stay byte-identical
                // either way.
                FaultEvent { step: 8, kind: FaultKind::HeartbeatDrop { worker: 0, beats: 2 } },
            ]),
        },
    ];
    for seed in DETECT_SEEDS {
        cases.push(DetectCase {
            name: format!("seeded-{seed}"),
            schedule: FaultSchedule::generate_silent(seed, 14, 2),
        });
    }
    cases
}

/// One case's full outcome, serializable for `results/detect_report.json`.
#[derive(Debug, Clone, Serialize)]
pub struct CaseOutcome {
    /// Case name from [`DetectCase`].
    pub name: String,
    /// Schedule seed (0 for hand-authored cases).
    pub seed: u64,
    /// Final params byte-identical to the fault-free reference.
    pub bitwise_identical: bool,
    /// Every non-superseded silent fault detected within its bound.
    pub all_detected_within_bound: bool,
    /// Per-fault detection records.
    pub detections: Vec<DetectionRecord>,
    /// The deterministic health-event log.
    pub health_events: Vec<HealthEvent>,
    /// Supervisor evictions taken.
    pub evictions: u32,
    /// Supervisor readmissions taken.
    pub readmissions: u32,
    /// Simulated run duration.
    pub sim_elapsed_us: u64,
}

impl CaseOutcome {
    /// Both halves of the invariant held.
    pub fn passed(&self) -> bool {
        self.bitwise_identical && self.all_detected_within_bound
    }
}

/// The matrix report `scripts/ci.sh detect` gates on.
#[derive(Debug, Clone, Serialize)]
pub struct DetectReport {
    /// Every case outcome, in matrix order.
    pub cases: Vec<CaseOutcome>,
    /// `"pass"` when every case passed, `"fail"` otherwise.
    pub status: String,
}

impl DetectReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(CaseOutcome::passed)
    }
}

/// Run one case against the detection default config, comparing against
/// the fault-free reference. `store_dir` must be unique per case.
pub fn run_case(case: &DetectCase, store_dir: &Path) -> CaseOutcome {
    let cfg = HarnessConfig::default_detect(store_dir.to_path_buf());
    let reference = run_fault_free(&cfg);
    let report = FaultHarness::new(cfg, case.schedule.clone()).run();
    CaseOutcome {
        name: case.name.clone(),
        seed: case.schedule.seed,
        bitwise_identical: report.final_params == reference,
        all_detected_within_bound: report.all_detected_within_bound(),
        detections: report.detections,
        health_events: report.health_events,
        evictions: report.evictions,
        readmissions: report.readmissions,
        sim_elapsed_us: report.sim_elapsed_us,
    }
}

/// Run the whole matrix under `base_dir` (one store subdirectory per case).
pub fn run_matrix(base_dir: &Path) -> DetectReport {
    let mut cases = Vec::new();
    for case in silent_matrix() {
        let dir = base_dir.join(&case.name);
        let _ = std::fs::remove_dir_all(&dir);
        let outcome = run_case(&case, &dir);
        obs::counter_add("faultsim.detect_cases_total", 1);
        if !outcome.passed() {
            obs::counter_add("faultsim.detect_cases_failed", 1);
        }
        cases.push(outcome);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let status = if cases.iter().all(CaseOutcome::passed) { "pass" } else { "fail" };
    DetectReport { cases, status: status.to_string() }
}

//! faultsim CLI: run one chaos schedule against the fault-free reference
//! and report whether the byte-identity invariant held.
//!
//! ```text
//! faultsim [--seed N] [--steps N] [--events N]
//!          [--schedule PATH] [--emit-schedule PATH] [--json]
//! ```
//!
//! `--schedule` replays a JSON schedule (e.g. a CI artifact) instead of
//! generating one from the seed; `--emit-schedule` writes the schedule used
//! so a failure is replayable. Exit status 1 means the invariant broke.

use faultsim::{run_fault_free, FaultHarness, FaultSchedule, HarnessConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    seed: u64,
    steps: u64,
    events: usize,
    kinds: Vec<String>,
    crashes: u32,
    recoveries: u32,
    replayed_steps: u64,
    torn_files_skipped: u32,
    sim_elapsed_us: u64,
    final_gpus: u32,
    bitwise_identical: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: faultsim [--seed N] [--steps N] [--events N] \
         [--schedule PATH] [--emit-schedule PATH] [--json]"
    );
    std::process::exit(2)
}

fn main() {
    let mut seed: u64 = 4242;
    let mut steps: u64 = 10;
    let mut events: usize = 5;
    let mut schedule_path: Option<String> = None;
    let mut emit_path: Option<String> = None;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--events" => events = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--schedule" => schedule_path = Some(take(&mut i)),
            "--emit-schedule" => emit_path = Some(take(&mut i)),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
        i += 1;
    }

    let schedule = match &schedule_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read schedule {path}: {e}"));
            FaultSchedule::from_json(&text)
                .unwrap_or_else(|e| panic!("cannot parse schedule {path}: {e:?}"))
        }
        None => FaultSchedule::generate(seed, steps, events),
    };
    if let Some(path) = &emit_path {
        std::fs::write(path, schedule.to_json())
            .unwrap_or_else(|e| panic!("cannot write schedule {path}: {e}"));
    }

    // Unique per-invocation store dir: seed + pid (no wall clock).
    let dir = std::env::temp_dir().join(format!(
        "easyscale-faultsim-cli-{}-{}",
        schedule.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = HarnessConfig::default_chaos(dir.clone());
    cfg.total_steps = steps;

    let reference = run_fault_free(&cfg);
    let report = FaultHarness::new(cfg, schedule.clone()).run();
    let _ = std::fs::remove_dir_all(&dir);

    let identical = report.final_params == reference;
    let summary = Summary {
        seed: schedule.seed,
        steps,
        events: schedule.events.len(),
        kinds: schedule.kinds().into_iter().map(str::to_string).collect(),
        crashes: report.crashes,
        recoveries: report.recoveries,
        replayed_steps: report.replayed_steps,
        torn_files_skipped: report.torn_files_skipped,
        sim_elapsed_us: report.sim_elapsed_us,
        final_gpus: report.final_gpus,
        bitwise_identical: identical,
    };

    if json {
        println!("{}", serde_json::to_string_pretty(&summary).expect("summary json"));
    } else {
        println!(
            "faultsim seed={} steps={} events={} kinds=[{}]",
            summary.seed,
            summary.steps,
            summary.events,
            summary.kinds.join(", ")
        );
        for ev in &report.injected {
            println!("  step {:>3}  {:<18} {}", ev.step, ev.kind, ev.outcome);
        }
        println!(
            "  crashes={} recoveries={} replayed={} torn_skipped={} sim_elapsed={}us final_gpus={}",
            summary.crashes,
            summary.recoveries,
            summary.replayed_steps,
            summary.torn_files_skipped,
            summary.sim_elapsed_us,
            summary.final_gpus
        );
        println!(
            "  invariant: final params {} the fault-free run",
            if identical { "BYTE-IDENTICAL to" } else { "DIVERGED from" }
        );
    }

    if !identical {
        std::process::exit(1);
    }
}

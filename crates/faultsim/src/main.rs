//! faultsim CLI: run one chaos schedule against the fault-free reference
//! and report whether the byte-identity invariant held.
//!
//! ```text
//! faultsim [--seed N] [--steps N] [--events N]
//!          [--schedule PATH] [--emit-schedule PATH] [--json]
//! faultsim --detect [--seed N]
//! faultsim --detect-matrix [--out PATH]
//! ```
//!
//! `--schedule` replays a JSON schedule (e.g. a CI artifact) instead of
//! generating one from the seed; `--emit-schedule` writes the schedule used
//! so a failure is replayable. `--detect` runs one seeded *silent* fault
//! schedule and prints the supervisor's health-event log. `--detect-matrix`
//! runs the full silent-fault detection matrix (optionally writing the
//! JSON report to `--out`). Exit status 1 means an invariant broke: byte
//! divergence, or (detect modes) a missed detection-latency bound.

use faultsim::{run_fault_free, FaultHarness, FaultSchedule, HarnessConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    seed: u64,
    steps: u64,
    events: usize,
    kinds: Vec<String>,
    crashes: u32,
    recoveries: u32,
    replayed_steps: u64,
    torn_files_skipped: u32,
    sim_elapsed_us: u64,
    final_gpus: u32,
    bitwise_identical: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: faultsim [--seed N] [--steps N] [--events N] \
         [--schedule PATH] [--emit-schedule PATH] [--json]\n\
         \x20      faultsim --detect [--seed N]\n\
         \x20      faultsim --detect-matrix [--out PATH]"
    );
    std::process::exit(2)
}

/// `--detect`: run one seeded silent-fault schedule and print the
/// supervisor's deterministic health-event log plus detection outcomes.
fn run_detect(seed: u64) -> ! {
    let schedule = FaultSchedule::generate_silent(seed, 14, 2);
    let case = faultsim::DetectCase { name: format!("cli-seed-{seed}"), schedule };
    let dir = std::env::temp_dir()
        .join(format!("easyscale-faultsim-detect-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = faultsim::run_case(&case, &dir);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "detect seed={seed} events={} evictions={} readmissions={}",
        case.schedule.events.len(),
        outcome.evictions,
        outcome.readmissions
    );
    println!("health events:");
    for ev in &outcome.health_events {
        println!(
            "  t={:>12}us  device {}  {} -> {}  ({})",
            ev.at_us,
            ev.device,
            ev.from.name(),
            ev.to.name(),
            ev.cause.name()
        );
    }
    println!("detections:");
    for d in &outcome.detections {
        let latency = d.latency_us.map(|l| format!("{l}us")).unwrap_or_else(|| "never".to_string());
        println!(
            "  device {}  {:<18} injected={}us latency={} bound={}us {}",
            d.device,
            d.kind,
            d.injected_at_us,
            latency,
            d.bound_us,
            if d.superseded {
                "(superseded)"
            } else if d.within_bound {
                "OK"
            } else {
                "MISSED BOUND"
            }
        );
    }
    println!(
        "invariant: final params {} the fault-free run; bounds {}",
        if outcome.bitwise_identical { "BYTE-IDENTICAL to" } else { "DIVERGED from" },
        if outcome.all_detected_within_bound { "held" } else { "VIOLATED" }
    );
    std::process::exit(if outcome.passed() { 0 } else { 1 })
}

/// `--detect-matrix`: run the full silent-fault matrix, optionally writing
/// the JSON report, and gate on it.
fn run_detect_matrix(out: Option<&str>) -> ! {
    let base =
        std::env::temp_dir().join(format!("easyscale-faultsim-matrix-{}", std::process::id()));
    let report = faultsim::run_matrix(&base);
    let _ = std::fs::remove_dir_all(&base);

    for case in &report.cases {
        println!(
            "  {:<22} seed={:<4} bitwise={} bounds={} detections={} evictions={} readmissions={}",
            case.name,
            case.seed,
            if case.bitwise_identical { "ok" } else { "DIVERGED" },
            if case.all_detected_within_bound { "ok" } else { "MISSED" },
            case.detections.len(),
            case.evictions,
            case.readmissions
        );
    }
    println!("detect matrix: {}", report.status);
    if let Some(path) = out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("report json"))
            .unwrap_or_else(|e| panic!("cannot write report {path}: {e}"));
        println!("report written to {path}");
    }
    std::process::exit(if report.passed() { 0 } else { 1 })
}

/// Load and validate a `--schedule` JSON artifact. Any problem — missing
/// file, unknown fault kind, out-of-range field — is a clear one-line error
/// and exit 2, never a panic: a malformed CI artifact should read as "your
/// input is bad", not as a faultsim crash.
fn load_schedule(path: &str) -> FaultSchedule {
    let fail = |msg: String| -> ! {
        eprintln!("faultsim: invalid schedule {path}: {msg}");
        std::process::exit(2)
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(format!("cannot read: {e}")),
    };
    let schedule = match FaultSchedule::from_json(&text) {
        Ok(s) => s,
        Err(e) => fail(format!("cannot parse: {e}")),
    };
    if let Err(e) = schedule.validate() {
        fail(e);
    }
    schedule
}

fn main() {
    let mut seed: u64 = 4242;
    let mut steps: u64 = 10;
    let mut events: usize = 5;
    let mut schedule_path: Option<String> = None;
    let mut emit_path: Option<String> = None;
    let mut json = false;
    let mut detect = false;
    let mut detect_matrix = false;
    let mut out_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--events" => events = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--schedule" => schedule_path = Some(take(&mut i)),
            "--emit-schedule" => emit_path = Some(take(&mut i)),
            "--json" => json = true,
            "--detect" => detect = true,
            "--detect-matrix" => detect_matrix = true,
            "--out" => out_path = Some(take(&mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
        i += 1;
    }

    if detect_matrix {
        run_detect_matrix(out_path.as_deref());
    }
    if detect {
        run_detect(seed);
    }

    let schedule = match &schedule_path {
        Some(path) => load_schedule(path),
        None => FaultSchedule::generate(seed, steps, events),
    };
    if let Some(path) = &emit_path {
        std::fs::write(path, schedule.to_json())
            .unwrap_or_else(|e| panic!("cannot write schedule {path}: {e}"));
    }

    // Unique per-invocation store dir: seed + pid (no wall clock).
    let dir = std::env::temp_dir().join(format!(
        "easyscale-faultsim-cli-{}-{}",
        schedule.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = HarnessConfig::default_chaos(dir.clone());
    cfg.total_steps = steps;

    let reference = run_fault_free(&cfg);
    let report = FaultHarness::new(cfg, schedule.clone()).run();
    let _ = std::fs::remove_dir_all(&dir);

    let identical = report.final_params == reference;
    let summary = Summary {
        seed: schedule.seed,
        steps,
        events: schedule.events.len(),
        kinds: schedule.kinds().into_iter().map(str::to_string).collect(),
        crashes: report.crashes,
        recoveries: report.recoveries,
        replayed_steps: report.replayed_steps,
        torn_files_skipped: report.torn_files_skipped,
        sim_elapsed_us: report.sim_elapsed_us,
        final_gpus: report.final_gpus,
        bitwise_identical: identical,
    };

    if json {
        println!("{}", serde_json::to_string_pretty(&summary).expect("summary json"));
    } else {
        println!(
            "faultsim seed={} steps={} events={} kinds=[{}]",
            summary.seed,
            summary.steps,
            summary.events,
            summary.kinds.join(", ")
        );
        for ev in &report.injected {
            println!("  step {:>3}  {:<18} {}", ev.step, ev.kind, ev.outcome);
        }
        println!(
            "  crashes={} recoveries={} replayed={} torn_skipped={} sim_elapsed={}us final_gpus={}",
            summary.crashes,
            summary.recoveries,
            summary.replayed_steps,
            summary.torn_files_skipped,
            summary.sim_elapsed_us,
            summary.final_gpus
        );
        println!(
            "  invariant: final params {} the fault-free run",
            if identical { "BYTE-IDENTICAL to" } else { "DIVERGED from" }
        );
    }

    if !identical {
        std::process::exit(1);
    }
}

//! faultsim — deterministic fault injection for the EasyScale engine.
//!
//! A seeded [`FaultSchedule`] injects worker crashes, stragglers, GPU
//! preemptions, elastic scale-out/in, transient all-reduce failures, and
//! torn or bit-flipped checkpoint writes into a real training loop, at
//! global-step boundaries. The harness ([`FaultHarness`]) recovers from
//! each fault through the subsystem that owns it — durable checkpoints,
//! bounded comm retries, checksum fallback, scheduler re-proposal — and the
//! chaos-matrix tests assert the repo's strongest claim: **at full
//! determinism (D1+D2), the final model parameters after any fault schedule
//! are byte-identical to the fault-free run.**
//!
//! The *silent* fault kinds (crash-without-notification, creeping
//! straggler, heartbeat drop — [`FaultKind::is_silent`]) announce nothing:
//! the AIMaster's self-healing loop ([`sched::Supervisor`]) must discover
//! them from heartbeat leases and straggler scores alone, and the
//! [`detect`] matrix additionally asserts **bounded detection latency** on
//! SimClock time.
//!
//! Everything is a pure function of `(config, schedule)`: schedules come
//! from `esrng` Philox streams or JSON, time is simulated
//! ([`device::SimClock`]), and no wall clock is ever read — so any chaos
//! failure replays exactly from its seed.
//!
//! # Quick start
//!
//! ```
//! use faultsim::{FaultHarness, FaultSchedule, HarnessConfig, run_fault_free};
//!
//! let dir = std::env::temp_dir().join(format!("faultsim-doc-{}", std::process::id()));
//! let cfg = HarnessConfig::default_chaos(dir.clone());
//! let reference = run_fault_free(&cfg);
//! let schedule = FaultSchedule::generate(7, cfg.total_steps, 3);
//! let report = FaultHarness::new(cfg, schedule).run();
//! assert_eq!(report.final_params, reference); // byte-identical under faults
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]

pub mod detect;
pub mod harness;
pub mod schedule;

pub use detect::{run_case, run_matrix, silent_matrix, CaseOutcome, DetectCase, DetectReport};
pub use harness::{
    run_fault_free, DetectionRecord, FaultHarness, HarnessConfig, InjectedEvent, RunReport,
};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule};

//! Fault schedules: what goes wrong, and when.
//!
//! A [`FaultSchedule`] is a step-indexed list of [`FaultEvent`]s, either
//! generated from a seed (one `esrng` Philox stream per schedule, so seed →
//! schedule is a pure function) or loaded from JSON (for replaying a
//! schedule from a CI artifact). Events fire at global-step boundaries —
//! the only points where EasyScale's elasticity machinery acts — and each
//! event fires exactly once even when a crash rewinds the step counter.

use esrng::{EsRng, StreamKey, StreamKind};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The training process dies; work since the last durable checkpoint is
    /// lost and replayed after recovery.
    WorkerCrash,
    /// One physical worker runs dilated (simulated-time slowdown; bits are
    /// unaffected, the timeline is).
    Straggler {
        /// Index of the slowed physical worker (modulo the live count).
        worker: u32,
        /// Dilation in milli-units (3000 = 3× slower).
        factor_milli: u64,
        /// Global steps the slowdown lasts.
        steps: u32,
    },
    /// The cluster revokes GPUs with no negotiation (spot reclaim). The
    /// scheduler degrades the allocation and the job rescales in place.
    Preemption {
        /// GPUs revoked.
        gpus: u32,
    },
    /// The job wins a scale-out grant (if free GPUs and headroom exist).
    ScaleOut {
        /// GPUs requested.
        gpus: u32,
    },
    /// The job releases GPUs back to the pool.
    ScaleIn {
        /// GPUs released (never below one survivor).
        gpus: u32,
    },
    /// Transient all-reduce failures. Fewer than the retry budget: retried
    /// and bitwise-invisible. At least the budget: the step fails and the
    /// job takes the crash-recovery path.
    CommFailure {
        /// Consecutive failing attempts injected.
        failures: u32,
    },
    /// A checkpoint write is interrupted partway, leaving a torn file as
    /// the newest checkpoint; the process then dies. Recovery must detect
    /// the tear (checksum) and fall back to the last good checkpoint.
    TornCheckpoint {
        /// Fraction of bytes that landed, in milli-units (0..=999).
        keep_frac_milli: u32,
    },
    /// The newest durable checkpoint suffers at-rest bit damage; the
    /// process then dies. Same detection + fallback path as a torn write.
    BitFlippedCheckpoint {
        /// Which bit of the file to flip (modulo file size).
        bit_index: u64,
    },
}

impl FaultKind {
    /// Stable short name (metric labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash => "crash",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Preemption { .. } => "preemption",
            FaultKind::ScaleOut { .. } => "scale_out",
            FaultKind::ScaleIn { .. } => "scale_in",
            FaultKind::CommFailure { .. } => "comm_failure",
            FaultKind::TornCheckpoint { .. } => "torn_checkpoint",
            FaultKind::BitFlippedCheckpoint { .. } => "bitflip_checkpoint",
        }
    }
}

/// One fault at one global-step boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Global step the fault fires before (first time the step is reached).
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed the schedule was generated from (0 for hand-authored ones).
    pub seed: u64,
    /// Events, sorted by step (stable order within a step).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule — the fault-free reference run.
    pub fn fault_free() -> Self {
        FaultSchedule { seed: 0, events: Vec::new() }
    }

    /// A hand-authored schedule.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed: 0, events }
    }

    /// Generate `n_events` faults over `total_steps` steps from a seed.
    /// Pure function of its arguments: the generator draws from one
    /// dedicated Philox stream, so the same seed always yields the same
    /// schedule — the property that makes a chaos-matrix failure
    /// reproducible from its seed alone.
    pub fn generate(seed: u64, total_steps: u64, n_events: usize) -> Self {
        assert!(total_steps >= 2, "need at least two steps to schedule faults");
        let mut rng = EsRng::for_stream(seed, StreamKey::global(StreamKind::User));
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            // Fire between step 1 and the last step so every schedule has a
            // fault-free first step (a checkpointable prefix) — mirrors real
            // clusters, where jobs at least start.
            let step = 1 + rng.next_below((total_steps - 1) as u32) as u64;
            let kind = match rng.next_below(8) {
                0 => FaultKind::WorkerCrash,
                1 => FaultKind::Straggler {
                    worker: rng.next_below(8),
                    factor_milli: 1500 + rng.next_below(4500) as u64,
                    steps: 1 + rng.next_below(3),
                },
                2 => FaultKind::Preemption { gpus: 1 + rng.next_below(3) },
                3 => FaultKind::ScaleOut { gpus: 1 + rng.next_below(3) },
                4 => FaultKind::ScaleIn { gpus: 1 + rng.next_below(2) },
                // Mostly transient (1..=3 < default budget 4), sometimes
                // fatal (4..=5) to exercise the crash path through comm.
                5 => FaultKind::CommFailure { failures: 1 + rng.next_below(5) },
                6 => FaultKind::TornCheckpoint { keep_frac_milli: 100 + rng.next_below(800) },
                _ => FaultKind::BitFlippedCheckpoint { bit_index: rng.next_u64() % 100_000 },
            };
            events.push(FaultEvent { step, kind });
        }
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed, events }
    }

    /// Serialize to pretty JSON (the CI artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule serializes")
    }

    /// Parse a schedule back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The set of distinct fault kind names in this schedule.
    pub fn kinds(&self) -> std::collections::BTreeSet<&'static str> {
        self.events.iter().map(|e| e.kind.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::generate(42, 10, 6);
        let b = FaultSchedule::generate(42, 10, 6);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(43, 10, 6);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn events_are_sorted_and_in_range() {
        let s = FaultSchedule::generate(7, 12, 10);
        assert_eq!(s.events.len(), 10);
        assert!(s.events.windows(2).all(|w| w[0].step <= w[1].step));
        assert!(s.events.iter().all(|e| e.step >= 1 && e.step < 12));
    }

    #[test]
    fn json_roundtrip_preserves_every_variant() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::WorkerCrash },
            FaultEvent {
                step: 2,
                kind: FaultKind::Straggler { worker: 1, factor_milli: 3000, steps: 2 },
            },
            FaultEvent { step: 3, kind: FaultKind::Preemption { gpus: 2 } },
            FaultEvent { step: 4, kind: FaultKind::ScaleOut { gpus: 2 } },
            FaultEvent { step: 5, kind: FaultKind::ScaleIn { gpus: 1 } },
            FaultEvent { step: 6, kind: FaultKind::CommFailure { failures: 2 } },
            FaultEvent { step: 7, kind: FaultKind::TornCheckpoint { keep_frac_milli: 500 } },
            FaultEvent { step: 8, kind: FaultKind::BitFlippedCheckpoint { bit_index: 99 } },
        ]);
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.kinds().len(), 8);
    }

    #[test]
    fn from_events_sorts_by_step() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 5, kind: FaultKind::WorkerCrash },
            FaultEvent { step: 2, kind: FaultKind::WorkerCrash },
        ]);
        assert_eq!(s.events[0].step, 2);
    }
}

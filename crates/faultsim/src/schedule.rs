//! Fault schedules: what goes wrong, and when.
//!
//! A [`FaultSchedule`] is a step-indexed list of [`FaultEvent`]s, either
//! generated from a seed (one `esrng` Philox stream per schedule, so seed →
//! schedule is a pure function) or loaded from JSON (for replaying a
//! schedule from a CI artifact). Events fire at global-step boundaries —
//! the only points where EasyScale's elasticity machinery acts — and each
//! event fires exactly once even when a crash rewinds the step counter.

use esrng::{EsRng, StreamKey, StreamKind};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The training process dies; work since the last durable checkpoint is
    /// lost and replayed after recovery.
    WorkerCrash,
    /// One physical worker runs dilated (simulated-time slowdown; bits are
    /// unaffected, the timeline is).
    Straggler {
        /// Index of the slowed physical worker (modulo the live count).
        worker: u32,
        /// Dilation in milli-units (3000 = 3× slower).
        factor_milli: u64,
        /// Global steps the slowdown lasts.
        steps: u32,
    },
    /// The cluster revokes GPUs with no negotiation (spot reclaim). The
    /// scheduler degrades the allocation and the job rescales in place.
    Preemption {
        /// GPUs revoked.
        gpus: u32,
    },
    /// The job wins a scale-out grant (if free GPUs and headroom exist).
    ScaleOut {
        /// GPUs requested.
        gpus: u32,
    },
    /// The job releases GPUs back to the pool.
    ScaleIn {
        /// GPUs released (never below one survivor).
        gpus: u32,
    },
    /// Transient all-reduce failures. Fewer than the retry budget: retried
    /// and bitwise-invisible. At least the budget: the step fails and the
    /// job takes the crash-recovery path.
    CommFailure {
        /// Consecutive failing attempts injected.
        failures: u32,
    },
    /// A checkpoint write is interrupted partway, leaving a torn file as
    /// the newest checkpoint; the process then dies. Recovery must detect
    /// the tear (checksum) and fall back to the last good checkpoint.
    TornCheckpoint {
        /// Fraction of bytes that landed, in milli-units (0..=999).
        keep_frac_milli: u32,
    },
    /// The newest durable checkpoint suffers at-rest bit damage; the
    /// process then dies. Same detection + fallback path as a torn write.
    BitFlippedCheckpoint {
        /// Which bit of the file to flip (modulo file size).
        bit_index: u64,
    },
    /// **Silent** crash: one device dies *without any notification to the
    /// harness*. The job cannot make progress (the all-reduce hangs on the
    /// dead member) until the AIMaster's failure detector notices the lost
    /// heartbeat lease, quarantines the device, and recovers from the
    /// last-good checkpoint on the survivors.
    SilentCrash {
        /// Index of the dying device (modulo the live count).
        worker: u32,
    },
    /// **Silent** creeping straggler: one device degrades progressively —
    /// its dilation starts at `start_milli` and grows by `ramp_milli`
    /// every step, forever, until the detector's straggler score
    /// quarantines it. Nothing announces the slowdown; it must be scored
    /// out of the heartbeat timings.
    CreepingStraggler {
        /// Index of the degrading device (modulo the live count).
        worker: u32,
        /// Initial dilation in milli-units (1200 = 1.2× slower).
        start_milli: u64,
        /// Dilation added per completed step (the "creep").
        ramp_milli: u64,
    },
    /// **Silent** heartbeat drop: the device keeps training, but its next
    /// `beats` heartbeats are lost in transit. A long enough drop is
    /// indistinguishable from a crash to the detector — which is the
    /// point: the detector may quarantine (and even roll back) a healthy
    /// device, and the run must *still* be byte-identical.
    HeartbeatDrop {
        /// Index of the muted device (modulo the live count).
        worker: u32,
        /// Consecutive heartbeats swallowed.
        beats: u32,
    },
    /// A **real** pool-thread fault: the worker's OS thread panics at its
    /// next step command. The supervised drain must reap it (harvesting the
    /// panic payload), respawn a replacement from the engine's param
    /// mirror, and replay the interrupted round — bitwise-invisibly.
    ThreadPanic {
        /// Index of the faulted pool worker (modulo the live count).
        worker: u32,
    },
    /// A **real** pool-thread fault: the worker's OS thread parks forever
    /// at its next step command (a wedged thread, not a dead one). Only the
    /// drain deadline can tell; the thread is quarantined, not joined.
    ThreadStall {
        /// Index of the faulted pool worker (modulo the live count).
        worker: u32,
    },
    /// A **real** pool-thread fault: the worker computes its next step but
    /// drops the reply publish — then keeps running. The byzantine-lite
    /// case: alive, responsive later, yet the round cannot complete without
    /// the supervisor replacing it.
    ReplyDrop {
        /// Index of the faulted pool worker (modulo the live count).
        worker: u32,
    },
}

impl FaultKind {
    /// Stable short name (metric labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash => "crash",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Preemption { .. } => "preemption",
            FaultKind::ScaleOut { .. } => "scale_out",
            FaultKind::ScaleIn { .. } => "scale_in",
            FaultKind::CommFailure { .. } => "comm_failure",
            FaultKind::TornCheckpoint { .. } => "torn_checkpoint",
            FaultKind::BitFlippedCheckpoint { .. } => "bitflip_checkpoint",
            FaultKind::SilentCrash { .. } => "silent_crash",
            FaultKind::CreepingStraggler { .. } => "creeping_straggler",
            FaultKind::HeartbeatDrop { .. } => "heartbeat_drop",
            FaultKind::ThreadPanic { .. } => "thread_panic",
            FaultKind::ThreadStall { .. } => "thread_stall",
            FaultKind::ReplyDrop { .. } => "reply_drop",
        }
    }

    /// Whether this fault is *silent*: nothing tells the harness it
    /// happened — the AIMaster's detector must discover it from heartbeats
    /// alone.
    pub fn is_silent(&self) -> bool {
        matches!(
            self,
            FaultKind::SilentCrash { .. }
                | FaultKind::CreepingStraggler { .. }
                | FaultKind::HeartbeatDrop { .. }
        )
    }

    /// Whether this fault targets a real pool worker *thread* (detected by
    /// the supervised drain deadline, not by heartbeats).
    pub fn is_thread_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::ThreadPanic { .. }
                | FaultKind::ThreadStall { .. }
                | FaultKind::ReplyDrop { .. }
        )
    }

    /// Structural validity of the event's fields, beyond what serde can
    /// check: `Err` carries a human-readable description of the first
    /// out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultKind::Straggler { factor_milli: 0, .. } => {
                Err("straggler factor_milli must be >= 1".into())
            }
            FaultKind::Straggler { steps: 0, .. } => Err("straggler steps must be >= 1".into()),
            FaultKind::Preemption { gpus: 0 }
            | FaultKind::ScaleOut { gpus: 0 }
            | FaultKind::ScaleIn { gpus: 0 } => Err(format!("{} gpus must be >= 1", self.name())),
            FaultKind::CommFailure { failures: 0 } => {
                Err("comm_failure failures must be >= 1".into())
            }
            FaultKind::TornCheckpoint { keep_frac_milli } if keep_frac_milli > 999 => Err(format!(
                "torn_checkpoint keep_frac_milli must be 0..=999, got {keep_frac_milli}"
            )),
            FaultKind::CreepingStraggler { start_milli: 0, .. } => {
                Err("creeping_straggler start_milli must be >= 1".into())
            }
            _ => Ok(()),
        }
    }
}

/// One fault at one global-step boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Global step the fault fires before (first time the step is reached).
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed the schedule was generated from (0 for hand-authored ones).
    pub seed: u64,
    /// Events, sorted by step (stable order within a step).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule — the fault-free reference run.
    pub fn fault_free() -> Self {
        FaultSchedule { seed: 0, events: Vec::new() }
    }

    /// A hand-authored schedule.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed: 0, events }
    }

    /// Generate `n_events` faults over `total_steps` steps from a seed.
    /// Pure function of its arguments: the generator draws from one
    /// dedicated Philox stream, so the same seed always yields the same
    /// schedule — the property that makes a chaos-matrix failure
    /// reproducible from its seed alone.
    pub fn generate(seed: u64, total_steps: u64, n_events: usize) -> Self {
        assert!(total_steps >= 2, "need at least two steps to schedule faults");
        let mut rng = EsRng::for_stream(seed, StreamKey::global(StreamKind::User));
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            // Fire between step 1 and the last step so every schedule has a
            // fault-free first step (a checkpointable prefix) — mirrors real
            // clusters, where jobs at least start.
            let step = 1 + rng.next_below((total_steps - 1) as u32) as u64;
            let kind = match rng.next_below(8) {
                0 => FaultKind::WorkerCrash,
                1 => FaultKind::Straggler {
                    worker: rng.next_below(8),
                    factor_milli: 1500 + rng.next_below(4500) as u64,
                    steps: 1 + rng.next_below(3),
                },
                2 => FaultKind::Preemption { gpus: 1 + rng.next_below(3) },
                3 => FaultKind::ScaleOut { gpus: 1 + rng.next_below(3) },
                4 => FaultKind::ScaleIn { gpus: 1 + rng.next_below(2) },
                // Mostly transient (1..=3 < default budget 4), sometimes
                // fatal (4..=5) to exercise the crash path through comm.
                5 => FaultKind::CommFailure { failures: 1 + rng.next_below(5) },
                6 => FaultKind::TornCheckpoint { keep_frac_milli: 100 + rng.next_below(800) },
                _ => FaultKind::BitFlippedCheckpoint { bit_index: rng.next_u64() % 100_000 },
            };
            events.push(FaultEvent { step, kind });
        }
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed, events }
    }

    /// Generate `n_events` *silent* faults over `total_steps` steps from a
    /// seed — the detection matrix's schedule source. Same purity contract
    /// as [`FaultSchedule::generate`], drawn from a decorrelated stream so
    /// adding this generator cannot perturb existing seeded schedules.
    ///
    /// Constraints that keep every drawn fault *detectable within its
    /// latency bound*:
    ///
    /// * events land in the first half of the run, so straggler scoring
    ///   has enough timed rounds left to converge;
    /// * heartbeat drops are long (12–16 beats ≥ several lease periods at
    ///   the fastest possible round), so the lease detector is guaranteed
    ///   to notice;
    /// * at most one creeping straggler per schedule — two concurrent
    ///   creepers would contaminate each other's scoring population
    ///   (extra draws degrade to heartbeat drops).
    pub fn generate_silent(seed: u64, total_steps: u64, n_events: usize) -> Self {
        assert!(total_steps >= 4, "need room for a detectable silent fault");
        // Decorrelate from `generate`: same stream kind, different key
        // material via a fixed seed salt.
        let mut rng = EsRng::for_stream(seed ^ 0x5117_E47F, StreamKey::global(StreamKind::User));
        let mut events = Vec::with_capacity(n_events);
        let mut creeper_drawn = false;
        for _ in 0..n_events {
            let step = 1 + rng.next_below((total_steps / 2) as u32) as u64;
            let worker = rng.next_below(8);
            let kind = match rng.next_below(3) {
                0 => FaultKind::SilentCrash { worker },
                1 if !creeper_drawn => {
                    creeper_drawn = true;
                    FaultKind::CreepingStraggler {
                        worker,
                        start_milli: 1100 + rng.next_below(600) as u64,
                        ramp_milli: 300 + rng.next_below(400) as u64,
                    }
                }
                _ => FaultKind::HeartbeatDrop { worker, beats: 12 + rng.next_below(5) },
            };
            events.push(FaultEvent { step, kind });
        }
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed, events }
    }

    /// Generate `n_events` *thread* faults over `total_steps` steps from a
    /// seed — the thread-fault chaos matrix's schedule source. Same purity
    /// contract as [`FaultSchedule::generate`], drawn from a decorrelated
    /// stream (fixed seed salt) so adding this generator cannot perturb
    /// existing seeded schedules. Faults land from step 1 to the
    /// second-to-last step, so every armed fault is consumed by a real step
    /// round before the run ends.
    pub fn generate_thread_faults(seed: u64, total_steps: u64, n_events: usize) -> Self {
        assert!(total_steps >= 3, "need room for a consumed thread fault");
        let mut rng = EsRng::for_stream(seed ^ 0x7412_FA11, StreamKey::global(StreamKind::User));
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let step = 1 + rng.next_below((total_steps - 2) as u32) as u64;
            let worker = rng.next_below(8);
            let kind = match rng.next_below(3) {
                0 => FaultKind::ThreadPanic { worker },
                1 => FaultKind::ThreadStall { worker },
                _ => FaultKind::ReplyDrop { worker },
            };
            events.push(FaultEvent { step, kind });
        }
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed, events }
    }

    /// Validate every event in the schedule; `Err` names the first invalid
    /// event by position. Loading paths (the CLI's `--schedule`) call this
    /// so a malformed artifact fails with a message, not a panic.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            ev.kind.validate().map_err(|e| format!("event {i} (step {}): {e}", ev.step))?;
        }
        Ok(())
    }

    /// Serialize to pretty JSON (the CI artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule serializes")
    }

    /// Parse a schedule back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The set of distinct fault kind names in this schedule.
    pub fn kinds(&self) -> std::collections::BTreeSet<&'static str> {
        self.events.iter().map(|e| e.kind.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::generate(42, 10, 6);
        let b = FaultSchedule::generate(42, 10, 6);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(43, 10, 6);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn events_are_sorted_and_in_range() {
        let s = FaultSchedule::generate(7, 12, 10);
        assert_eq!(s.events.len(), 10);
        assert!(s.events.windows(2).all(|w| w[0].step <= w[1].step));
        assert!(s.events.iter().all(|e| e.step >= 1 && e.step < 12));
    }

    #[test]
    fn json_roundtrip_preserves_every_variant() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::WorkerCrash },
            FaultEvent {
                step: 2,
                kind: FaultKind::Straggler { worker: 1, factor_milli: 3000, steps: 2 },
            },
            FaultEvent { step: 3, kind: FaultKind::Preemption { gpus: 2 } },
            FaultEvent { step: 4, kind: FaultKind::ScaleOut { gpus: 2 } },
            FaultEvent { step: 5, kind: FaultKind::ScaleIn { gpus: 1 } },
            FaultEvent { step: 6, kind: FaultKind::CommFailure { failures: 2 } },
            FaultEvent { step: 7, kind: FaultKind::TornCheckpoint { keep_frac_milli: 500 } },
            FaultEvent { step: 8, kind: FaultKind::BitFlippedCheckpoint { bit_index: 99 } },
        ]);
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.kinds().len(), 8);
    }

    #[test]
    fn silent_json_roundtrip_preserves_every_silent_variant() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::SilentCrash { worker: 1 } },
            FaultEvent {
                step: 2,
                kind: FaultKind::CreepingStraggler {
                    worker: 0,
                    start_milli: 1200,
                    ramp_milli: 400,
                },
            },
            FaultEvent { step: 3, kind: FaultKind::HeartbeatDrop { worker: 1, beats: 12 } },
        ]);
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(
            back.kinds().into_iter().collect::<Vec<_>>(),
            vec!["creeping_straggler", "heartbeat_drop", "silent_crash"]
        );
        assert!(back.events.iter().all(|e| e.kind.is_silent()));
    }

    #[test]
    fn silent_generation_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::generate_silent(7, 14, 3);
        let b = FaultSchedule::generate_silent(7, 14, 3);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::generate_silent(8, 14, 3));
        // Decorrelated from the legacy generator under the same seed.
        assert_ne!(a.events, FaultSchedule::generate(7, 14, 3).events);
    }

    #[test]
    fn silent_generation_keeps_faults_detectable() {
        for seed in 0..32u64 {
            let s = FaultSchedule::generate_silent(seed, 14, 3);
            assert!(s.events.iter().all(|e| e.kind.is_silent()));
            assert!(
                s.events.iter().all(|e| e.step >= 1 && e.step <= 7),
                "silent faults land in the first half: {:?}",
                s.events
            );
            let creepers = s
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::CreepingStraggler { .. }))
                .count();
            assert!(creepers <= 1, "at most one creeper per schedule: {:?}", s.events);
            for e in &s.events {
                if let FaultKind::HeartbeatDrop { beats, .. } = e.kind {
                    assert!((12..=16).contains(&beats), "drops must be long enough: {beats}");
                }
            }
        }
    }

    #[test]
    fn thread_fault_json_roundtrip_preserves_every_variant() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::ThreadPanic { worker: 0 } },
            FaultEvent { step: 2, kind: FaultKind::ThreadStall { worker: 1 } },
            FaultEvent { step: 3, kind: FaultKind::ReplyDrop { worker: 2 } },
        ]);
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(
            back.kinds().into_iter().collect::<Vec<_>>(),
            vec!["reply_drop", "thread_panic", "thread_stall"]
        );
        assert!(back.events.iter().all(|e| e.kind.is_thread_fault()));
        assert!(back.events.iter().all(|e| !e.kind.is_silent()));
    }

    #[test]
    fn thread_fault_generation_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::generate_thread_faults(11, 10, 4);
        assert_eq!(a, FaultSchedule::generate_thread_faults(11, 10, 4));
        assert_ne!(a, FaultSchedule::generate_thread_faults(12, 10, 4));
        // Decorrelated from the legacy generators under the same seed.
        assert_ne!(a.events, FaultSchedule::generate(11, 10, 4).events);
        assert!(a.events.iter().all(|e| e.kind.is_thread_fault()));
        // Consumable: armed before the last step round.
        assert!(a.events.iter().all(|e| e.step >= 1 && e.step <= 8));
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        let bad = [
            FaultKind::Straggler { worker: 0, factor_milli: 0, steps: 2 },
            FaultKind::Straggler { worker: 0, factor_milli: 2000, steps: 0 },
            FaultKind::Preemption { gpus: 0 },
            FaultKind::ScaleOut { gpus: 0 },
            FaultKind::ScaleIn { gpus: 0 },
            FaultKind::CommFailure { failures: 0 },
            FaultKind::TornCheckpoint { keep_frac_milli: 1000 },
            FaultKind::CreepingStraggler { worker: 0, start_milli: 0, ramp_milli: 100 },
        ];
        for kind in bad {
            let s = FaultSchedule::from_events(vec![FaultEvent { step: 1, kind }]);
            let err = s.validate().unwrap_err();
            assert!(err.starts_with("event 0 (step 1):"), "error names the event: {err}");
        }
        // Generated schedules always validate.
        for seed in 0..8 {
            FaultSchedule::generate(seed, 10, 6).validate().unwrap();
            FaultSchedule::generate_silent(seed, 14, 3).validate().unwrap();
            FaultSchedule::generate_thread_faults(seed, 10, 4).validate().unwrap();
        }
    }

    #[test]
    fn from_events_sorts_by_step() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent { step: 5, kind: FaultKind::WorkerCrash },
            FaultEvent { step: 2, kind: FaultKind::WorkerCrash },
        ]);
        assert_eq!(s.events[0].step, 2);
    }
}

//! The fault-injection harness: drives a real `easyscale::Engine` through a
//! [`FaultSchedule`](crate::FaultSchedule) and reports what happened.
//!
//! The invariant under test is the paper's headline claim pushed through
//! every failure mode this repo models: **for any fault schedule, the final
//! model parameters at D2 are byte-identical to the fault-free run.** Each
//! fault maps to the subsystem mechanism that absorbs it:
//!
//! | fault                | absorbed by                                      |
//! |----------------------|--------------------------------------------------|
//! | worker crash         | durable checkpoints + bitwise D1 restore         |
//! | comm failure         | `comm::retry` (bitwise-identical recomputation); |
//! |                      | exhaustion falls through to the crash path       |
//! | torn / bit-flipped   | `core::store` checksum + last-good fallback,     |
//! | checkpoint           | then deterministic replay                        |
//! | preemption           | `sched::apply_preemption` + `Engine::rescale`    |
//! | scale-out / scale-in | proposal → grant → `Engine::rescale`             |
//! | straggler            | nothing to absorb: slowdown dilates simulated    |
//! |                      | time only, never bits                            |
//! | **silent** crash /   | nothing announces these: the AIMaster            |
//! | creeping straggler / | supervisor ([`sched::Supervisor`]) must discover |
//! | heartbeat drop       | them from heartbeat leases and straggler scores, |
//! |                      | then evict / roll back / readmit on its own      |
//! | **thread** panic /   | the supervised pool drains (`core::pool`): a     |
//! | stall / reply drop   | deadline drain reaps the faulted OS thread,      |
//! |                      | respawns it from the engine's param mirror, and  |
//! |                      | replays the interrupted round in-place           |
//!
//! Unlike the announced faults, the silent kinds close the paper's §4
//! detection loop: each physical device gets a *stable id* (it survives
//! rescales), emits a [`comm::Heartbeat`] after every step on virtual time,
//! and a [`sched::Supervisor`] turns missed leases and straggler scores
//! into evictions, checkpoint fallbacks, and probational readmissions — no
//! harness hint anywhere in that path. The harness additionally computes a
//! *detection-latency bound* for every injected silent fault (from the
//! health policy and the schedule itself) and records whether detection
//! met it.
//!
//! The thread faults are *real* faults on real OS threads, so their
//! wall-clock detection instant is not simulated. To keep the report a pure
//! function of `(config, schedule)`, the harness feeds a *dedicated*
//! thread-health [`sched::HealthTracker`] a synthetic virtual-time cascade
//! per recovery (injection instant + the drain policy's worst-case
//! deadline, then one missed lease per detection round) and asserts the
//! latency bound on that timeline. The deterministic outputs — final
//! params, the MAIN supervisor's health log, simulated time — never see a
//! thread fault at all: that is the tentpole invariant.
//!
//! Time is simulated ([`device::SimClock`]): the harness never reads a wall
//! clock, so a chaos run is a pure function of `(config, schedule)` — the
//! health-event log included, byte for byte.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use comm::{Heartbeat, HeartbeatBus, RetryPolicy};
use device::{GpuType, PerfModel, SimClock, DILATION_ONE};
use easyscale::{
    CheckpointStore, Engine, ExecMode, ExecOptions, JobConfig, Placement, ThreadFault,
};
use models::Workload;
use sched::{
    Companion, FreePool, HealthEvent, HealthPolicy, HealthState, HealthTracker, InterJobScheduler,
    IntraJobScheduler, Supervisor, SupervisorAction,
};
use serde::Serialize;

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};

/// Dilation ratio at which the straggler z-score crosses the detection
/// threshold: with the score's σ floored at median/4 and the default
/// 2000 m-σ threshold, a device running at ≥ 1.5× the population median
/// scores as slow (see `sched::health`). Latency bounds for creeping
/// stragglers count ramp rounds until this ratio is reached.
const STRAGGLER_FIRE_RATIO_MILLI: u64 = 1500;

/// Harness configuration: the job under test plus its simulated cluster.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// The training job (workload, seed, nEST, determinism level).
    pub job: JobConfig,
    /// Global steps the run must complete.
    pub total_steps: u64,
    /// Durable-checkpoint cadence (every N completed global steps).
    pub checkpoint_every: u64,
    /// GPU type of the (homogeneous) simulated cluster.
    pub gpu: GpuType,
    /// GPUs the job starts on.
    pub initial_gpus: u32,
    /// Total GPUs of that type in the cluster (the rest start free).
    pub cluster_gpus: u32,
    /// Directory for durable checkpoints (unique per run).
    pub store_dir: PathBuf,
    /// Failure-detection policy for the AIMaster supervisor. The lease is
    /// sized to twice the worst-case step (all ESTs time-slicing one GPU),
    /// so a healthy-but-overloaded worker can never miss it.
    pub health: HealthPolicy,
    /// Order the initial devices announce themselves in. Detection must be
    /// byte-identical under any permutation (the heartbeat bus
    /// canonicalizes) — the shuffled-start-order determinism test drives
    /// this knob.
    pub start_order: Vec<u32>,
    /// Worker execution mode for every engine the harness builds. Pool (the
    /// production shape) by default; the `nthread_eq_single` equivalence
    /// tests sweep this against `SingleThread`.
    pub exec_mode: ExecMode,
    /// Deadline policy for the pool's supervised drains (real wall-clock
    /// windows, since thread faults are real). Sized far past a worker's
    /// actual step latency so fault-free rounds never time out, yet small
    /// enough that injected-thread-fault tests stay quick.
    pub drain: RetryPolicy,
}

impl HarnessConfig {
    /// The chaos-matrix default: a cheap NeuMF job at full determinism
    /// (D1+D2) on a 4×V100 cluster, starting on 2 GPUs.
    pub fn default_chaos(store_dir: PathBuf) -> Self {
        let job = JobConfig::new(Workload::NeuMF, 4242, 4)
            .with_dataset_len(128)
            .with_determinism(easyscale::Determinism::d1_d2());
        let lease_us = 2 * Self::worst_step_us(&job, GpuType::V100);
        HarnessConfig {
            job,
            total_steps: 10,
            checkpoint_every: 2,
            gpu: GpuType::V100,
            initial_gpus: 2,
            cluster_gpus: 4,
            store_dir,
            health: HealthPolicy::with_lease(lease_us),
            start_order: (0..2).collect(),
            exec_mode: ExecMode::Pool,
            // 6 windows of 10ms..320ms = 630ms worst case per reap: ~100×
            // a NeuMF step round, ~0.6s per injected thread fault.
            drain: RetryPolicy { max_attempts: 6, base_backoff_us: 10_000, backoff_multiplier: 2 },
        }
    }

    /// The silent-fault detection-matrix default: same cluster as
    /// [`HarnessConfig::default_chaos`] but a longer run (14 steps), so a
    /// creeping straggler injected in the first half always has enough
    /// timed rounds left for its score to converge.
    pub fn default_detect(store_dir: PathBuf) -> Self {
        let mut cfg = Self::default_chaos(store_dir);
        cfg.total_steps = 14;
        cfg
    }

    /// Worst-case simulated duration of one global step for this job on
    /// one GPU of type `gpu`: all ESTs time-slice a single device. The
    /// heartbeat lease is sized from this.
    pub fn worst_step_us(job: &JobConfig, gpu: GpuType) -> u64 {
        let spec = job.workload.spec();
        let overhead = if job.determinism.hardware_agnostic { spec.d2_overhead } else { 1.0 };
        let perf = PerfModel::default();
        let mb = perf.minibatch_time(spec.base_v100_secs, gpu, overhead);
        (perf.easyscale_global_step(mb, job.n_ests) * 1e6) as u64
    }
}

/// One injected fault and what the harness observed happen.
#[derive(Debug, Clone)]
pub struct InjectedEvent {
    /// Global step the fault fired at.
    pub step: u64,
    /// Stable fault-kind name.
    pub kind: &'static str,
    /// Human-readable outcome ("recovered from step 4", "grant denied", …).
    pub outcome: String,
}

/// One silent fault's detection outcome: when it was injected, when (and
/// whether) the supervisor noticed, and whether the latency bound held.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionRecord {
    /// Device the fault targeted.
    pub device: u32,
    /// Fault-kind name.
    pub kind: String,
    /// Virtual time of injection.
    pub injected_at_us: u64,
    /// Latency bound computed at injection (µs of SimClock time), from the
    /// health policy, the perf model, and the schedule's own event count —
    /// never from the detector's behaviour.
    pub bound_us: u64,
    /// Virtual time of the first Suspect-or-worse transition for the
    /// device at or after injection, if any.
    pub detected_at_us: Option<u64>,
    /// `detected_at_us - injected_at_us`, when detected.
    pub latency_us: Option<u64>,
    /// Detected within the bound.
    pub within_bound: bool,
    /// The fault mutated before detection could be attributed (a later
    /// silent fault hit the same device, or the device left through a
    /// planned path). Superseded records are exempt from the bound
    /// assertion; the byte-identity invariant still applies in full.
    pub superseded: bool,
}

/// Everything a chaos run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Schedule seed (0 for hand-authored schedules).
    pub seed: u64,
    /// Global steps completed.
    pub total_steps: u64,
    /// Every injected fault, in firing order, with its outcome.
    pub injected: Vec<InjectedEvent>,
    /// Process deaths taken (crashes, comm exhaustion, checkpoint faults).
    pub crashes: u32,
    /// Successful recoveries (always equals `crashes` when the run ends).
    pub recoveries: u32,
    /// Steps re-executed because a crash rewound to an older checkpoint.
    pub replayed_steps: u64,
    /// Corrupt/torn checkpoint files skipped during recovery.
    pub torn_files_skipped: u32,
    /// Simulated run duration in microseconds.
    pub sim_elapsed_us: u64,
    /// GPUs held when the run finished.
    pub final_gpus: u32,
    /// Final flat model parameters (the invariant's subject).
    pub final_params: Vec<f32>,
    /// The supervisor's full health-event log, in firing order — the
    /// deterministic detection record (byte-identical across repeat runs).
    pub health_events: Vec<HealthEvent>,
    /// Detection outcome of every armed silent fault.
    pub detections: Vec<DetectionRecord>,
    /// Devices the supervisor evicted from the allocation.
    pub evictions: u32,
    /// Devices the supervisor readmitted after probation.
    pub readmissions: u32,
    /// Pool worker threads respawned by the supervised drains (every real
    /// thread fault costs exactly one; spurious deadline hits can add
    /// more — both are bitwise-invisible).
    pub pool_respawns: u64,
    /// Respawns whose old thread was quarantined alive (stall / reply
    /// drop) rather than joined dead (panic).
    pub pool_quarantines: u64,
    /// Detection outcome of every armed pool-thread fault, on the
    /// dedicated thread-health tracker's virtual timeline.
    pub thread_detections: Vec<DetectionRecord>,
    /// The dedicated thread-health tracker's event log (synthetic
    /// virtual-time cascade; the MAIN `health_events` log never contains a
    /// thread fault).
    pub thread_health_events: Vec<HealthEvent>,
}

impl RunReport {
    /// The final parameters as raw bit patterns — byte-identity is compared
    /// on these, so `-0.0 == 0.0` and NaN payloads cannot hide a diff.
    pub fn params_bits(&self) -> Vec<u32> {
        self.final_params.iter().map(|p| p.to_bits()).collect()
    }

    /// Whether every non-superseded silent fault was detected within its
    /// latency bound.
    pub fn all_detected_within_bound(&self) -> bool {
        self.detections.iter().all(|d| d.superseded || d.within_bound)
    }

    /// Whether every non-superseded pool-thread fault was detected within
    /// its latency bound (on the dedicated tracker's virtual timeline).
    pub fn all_thread_faults_detected_within_bound(&self) -> bool {
        self.thread_detections.iter().all(|d| d.superseded || d.within_bound)
    }
}

/// A silent fault awaiting attribution to a health transition.
#[derive(Debug, Clone)]
struct PendingDetection {
    device: u32,
    kind: &'static str,
    injected_at_us: u64,
    bound_us: u64,
    detected_at_us: Option<u64>,
    superseded: bool,
}

/// An armed pool-thread fault awaiting its recovery record from the
/// engine's supervised drains.
#[derive(Debug, Clone)]
struct PendingThread {
    /// Pool slot index the fault was armed on.
    worker: u32,
    /// Stable device id whose thread carries the fault (reporting only).
    device: u32,
    kind: &'static str,
    injected_at_us: u64,
    bound_us: u64,
    detected_at_us: Option<u64>,
    superseded: bool,
}

/// The harness itself. Build with [`FaultHarness::new`], run with
/// [`FaultHarness::run`].
pub struct FaultHarness {
    cfg: HarnessConfig,
    schedule: FaultSchedule,
    /// `None` only transiently, while the process is "dead" or rescaling.
    engine: Option<Engine>,
    intra: IntraJobScheduler,
    inter: InterJobScheduler,
    free: FreePool,
    store: CheckpointStore,
    clock: SimClock,
    perf: PerfModel,
    /// Next unfired schedule entry. Monotone: a crash rewinds the engine's
    /// step counter but never this index, so each event fires exactly once.
    next_event: usize,
    /// Active slowdown: (target device, dilation milli, steps remaining).
    straggler: Option<(u32, u64, u32)>,
    /// The AIMaster's self-healing loop (detector + action mapping).
    supervisor: Supervisor,
    /// Heartbeat transport (canonicalizing drain order).
    bus: HeartbeatBus,
    /// Stable ids of the devices currently in the allocation.
    active: BTreeSet<u32>,
    /// Stable ids of free (never-allocated or released) devices. Mirrors
    /// the free-pool *count* the scheduler sees.
    free_ids: BTreeSet<u32>,
    /// Evicted-but-tracked devices sitting out a quarantine.
    parked_sick: BTreeSet<u32>,
    /// Devices that died silently (no beats ever again).
    silent_crashed: BTreeSet<u32>,
    /// Remaining heartbeats to swallow, per muted device.
    hb_drop: BTreeMap<u32, u32>,
    /// Creeping stragglers: device → (current dilation milli, ramp milli).
    creeping: BTreeMap<u32, (u64, u64)>,
    /// Armed silent faults awaiting detection.
    pending: Vec<PendingDetection>,
    /// Dedicated tracker for pool-thread faults, fed a synthetic
    /// virtual-time cascade per recovery. Never mixed into `supervisor`:
    /// the MAIN health log must stay byte-identical to the fault-free run.
    thread_health: HealthTracker,
    /// Armed pool-thread faults awaiting their recovery records.
    pending_threads: Vec<PendingThread>,
    report: RunReport,
}

impl FaultHarness {
    /// Build a harness for `cfg` and `schedule`. The checkpoint store keeps
    /// enough history that a torn newest file always has a good predecessor.
    pub fn new(cfg: HarnessConfig, schedule: FaultSchedule) -> Self {
        assert!(cfg.initial_gpus >= 1 && cfg.initial_gpus <= cfg.cluster_gpus);
        assert!(cfg.checkpoint_every >= 1);
        // Pool threads are named after the stable device ids (esw-dev{id}),
        // so a thread keeps its identity across rescale/evict cycles.
        let engine = Engine::new_opts(
            cfg.job.clone(),
            Self::placement(&cfg.job, cfg.gpu, cfg.initial_gpus),
            ExecOptions {
                mode: cfg.exec_mode,
                device_ids: (0..cfg.initial_gpus).collect(),
                drain: cfg.drain,
            },
        );
        // The companion's maxP is the job's nEST: placements must cover
        // exactly the engine's virtual ranks.
        let companion = Companion::for_workload(&cfg.job.workload.spec(), cfg.job.n_ests, false);
        let mut intra = IntraJobScheduler::new(1, companion, false);
        intra.apply_allocation(vec![(cfg.gpu, cfg.initial_gpus)]);
        let free: FreePool = [(cfg.gpu, cfg.cluster_gpus - cfg.initial_gpus)].into_iter().collect();
        let store = CheckpointStore::open(&cfg.store_dir, "chaos-job")
            .expect("store dir")
            .with_keep_last(16);
        let report = RunReport {
            seed: schedule.seed,
            total_steps: cfg.total_steps,
            injected: Vec::new(),
            crashes: 0,
            recoveries: 0,
            replayed_steps: 0,
            torn_files_skipped: 0,
            sim_elapsed_us: 0,
            final_gpus: cfg.initial_gpus,
            final_params: Vec::new(),
            health_events: Vec::new(),
            detections: Vec::new(),
            evictions: 0,
            readmissions: 0,
            pool_respawns: 0,
            pool_quarantines: 0,
            thread_detections: Vec::new(),
            thread_health_events: Vec::new(),
        };
        let thread_health = HealthTracker::new(cfg.health);
        let mut supervisor = Supervisor::new(cfg.health);
        let active: BTreeSet<u32> = (0..cfg.initial_gpus).collect();
        let free_ids: BTreeSet<u32> = (cfg.initial_gpus..cfg.cluster_gpus).collect();
        let mut bus = HeartbeatBus::new();
        // Devices announce themselves in `start_order` — a permutation that
        // MUST be invisible to detection (the bus canonicalizes, the
        // tracker is BTreeMap-keyed). Unknown ids in the order are ignored.
        for &d in &cfg.start_order {
            if active.contains(&d) {
                supervisor.register(d, 0);
                bus.publish(Heartbeat { device: d, step: 0, sent_at_us: 0, step_time_us: None });
            }
        }
        for &d in &active {
            if !cfg.start_order.contains(&d) {
                supervisor.register(d, 0);
                bus.publish(Heartbeat { device: d, step: 0, sent_at_us: 0, step_time_us: None });
            }
        }
        FaultHarness {
            cfg,
            schedule,
            engine: Some(engine),
            intra,
            inter: InterJobScheduler,
            free,
            store,
            clock: SimClock::new(),
            perf: PerfModel::default(),
            next_event: 0,
            straggler: None,
            supervisor,
            bus,
            active,
            free_ids,
            parked_sick: BTreeSet::new(),
            silent_crashed: BTreeSet::new(),
            hb_drop: BTreeMap::new(),
            creeping: BTreeMap::new(),
            pending: Vec::new(),
            thread_health,
            pending_threads: Vec::new(),
            report,
        }
    }

    /// A placement for `gpus` GPUs of one type. GPUs beyond nEST host no
    /// EST and are dropped by `Placement::homogeneous`, so the cap keeps
    /// worker count meaningful.
    fn placement(job: &JobConfig, gpu: GpuType, gpus: u32) -> Placement {
        Placement::homogeneous(job.n_ests, gpus.min(job.n_ests).max(1), gpu)
    }

    fn current_gpus(&self) -> u32 {
        self.intra.current().iter().map(|&(_, n)| n).sum()
    }

    /// Deterministic per-device duration of one local step carrying `load`
    /// ESTs (D2 kernels pay the catalog's overhead factor).
    fn device_step_us(&self, load: u32) -> u64 {
        let spec = self.cfg.job.workload.spec();
        let overhead =
            if self.cfg.job.determinism.hardware_agnostic { spec.d2_overhead } else { 1.0 };
        let mb = self.perf.minibatch_time(spec.base_v100_secs, self.cfg.gpu, overhead);
        (self.perf.easyscale_global_step(mb, load.max(1)) * 1e6) as u64
    }

    /// Simulated duration of one global step on the current allocation:
    /// the busiest GPU time-slices `ceil(nEST / gpus)` ESTs.
    fn step_time_us(&self) -> u64 {
        let gpus = self.current_gpus().max(1);
        self.device_step_us(self.cfg.job.n_ests.div_ceil(gpus))
    }

    /// Execution options for an engine built *now*: the configured mode,
    /// with the currently-active stable device ids naming the pool threads
    /// (slot order). Purely diagnostic — ids never feed the math.
    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            mode: self.cfg.exec_mode,
            device_ids: self.active.iter().copied().collect(),
            drain: self.cfg.drain,
        }
    }

    /// Map a schedule's worker index onto a live device id (n-th active,
    /// modulo the live count) — schedules address *positions*, devices
    /// have stable ids.
    fn nth_active(&self, worker: u32) -> u32 {
        let devices: Vec<u32> = self.active.iter().copied().collect();
        devices[worker as usize % devices.len()]
    }

    fn record(&mut self, step: u64, kind: &'static str, outcome: String) {
        obs::counter_add("faultsim.injected_total", 1);
        obs::counter_add(&format!("faultsim.injected.{kind}"), 1);
        self.report.injected.push(InjectedEvent { step, kind, outcome });
    }

    /// Simulated process-restart latency (data-worker respawn dominates,
    /// paper §5.1.2).
    fn restart_us(&self) -> u64 {
        let spec = self.cfg.job.workload.spec();
        (self.perf.first_minibatch_latency(spec.base_v100_secs, self.cfg.job.data_workers) * 1e6)
            as u64
    }

    /// Kill the process and recover from the newest *valid* durable
    /// checkpoint (walking past torn/corrupt files), on the current
    /// allocation. Replayed steps are counted; bitwise D1 restore makes the
    /// replay converge to exactly the lost bits.
    fn crash_and_recover(&mut self, why: &str) -> String {
        // Recoveries already taken by the dying engine's drains still
        // resolve; armed-but-unconsumed thread faults die with the pool.
        self.absorb_pool_recoveries();
        self.supersede_pending_threads();
        let step_at_death = self.engine.as_ref().map(|e| e.global_step()).unwrap_or(0);
        self.engine = None; // the process is dead; all in-memory state is gone
        self.report.crashes += 1;
        obs::counter_add("faultsim.crashes", 1);

        let gpus = self.current_gpus();
        let placement = Self::placement(&self.cfg.job, self.cfg.gpu, gpus);
        let exec = self.exec_options();
        let (engine, resumed_from, skipped) =
            match self.store.load_latest_valid().expect("store io") {
                Some((ckpt, skipped)) => {
                    let step = ckpt.global_step;
                    let e =
                        Engine::from_checkpoint_opts(self.cfg.job.clone(), placement, &ckpt, exec);
                    (e, step, skipped)
                }
                // No durable state at all: cold restart, full replay.
                None => (Engine::new_opts(self.cfg.job.clone(), placement, exec), 0, 0),
            };
        self.report.torn_files_skipped += skipped;
        self.report.replayed_steps += step_at_death.saturating_sub(resumed_from);
        self.report.recoveries += 1;
        obs::counter_add("faultsim.recoveries", 1);
        obs::counter_add("faultsim.replayed_steps", step_at_death.saturating_sub(resumed_from));

        self.clock.advance_us(self.restart_us());
        self.engine = Some(engine);
        format!("{why}: recovered from checkpoint step {resumed_from} (skipped {skipped} corrupt)")
    }

    /// Rescale the live engine onto the scheduler's current allocation
    /// (checkpoint + restore under the hood — Figure 5's path).
    fn rescale_to_current(&mut self) {
        // The rescale rebuilds every pool thread: resolve what the old pool
        // already caught, supersede what it never got to consume.
        self.absorb_pool_recoveries();
        self.supersede_pending_threads();
        let gpus = self.current_gpus();
        let placement = Self::placement(&self.cfg.job, self.cfg.gpu, gpus);
        let engine = self.engine.take().expect("live engine");
        self.engine = Some(engine.rescale_opts(placement, self.exec_options()));
        obs::counter_add("faultsim.rescales", 1);
        // Reconfiguration also pays the restart latency.
        self.clock.advance_us(self.restart_us());
    }

    // ---- silent-fault bookkeeping -------------------------------------

    /// Arm a detection expectation for a silent fault on `device`. With
    /// `assert_bound == false` the record is born superseded: detection is
    /// still tracked, but the latency bound is not asserted (used when an
    /// overlapping fault makes attribution ambiguous).
    fn arm_detection(&mut self, device: u32, kind: &'static str, assert_bound: bool) {
        let bound_us = self.detection_bound_us(kind, device);
        self.pending.push(PendingDetection {
            device,
            kind,
            injected_at_us: self.clock.now_us(),
            bound_us,
            detected_at_us: None,
            superseded: !assert_bound,
        });
    }

    /// Mark every unresolved pending on `device` superseded (a later fault
    /// or a planned removal changed the device's failure mode).
    fn supersede_pending(&mut self, device: u32) {
        for p in &mut self.pending {
            if p.device == device && p.detected_at_us.is_none() {
                p.superseded = true;
            }
        }
    }

    /// The detection-latency bound for a silent fault injected *now*.
    ///
    /// Bounds are computed from the health policy, the perf model, and the
    /// *schedule's* event count — never from anything the detector does —
    /// so they are a legitimate test oracle. Terms (all SimClock µs,
    /// saturating):
    ///
    /// * crash: `quarantine_misses` full leases must lapse, plus detection
    ///   rounds on either side;
    /// * heartbeat drop: detected at the first *suspect* transition — one
    ///   lapsed lease plus round slack;
    /// * creeping straggler: ramp rounds until the dilation crosses
    ///   [`STRAGGLER_FIRE_RATIO_MILLI`], then `suspect_windows` slow
    ///   rounds, each at most a worst-case step at the final dilation;
    /// * every bound adds an *interference allowance* per scheduled event:
    ///   other faults (and the supervisor's own recoveries/rescales) spend
    ///   simulated time — blocked rounds, checkpoint rollbacks, restart
    ///   latencies — that delays attribution without being this fault's
    ///   doing.
    fn detection_bound_us(&self, kind: &'static str, device: u32) -> u64 {
        let p = &self.cfg.health;
        let worst = self.device_step_us(self.cfg.job.n_ests);
        let restart = self.restart_us();
        let per_event = p
            .quarantine_misses
            .saturating_mul(p.lease_us)
            .saturating_add(worst.saturating_mul(4))
            .saturating_add(restart.saturating_mul(8));
        let interference = per_event.saturating_mul(self.schedule.events.len() as u64);
        let own = match kind {
            "silent_crash" => {
                p.quarantine_misses.saturating_mul(p.lease_us).saturating_add(worst * 4)
            }
            "heartbeat_drop" => p.lease_us.saturating_add(worst * 4),
            "creeping_straggler" => {
                let (start, ramp) = self.creeping.get(&device).copied().unwrap_or((1500, 300));
                let cross_rounds = if start >= STRAGGLER_FIRE_RATIO_MILLI {
                    0
                } else {
                    (STRAGGLER_FIRE_RATIO_MILLI - start).div_ceil(ramp.max(1))
                };
                let rounds = cross_rounds + p.suspect_windows as u64 + 2;
                let final_factor = start.saturating_add(ramp.saturating_mul(rounds));
                rounds
                    .saturating_mul(worst.saturating_mul(final_factor) / DILATION_ONE)
                    .saturating_add(p.lease_us)
            }
            _ => p.quarantine_misses.saturating_mul(p.lease_us).saturating_add(worst * 4),
        };
        own.saturating_add(interference)
    }

    // ---- pool-thread fault bookkeeping --------------------------------

    /// Arm a real fault on a pool worker thread and record the detection
    /// expectation. Single-thread engines have no pool threads: the event
    /// is a logged no-op, which keeps thread-fault schedules runnable (and
    /// byte-comparable) in every exec mode.
    fn inject_thread(&mut self, worker: u32, fault: ThreadFault, kind: &'static str) -> String {
        let armed = match self.engine.as_mut() {
            Some(e) => e.inject_thread_fault(worker as usize, fault),
            None => None,
        };
        match armed {
            Some(idx) => {
                let idx = idx as u32;
                let device = self.nth_active(idx);
                // A second fault on the same slot changes its failure mode
                // before the first was attributed: supersede the older arm.
                for p in &mut self.pending_threads {
                    if p.worker == idx && p.detected_at_us.is_none() {
                        p.superseded = true;
                    }
                }
                let bound_us = self.thread_bound_us();
                self.pending_threads.push(PendingThread {
                    worker: idx,
                    device,
                    kind,
                    injected_at_us: self.clock.now_us(),
                    bound_us,
                    detected_at_us: None,
                    superseded: false,
                });
                format!("pool thread esw-dev{device} armed with a real {kind}")
            }
            None => format!("single-thread engine: no pool thread to fault; {kind} is a no-op"),
        }
    }

    /// The detection-latency bound for a pool-thread fault injected *now*,
    /// on the dedicated tracker's virtual timeline: the supervised drain's
    /// full deadline (worst case before the pool reaps the thread), plus
    /// the lease periods the health policy needs to quarantine, plus one
    /// lease of slack. Computed from policy alone — never from what the
    /// drains actually did — so it is a legitimate test oracle.
    fn thread_bound_us(&self) -> u64 {
        let p = &self.cfg.health;
        self.cfg
            .drain
            .total_backoff_us()
            .saturating_add((p.quarantine_misses + 1).saturating_mul(p.lease_us + 1))
    }

    /// Supersede every unresolved pool-thread expectation (the pool is
    /// being torn down — crash or rescale — so an armed fault may never be
    /// consumed and a detection can no longer be attributed).
    fn supersede_pending_threads(&mut self) {
        for p in &mut self.pending_threads {
            if p.detected_at_us.is_none() {
                p.superseded = true;
            }
        }
    }

    /// Fold the engine's pool-recovery records (real thread faults its
    /// supervised drains caught) into the report, and resolve pending
    /// expectations through the dedicated thread-health tracker.
    ///
    /// The tracker is fed a *synthetic, fully deterministic* cascade: the
    /// faulted device registers at `injected_at + drain.total_backoff_us()`
    /// (the drain's worst-case reap instant, from policy, not from the
    /// wall clock) and then misses one lease per detection round until the
    /// policy quarantines it. Real time never enters, so the thread-health
    /// log is byte-identical across runs and machines; real detections can
    /// only be *earlier* than this model, never later.
    fn absorb_pool_recoveries(&mut self) {
        let recoveries = match self.engine.as_mut() {
            Some(e) => e.take_pool_recoveries(),
            None => return,
        };
        for rec in recoveries {
            self.report.pool_respawns += 1;
            if rec.kind == "drain-timeout" {
                self.report.pool_quarantines += 1;
            }
            // Only live expectations attract recoveries: a superseded arm
            // was overwritten in the worker's single armed-fault slot (or
            // its pool was torn down), so it never fires.
            let Some(p) = self.pending_threads.iter_mut().find(|p| {
                p.worker == rec.worker as u32 && p.detected_at_us.is_none() && !p.superseded
            }) else {
                // Spurious deadline hit (no armed fault): counters only —
                // the replacement replayed from the mirror, so nothing
                // deterministic moved.
                continue;
            };
            let policy = self.thread_health.policy();
            let lease_round = policy.lease_us + 1;
            let quarantine_misses = policy.quarantine_misses;
            let base = p.injected_at_us.saturating_add(rec.virtual_latency_us);
            self.thread_health.register(p.device, base);
            let mut detected = None;
            for r in 1..=quarantine_misses {
                let now = base.saturating_add(r.saturating_mul(lease_round));
                for ev in self.thread_health.end_of_round(now) {
                    if ev.device == p.device && ev.to == HealthState::Quarantined {
                        detected = Some(ev.at_us);
                    }
                }
            }
            self.thread_health.deregister(p.device);
            p.detected_at_us = detected;
            if let Some(d) = detected {
                obs::observe(
                    "health.thread_detection_latency_us",
                    d.saturating_sub(p.injected_at_us) as f64,
                );
            }
        }
    }

    /// Whether a heartbeat drop of `beats` is guaranteed to lapse a lease
    /// even at the fastest possible round cadence (every device hosting a
    /// single EST). Shorter drops are benign — the detector may or may not
    /// flag them, so no bound is asserted.
    fn drop_is_detectable(&self, beats: u32) -> bool {
        let min_round = self.device_step_us(1);
        (beats as u64).saturating_mul(min_round)
            >= self.cfg.health.lease_us.saturating_add(2 * min_round)
    }

    /// Whether stepping is impossible: a silently-dead device is still in
    /// the allocation, so the all-reduce would hang on it. The harness
    /// models the hang as blocked rounds — the clock advances, survivors
    /// ping, the detector works — until the supervisor evicts the corpse.
    fn blocked(&self) -> bool {
        self.active.iter().any(|d| self.silent_crashed.contains(d))
    }

    /// A device joins the allocation. Reprovisioning repairs silent fault
    /// state: a fresh process on a fresh (or restarted) device neither
    /// creeps nor drops beats.
    fn activate_device(&mut self, id: u32) {
        self.active.insert(id);
        self.silent_crashed.remove(&id);
        self.creeping.remove(&id);
        self.hb_drop.remove(&id);
        self.supervisor.register(id, self.clock.now_us());
    }

    /// A device leaves through a *planned* path (scale-in, preemption): the
    /// detector forgets it and any armed detection on it is superseded.
    fn deactivate_planned(&mut self, id: u32) {
        self.active.remove(&id);
        self.supervisor.deregister(id);
        self.supersede_pending(id);
        self.silent_crashed.remove(&id);
        self.creeping.remove(&id);
        self.hb_drop.remove(&id);
    }

    /// The `count` highest active device ids (the deterministic choice for
    /// releases/revocations).
    fn highest_active(&self, count: u32) -> Vec<u32> {
        self.active.iter().rev().take(count as usize).copied().collect()
    }

    // ---- heartbeats + detection rounds --------------------------------

    /// Emit this round's heartbeats: every live device in the allocation
    /// (with its step timing if it stepped), plus liveness pings from
    /// parked-sick devices (their path back is probation). Silently
    /// crashed devices never beat; muted devices consume their drop
    /// budget instead of beating.
    fn emit_beats(&mut self, step: u64, times: Option<&BTreeMap<u32, u64>>) {
        let now = self.clock.now_us();
        let devices: Vec<u32> =
            self.active.iter().chain(self.parked_sick.iter()).copied().collect();
        for d in devices {
            if self.silent_crashed.contains(&d) {
                continue;
            }
            if let Some(left) = self.hb_drop.get_mut(&d) {
                *left -= 1;
                if *left == 0 {
                    self.hb_drop.remove(&d);
                }
                obs::counter_add("health.heartbeats_dropped", 1);
                continue;
            }
            let step_time_us = times.and_then(|m| m.get(&d).copied()).filter(|&t| t > 0);
            self.bus.publish(Heartbeat { device: d, step, sent_at_us: now, step_time_us });
        }
    }

    /// One detection round: drain the bus into the supervisor, tick it,
    /// attribute new transitions to pending silent faults, and apply the
    /// allocation actions it ordered.
    fn health_round(&mut self) {
        for beat in self.bus.drain_sorted() {
            self.supervisor.observe(&beat);
        }
        let before = self.supervisor.events().len();
        let actions = self.supervisor.tick(self.clock.now_us());
        self.resolve_detections(before);
        self.apply_actions(actions);
    }

    /// Attribute transitions (Suspect or worse) appended since `from` to
    /// the pending silent faults on the same device.
    fn resolve_detections(&mut self, from: usize) {
        let new_events: Vec<HealthEvent> = self.supervisor.events()[from..].to_vec();
        for ev in new_events {
            if !matches!(ev.to, HealthState::Suspect | HealthState::Quarantined) {
                continue;
            }
            for p in &mut self.pending {
                if p.device == ev.device
                    && p.detected_at_us.is_none()
                    && ev.at_us >= p.injected_at_us
                {
                    p.detected_at_us = Some(ev.at_us);
                    let latency = ev.at_us - p.injected_at_us;
                    obs::observe("health.detection_latency_us", latency as f64);
                }
            }
        }
    }

    /// Apply the supervisor's allocation actions. Everything here goes
    /// through the same rescale/recover paths as announced faults, so it
    /// is bitwise-invisible by construction.
    fn apply_actions(&mut self, actions: Vec<SupervisorAction>) {
        for action in actions {
            match action {
                SupervisorAction::Evict { device, assume_crash } => {
                    if !self.active.contains(&device) {
                        continue; // already out (e.g. planned removal raced)
                    }
                    obs::counter_add("health.evictions", 1);
                    self.report.evictions += 1;
                    if self.active.len() == 1 && self.free_ids.is_empty() {
                        // Nothing to fail over to: restart the worker
                        // process in place on the last device. The restart
                        // reprovisions it (clears silent fault state) and
                        // recovers from the last-good checkpoint.
                        self.supervisor.deregister(device);
                        self.activate_device(device);
                        self.crash_and_recover("supervisor: restarted last device in place");
                        continue;
                    }
                    self.active.remove(&device);
                    self.parked_sick.insert(device);
                    // Claim a spare as a replacement when one is free.
                    if let Some(&spare) = self.free_ids.iter().next() {
                        self.free_ids.remove(&spare);
                        if let Some(n) = self.free.get_mut(&self.cfg.gpu) {
                            *n = n.saturating_sub(1);
                        }
                        self.activate_device(spare);
                    }
                    self.intra.apply_allocation(vec![(self.cfg.gpu, self.active.len() as u32)]);
                    if assume_crash {
                        // Lost lease ⇒ presumed dead ⇒ in-memory state on
                        // that device is gone: fall back to the last-good
                        // durable checkpoint on the survivors.
                        self.crash_and_recover("supervisor: evicted device on lost lease");
                    } else {
                        // Straggler ⇒ alive, nothing lost: plain rescale.
                        self.rescale_to_current();
                    }
                }
                SupervisorAction::Readmit { device } => {
                    if !self.parked_sick.contains(&device) || self.silent_crashed.contains(&device)
                    {
                        continue;
                    }
                    obs::counter_add("health.readmissions", 1);
                    self.report.readmissions += 1;
                    self.parked_sick.remove(&device);
                    // NOT activate_device: the device is on probation, its
                    // fault state (e.g. a creeping slowdown) persists — the
                    // detector must re-confirm or re-quarantine it.
                    self.active.insert(device);
                    self.intra.apply_allocation(vec![(self.cfg.gpu, self.active.len() as u32)]);
                    self.rescale_to_current();
                }
            }
        }
    }

    /// A blocked round: the job cannot step (a silent corpse is in the
    /// all-reduce), but virtual time still passes, survivors still ping,
    /// and the detector still runs — this is exactly the window the
    /// detection-latency bound measures.
    fn blocked_tick(&mut self) {
        let step = self.engine.as_ref().map(|e| e.global_step()).unwrap_or(0);
        self.clock.advance_us(self.step_time_us().max(1));
        self.emit_beats(step, None);
        self.health_round();
    }

    fn apply_event(&mut self, ev: FaultEvent) {
        let step = ev.step;
        let kind = ev.kind.name();
        let outcome = match ev.kind {
            FaultKind::WorkerCrash => self.crash_and_recover("crash"),
            FaultKind::Straggler { worker, factor_milli, steps } => {
                let dev = self.nth_active(worker);
                self.straggler = Some((dev, factor_milli.max(DILATION_ONE), steps));
                format!("device {dev} dilated {factor_milli}/1000 for {steps} steps")
            }
            FaultKind::Preemption { gpus } => {
                let before = self.current_gpus();
                let alloc = self.intra.apply_preemption(self.cfg.gpu, gpus);
                let after: u32 = alloc.iter().map(|&(_, n)| n).sum();
                // Revoked GPUs go to the reclaimer (serving side), not back
                // to the elastic free pool.
                for id in self.highest_active(before - after) {
                    self.deactivate_planned(id);
                }
                self.rescale_to_current();
                format!("revoked {gpus}: {before} → {after} GPUs")
            }
            FaultKind::ScaleOut { gpus } => {
                let before = self.current_gpus();
                let proposals = self.intra.proposals(&self.free, gpus as usize);
                let decisions = self.inter.decide(proposals, &mut self.free);
                match decisions.iter().find(|d| d.job == self.intra.job()) {
                    Some(d) => {
                        let mut alloc = self.intra.current().clone();
                        match alloc.iter_mut().find(|(t, _)| *t == d.gpu) {
                            Some(slot) => slot.1 += d.count,
                            None => alloc.push((d.gpu, d.count)),
                        }
                        let granted = d.count;
                        for _ in 0..granted {
                            if let Some(&spare) = self.free_ids.iter().next() {
                                self.free_ids.remove(&spare);
                                self.activate_device(spare);
                            }
                        }
                        self.intra.apply_allocation(alloc);
                        self.rescale_to_current();
                        format!("granted {granted}: {before} → {} GPUs", self.current_gpus())
                    }
                    None => "grant denied (no beneficial proposal or no free GPUs)".to_string(),
                }
            }
            FaultKind::ScaleIn { gpus } => {
                let before = self.current_gpus();
                let after = before.saturating_sub(gpus).max(1);
                if after == before {
                    "already at one GPU; nothing to release".to_string()
                } else {
                    *self.free.entry(self.cfg.gpu).or_insert(0) += before - after;
                    for id in self.highest_active(before - after) {
                        self.deactivate_planned(id);
                        self.free_ids.insert(id);
                    }
                    self.intra.apply_allocation(vec![(self.cfg.gpu, after)]);
                    self.rescale_to_current();
                    format!("released {}: {before} → {after} GPUs", before - after)
                }
            }
            FaultKind::CommFailure { failures } => {
                let engine = self.engine.as_mut().expect("live engine");
                engine.inject_comm_faults(comm::FaultScript::failures(failures));
                format!("armed {failures} transient allreduce failures")
            }
            FaultKind::TornCheckpoint { keep_frac_milli } => {
                // The checkpoint write is interrupted partway and the
                // process dies with it: the newest file on disk is torn.
                let engine = self.engine.as_mut().expect("live engine");
                self.store.save_torn(&engine.checkpoint(), keep_frac_milli).expect("store io");
                self.crash_and_recover("torn checkpoint write")
            }
            FaultKind::BitFlippedCheckpoint { bit_index } => {
                if let Some(&newest) = self.store.list_steps().expect("store io").last() {
                    self.store.inject_bitflip(newest, bit_index).expect("store io");
                }
                self.crash_and_recover("bit-flipped checkpoint")
            }
            FaultKind::SilentCrash { worker } => {
                let dev = self.nth_active(worker);
                if self.silent_crashed.contains(&dev) {
                    format!("device {dev} is already silently dead; no-op")
                } else {
                    // The crash changes the device's failure mode: earlier
                    // armed faults on it can no longer be attributed.
                    self.supersede_pending(dev);
                    self.silent_crashed.insert(dev);
                    self.creeping.remove(&dev);
                    self.hb_drop.remove(&dev);
                    self.arm_detection(dev, "silent_crash", true);
                    format!("device {dev} died silently — nobody was told")
                }
            }
            FaultKind::CreepingStraggler { worker, start_milli, ramp_milli } => {
                let dev = self.nth_active(worker);
                let start = start_milli.max(DILATION_ONE);
                if self.silent_crashed.contains(&dev) {
                    format!("device {dev} is silently dead; creep is moot")
                } else if let std::collections::btree_map::Entry::Vacant(slot) =
                    self.creeping.entry(dev)
                {
                    slot.insert((start, ramp_milli));
                    // A concurrent beat mute makes score-based attribution
                    // unbounded (no timings arrive) — track, don't assert.
                    let bounded = !self.hb_drop.contains_key(&dev);
                    self.arm_detection(dev, "creeping_straggler", bounded);
                    format!(
                        "device {dev} creeping from {start}/1000, +{ramp_milli}/step — silently"
                    )
                } else {
                    format!("device {dev} is already creeping; no-op")
                }
            }
            FaultKind::ThreadPanic { worker } => {
                self.inject_thread(worker, ThreadFault::Panic, "thread_panic")
            }
            FaultKind::ThreadStall { worker } => {
                self.inject_thread(worker, ThreadFault::Stall, "thread_stall")
            }
            FaultKind::ReplyDrop { worker } => {
                self.inject_thread(worker, ThreadFault::ReplyDrop, "reply_drop")
            }
            FaultKind::HeartbeatDrop { worker, beats } => {
                let dev = self.nth_active(worker);
                if self.silent_crashed.contains(&dev) {
                    format!("device {dev} is silently dead; nothing to mute")
                } else if self.hb_drop.contains_key(&dev) {
                    format!("device {dev} is already muted; no-op")
                } else if beats == 0 {
                    "zero-beat drop; no-op".to_string()
                } else {
                    // Muting a creeping device stalls its score — any armed
                    // creep detection on it loses its bound.
                    if self.creeping.contains_key(&dev) {
                        self.supersede_pending(dev);
                    }
                    self.hb_drop.insert(dev, beats);
                    let detectable = self.drop_is_detectable(beats);
                    self.arm_detection(dev, "heartbeat_drop", detectable);
                    format!(
                        "device {dev} mutes its next {beats} heartbeats ({})",
                        if detectable { "must be detected" } else { "benign-length drop" }
                    )
                }
            }
        };
        self.record(step, kind, outcome);
    }

    /// Drive the run to completion and return the report.
    pub fn run(mut self) -> RunReport {
        // Step-0 durable checkpoint: even a crash on the very first step
        // has something to recover from.
        self.store
            .save(&self.engine.as_mut().expect("live engine").checkpoint())
            .expect("store io");

        loop {
            let step = self.engine.as_ref().expect("live engine").global_step();
            if step >= self.cfg.total_steps {
                break;
            }
            // Fire every event due at this step. The index only advances,
            // so post-crash replays never re-fire an event.
            while self.next_event < self.schedule.events.len()
                && self.schedule.events[self.next_event].step <= step
            {
                let ev = self.schedule.events[self.next_event].clone();
                self.next_event += 1;
                self.apply_event(ev);
            }
            // A silent corpse in the allocation blocks the all-reduce: no
            // step happens, but time passes and the detector hunts.
            if self.blocked() {
                self.blocked_tick();
                continue;
            }
            // A fired event may have rewound the step counter (crash) —
            // re-read before stepping.
            let engine = self.engine.as_mut().expect("live engine");
            let comm_pending = engine.pending_comm_faults();
            match engine.try_step() {
                Ok(result) => {
                    // Real thread faults the step's supervised drains caught
                    // (and recovered, bitwise-invisibly): fold them into the
                    // dedicated thread-health timeline.
                    self.absorb_pool_recoveries();
                    // Armed comm faults below the retry budget were absorbed
                    // in-step; account their backoff in simulated time.
                    if comm_pending > 0 {
                        let policy = comm::RetryPolicy::default();
                        for retry in 1..=comm_pending.min(policy.max_attempts - 1) {
                            self.clock.advance_us(policy.backoff_us(retry));
                        }
                        obs::counter_add("faultsim.comm_faults_absorbed", 1);
                    }
                    // Deterministic per-device step timings: EST load
                    // through the perf model, dilated per-device by any
                    // straggler fault. The round lasts as long as the
                    // slowest device (synchronous training).
                    let devices: Vec<u32> = self.active.iter().copied().collect();
                    let loads = &result.per_worker_load;
                    let mut times: BTreeMap<u32, u64> = BTreeMap::new();
                    for (i, &d) in devices.iter().enumerate() {
                        let load = loads.get(i).copied().unwrap_or(0);
                        let mut t = if load == 0 { 0 } else { self.device_step_us(load) };
                        if let Some((sdev, factor, _)) = self.straggler {
                            if sdev == d {
                                t = t.saturating_mul(factor) / DILATION_ONE;
                            }
                        }
                        if let Some(&(factor, _)) = self.creeping.get(&d) {
                            t = t.saturating_mul(factor) / DILATION_ONE;
                        }
                        times.insert(d, t);
                    }
                    let round = times.values().copied().max().unwrap_or(0).max(1);
                    self.clock.advance_us(round);
                    if let Some((sdev, factor, left)) = self.straggler {
                        self.straggler = (left > 1).then_some((sdev, factor, left - 1));
                    }
                    let done = self.engine.as_ref().expect("live engine").global_step();
                    self.emit_beats(done, Some(&times));
                    // The creep creeps: active creepers degrade further
                    // with every completed step.
                    for (d, f) in self.creeping.iter_mut() {
                        if self.active.contains(d) {
                            f.0 = f.0.saturating_add(f.1);
                        }
                    }
                    if done.is_multiple_of(self.cfg.checkpoint_every) {
                        let ckpt = self.engine.as_mut().expect("live engine").checkpoint();
                        self.store.save(&ckpt).expect("store io");
                    }
                    self.health_round();
                }
                Err(e) => {
                    // Retries exhausted: the engine is poisoned (paper
                    // §2.1's worker-death case). Take the crash path.
                    let outcome = self.crash_and_recover("comm retries exhausted");
                    self.record(step, "comm_exhausted", format!("{e}; {outcome}"));
                    obs::counter_add("faultsim.comm_exhausted", 1);
                }
            }
        }

        // Recoveries from the final round's checkpoint drain, if any.
        self.absorb_pool_recoveries();
        let engine = self.engine.take().expect("live engine");
        self.report.final_gpus = self.current_gpus();
        self.report.sim_elapsed_us = self.clock.now_us();
        self.report.final_params = engine.flat_params();
        self.report.health_events = self.supervisor.events().to_vec();
        self.report.thread_health_events = self.thread_health.events().to_vec();
        self.report.thread_detections = self
            .pending_threads
            .iter()
            .map(|p| DetectionRecord {
                device: p.device,
                kind: p.kind.to_string(),
                injected_at_us: p.injected_at_us,
                bound_us: p.bound_us,
                detected_at_us: p.detected_at_us,
                latency_us: p.detected_at_us.map(|d| d - p.injected_at_us),
                within_bound: p.detected_at_us.is_some_and(|d| d - p.injected_at_us <= p.bound_us),
                superseded: p.superseded,
            })
            .collect();
        self.report.detections = self
            .pending
            .iter()
            .map(|p| DetectionRecord {
                device: p.device,
                kind: p.kind.to_string(),
                injected_at_us: p.injected_at_us,
                bound_us: p.bound_us,
                detected_at_us: p.detected_at_us,
                latency_us: p.detected_at_us.map(|d| d - p.injected_at_us),
                within_bound: p.detected_at_us.is_some_and(|d| d - p.injected_at_us <= p.bound_us),
                superseded: p.superseded,
            })
            .collect();
        obs::gauge_set("faultsim.sim_elapsed_us", self.report.sim_elapsed_us as f64);
        self.report
    }
}

/// The fault-free reference: same job, same initial placement, no store, no
/// faults. Its final parameters are the byte-identity target every chaos
/// run is compared against.
pub fn run_fault_free(cfg: &HarnessConfig) -> Vec<f32> {
    let mut engine = Engine::new_opts(
        cfg.job.clone(),
        Placement::homogeneous(cfg.job.n_ests, cfg.initial_gpus.min(cfg.job.n_ests), cfg.gpu),
        ExecOptions {
            mode: cfg.exec_mode,
            device_ids: (0..cfg.initial_gpus).collect(),
            drain: cfg.drain,
        },
    );
    engine.run(cfg.total_steps);
    engine.flat_params()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("easyscale-faultsim-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fault_free_schedule_matches_reference() {
        let dir = tmp("nofault");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let report = FaultHarness::new(cfg, FaultSchedule::fault_free()).run();
        assert_eq!(report.final_params, reference);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.replayed_steps, 0);
        assert!(report.health_events.is_empty(), "no faults, no transitions");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_replays_and_converges() {
        let dir = tmp("crash");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let schedule =
            FaultSchedule::from_events(vec![FaultEvent { step: 3, kind: FaultKind::WorkerCrash }]);
        let report = FaultHarness::new(cfg, schedule).run();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.replayed_steps, 1, "crash at step 3 rewinds to the step-2 checkpoint");
        assert_eq!(report.final_params, reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn straggler_dilates_time_but_not_bits() {
        let dir_a = tmp("straggler-a");
        let dir_b = tmp("straggler-b");
        let cfg_a = HarnessConfig::default_chaos(dir_a.clone());
        let cfg_b = HarnessConfig::default_chaos(dir_b.clone());
        let clean = FaultHarness::new(cfg_a, FaultSchedule::fault_free()).run();
        let slow = FaultHarness::new(
            cfg_b,
            FaultSchedule::from_events(vec![FaultEvent {
                step: 1,
                kind: FaultKind::Straggler { worker: 0, factor_milli: 3000, steps: 4 },
            }]),
        )
        .run();
        assert_eq!(clean.params_bits(), slow.params_bits());
        assert!(
            slow.sim_elapsed_us > clean.sim_elapsed_us,
            "dilation must cost simulated time: {} vs {}",
            slow.sim_elapsed_us,
            clean.sim_elapsed_us
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn scale_out_is_granted_when_gpus_are_free() {
        let dir = tmp("scaleout");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let schedule = FaultSchedule::from_events(vec![FaultEvent {
            step: 2,
            kind: FaultKind::ScaleOut { gpus: 2 },
        }]);
        let report = FaultHarness::new(cfg, schedule).run();
        assert!(report.final_gpus > 2, "2 free GPUs existed; the grant must land");
        assert_eq!(report.final_params, reference, "scale-out is bitwise invisible");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silent_crash_blocks_until_detected_then_recovers() {
        let dir = tmp("silent-crash");
        let cfg = HarnessConfig::default_detect(dir.clone());
        let reference = run_fault_free(&cfg);
        let schedule = FaultSchedule::from_events(vec![FaultEvent {
            step: 3,
            kind: FaultKind::SilentCrash { worker: 1 },
        }]);
        let report = FaultHarness::new(cfg, schedule).run();
        assert_eq!(report.final_params, reference, "recovery must stay byte-identical");
        assert_eq!(report.evictions, 1, "the corpse is evicted exactly once");
        assert_eq!(report.crashes, 1, "lost lease ⇒ checkpoint fallback");
        assert_eq!(report.detections.len(), 1);
        let d = &report.detections[0];
        assert!(d.within_bound, "detection must respect the latency bound: {d:?}");
        assert!(report.health_events.iter().any(|e| e.to == sched::HealthState::Quarantined));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

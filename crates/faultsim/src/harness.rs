//! The fault-injection harness: drives a real `easyscale::Engine` through a
//! [`FaultSchedule`](crate::FaultSchedule) and reports what happened.
//!
//! The invariant under test is the paper's headline claim pushed through
//! every failure mode this repo models: **for any fault schedule, the final
//! model parameters at D2 are byte-identical to the fault-free run.** Each
//! fault maps to the subsystem mechanism that absorbs it:
//!
//! | fault                | absorbed by                                      |
//! |----------------------|--------------------------------------------------|
//! | worker crash         | durable checkpoints + bitwise D1 restore         |
//! | comm failure         | `comm::retry` (bitwise-identical recomputation); |
//! |                      | exhaustion falls through to the crash path       |
//! | torn / bit-flipped   | `core::store` checksum + last-good fallback,     |
//! | checkpoint           | then deterministic replay                        |
//! | preemption           | `sched::apply_preemption` + `Engine::rescale`    |
//! | scale-out / scale-in | proposal → grant → `Engine::rescale`             |
//! | straggler            | nothing to absorb: slowdown dilates simulated    |
//! |                      | time only, never bits                            |
//!
//! Time is simulated ([`device::SimClock`]): the harness never reads a wall
//! clock, so a chaos run is a pure function of `(config, schedule)`.

use std::path::PathBuf;

use device::{GpuType, PerfModel, SimClock, DILATION_ONE};
use easyscale::{CheckpointStore, Engine, JobConfig, Placement};
use models::Workload;
use sched::{Companion, FreePool, InterJobScheduler, IntraJobScheduler};

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};

/// Harness configuration: the job under test plus its simulated cluster.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// The training job (workload, seed, nEST, determinism level).
    pub job: JobConfig,
    /// Global steps the run must complete.
    pub total_steps: u64,
    /// Durable-checkpoint cadence (every N completed global steps).
    pub checkpoint_every: u64,
    /// GPU type of the (homogeneous) simulated cluster.
    pub gpu: GpuType,
    /// GPUs the job starts on.
    pub initial_gpus: u32,
    /// Total GPUs of that type in the cluster (the rest start free).
    pub cluster_gpus: u32,
    /// Directory for durable checkpoints (unique per run).
    pub store_dir: PathBuf,
}

impl HarnessConfig {
    /// The chaos-matrix default: a cheap NeuMF job at full determinism
    /// (D1+D2) on a 4×V100 cluster, starting on 2 GPUs.
    pub fn default_chaos(store_dir: PathBuf) -> Self {
        let job = JobConfig::new(Workload::NeuMF, 4242, 4)
            .with_dataset_len(128)
            .with_determinism(easyscale::Determinism::d1_d2());
        HarnessConfig {
            job,
            total_steps: 10,
            checkpoint_every: 2,
            gpu: GpuType::V100,
            initial_gpus: 2,
            cluster_gpus: 4,
            store_dir,
        }
    }
}

/// One injected fault and what the harness observed happen.
#[derive(Debug, Clone)]
pub struct InjectedEvent {
    /// Global step the fault fired at.
    pub step: u64,
    /// Stable fault-kind name.
    pub kind: &'static str,
    /// Human-readable outcome ("recovered from step 4", "grant denied", …).
    pub outcome: String,
}

/// Everything a chaos run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Schedule seed (0 for hand-authored schedules).
    pub seed: u64,
    /// Global steps completed.
    pub total_steps: u64,
    /// Every injected fault, in firing order, with its outcome.
    pub injected: Vec<InjectedEvent>,
    /// Process deaths taken (crashes, comm exhaustion, checkpoint faults).
    pub crashes: u32,
    /// Successful recoveries (always equals `crashes` when the run ends).
    pub recoveries: u32,
    /// Steps re-executed because a crash rewound to an older checkpoint.
    pub replayed_steps: u64,
    /// Corrupt/torn checkpoint files skipped during recovery.
    pub torn_files_skipped: u32,
    /// Simulated run duration in microseconds.
    pub sim_elapsed_us: u64,
    /// GPUs held when the run finished.
    pub final_gpus: u32,
    /// Final flat model parameters (the invariant's subject).
    pub final_params: Vec<f32>,
}

impl RunReport {
    /// The final parameters as raw bit patterns — byte-identity is compared
    /// on these, so `-0.0 == 0.0` and NaN payloads cannot hide a diff.
    pub fn params_bits(&self) -> Vec<u32> {
        self.final_params.iter().map(|p| p.to_bits()).collect()
    }
}

/// The harness itself. Build with [`FaultHarness::new`], run with
/// [`FaultHarness::run`].
pub struct FaultHarness {
    cfg: HarnessConfig,
    schedule: FaultSchedule,
    /// `None` only transiently, while the process is "dead" or rescaling.
    engine: Option<Engine>,
    intra: IntraJobScheduler,
    inter: InterJobScheduler,
    free: FreePool,
    store: CheckpointStore,
    clock: SimClock,
    perf: PerfModel,
    /// Next unfired schedule entry. Monotone: a crash rewinds the engine's
    /// step counter but never this index, so each event fires exactly once.
    next_event: usize,
    /// Active slowdown: (dilation factor in milli-units, steps remaining).
    straggler: Option<(u64, u32)>,
    report: RunReport,
}

impl FaultHarness {
    /// Build a harness for `cfg` and `schedule`. The checkpoint store keeps
    /// enough history that a torn newest file always has a good predecessor.
    pub fn new(cfg: HarnessConfig, schedule: FaultSchedule) -> Self {
        assert!(cfg.initial_gpus >= 1 && cfg.initial_gpus <= cfg.cluster_gpus);
        assert!(cfg.checkpoint_every >= 1);
        let engine =
            Engine::new(cfg.job.clone(), Self::placement(&cfg.job, cfg.gpu, cfg.initial_gpus));
        // The companion's maxP is the job's nEST: placements must cover
        // exactly the engine's virtual ranks.
        let companion = Companion::for_workload(&cfg.job.workload.spec(), cfg.job.n_ests, false);
        let mut intra = IntraJobScheduler::new(1, companion, false);
        intra.apply_allocation(vec![(cfg.gpu, cfg.initial_gpus)]);
        let free: FreePool = [(cfg.gpu, cfg.cluster_gpus - cfg.initial_gpus)].into_iter().collect();
        let store = CheckpointStore::open(&cfg.store_dir, "chaos-job")
            .expect("store dir")
            .with_keep_last(16);
        let report = RunReport {
            seed: schedule.seed,
            total_steps: cfg.total_steps,
            injected: Vec::new(),
            crashes: 0,
            recoveries: 0,
            replayed_steps: 0,
            torn_files_skipped: 0,
            sim_elapsed_us: 0,
            final_gpus: cfg.initial_gpus,
            final_params: Vec::new(),
        };
        FaultHarness {
            cfg,
            schedule,
            engine: Some(engine),
            intra,
            inter: InterJobScheduler,
            free,
            store,
            clock: SimClock::new(),
            perf: PerfModel::default(),
            next_event: 0,
            straggler: None,
            report,
        }
    }

    /// A placement for `gpus` GPUs of one type. GPUs beyond nEST host no
    /// EST and are dropped by `Placement::homogeneous`, so the cap keeps
    /// worker count meaningful.
    fn placement(job: &JobConfig, gpu: GpuType, gpus: u32) -> Placement {
        Placement::homogeneous(job.n_ests, gpus.min(job.n_ests).max(1), gpu)
    }

    fn current_gpus(&self) -> u32 {
        self.intra.current().iter().map(|&(_, n)| n).sum()
    }

    /// Simulated duration of one global step on the current allocation: the
    /// busiest GPU time-slices `ceil(nEST / gpus)` ESTs, dilated if a
    /// straggler is active (D2 hardware-agnostic kernels pay the catalog's
    /// overhead factor).
    fn step_time_us(&self) -> u64 {
        let spec = self.cfg.job.workload.spec();
        let overhead =
            if self.cfg.job.determinism.hardware_agnostic { spec.d2_overhead } else { 1.0 };
        let mb = self.perf.minibatch_time(spec.base_v100_secs, self.cfg.gpu, overhead);
        let gpus = self.current_gpus().max(1);
        let ests_on_busiest = self.cfg.job.n_ests.div_ceil(gpus);
        (self.perf.easyscale_global_step(mb, ests_on_busiest) * 1e6) as u64
    }

    fn record(&mut self, step: u64, kind: &'static str, outcome: String) {
        obs::counter_add("faultsim.injected_total", 1);
        obs::counter_add(&format!("faultsim.injected.{kind}"), 1);
        self.report.injected.push(InjectedEvent { step, kind, outcome });
    }

    /// Kill the process and recover from the newest *valid* durable
    /// checkpoint (walking past torn/corrupt files), on the current
    /// allocation. Replayed steps are counted; bitwise D1 restore makes the
    /// replay converge to exactly the lost bits.
    fn crash_and_recover(&mut self, why: &str) -> String {
        let step_at_death = self.engine.as_ref().map(|e| e.global_step()).unwrap_or(0);
        self.engine = None; // the process is dead; all in-memory state is gone
        self.report.crashes += 1;
        obs::counter_add("faultsim.crashes", 1);

        let gpus = self.current_gpus();
        let placement = Self::placement(&self.cfg.job, self.cfg.gpu, gpus);
        let (engine, resumed_from, skipped) =
            match self.store.load_latest_valid().expect("store io") {
                Some((ckpt, skipped)) => {
                    let step = ckpt.global_step;
                    (Engine::from_checkpoint(self.cfg.job.clone(), placement, &ckpt), step, skipped)
                }
                // No durable state at all: cold restart, full replay.
                None => (Engine::new(self.cfg.job.clone(), placement), 0, 0),
            };
        self.report.torn_files_skipped += skipped;
        self.report.replayed_steps += step_at_death.saturating_sub(resumed_from);
        self.report.recoveries += 1;
        obs::counter_add("faultsim.recoveries", 1);
        obs::counter_add("faultsim.replayed_steps", step_at_death.saturating_sub(resumed_from));

        // Restart latency: data-worker respawn dominates (§5.1.2).
        let spec = self.cfg.job.workload.spec();
        let restart_secs =
            self.perf.first_minibatch_latency(spec.base_v100_secs, self.cfg.job.data_workers);
        self.clock.advance_us((restart_secs * 1e6) as u64);

        self.engine = Some(engine);
        format!("{why}: recovered from checkpoint step {resumed_from} (skipped {skipped} corrupt)")
    }

    /// Rescale the live engine onto the scheduler's current allocation
    /// (checkpoint + restore under the hood — Figure 5's path).
    fn rescale_to_current(&mut self) {
        let gpus = self.current_gpus();
        let placement = Self::placement(&self.cfg.job, self.cfg.gpu, gpus);
        let engine = self.engine.take().expect("live engine");
        self.engine = Some(engine.rescale(placement));
        obs::counter_add("faultsim.rescales", 1);
        // Reconfiguration also pays the restart latency.
        let spec = self.cfg.job.workload.spec();
        let restart_secs =
            self.perf.first_minibatch_latency(spec.base_v100_secs, self.cfg.job.data_workers);
        self.clock.advance_us((restart_secs * 1e6) as u64);
    }

    fn apply_event(&mut self, ev: FaultEvent) {
        let step = ev.step;
        let kind = ev.kind.name();
        let outcome = match ev.kind {
            FaultKind::WorkerCrash => self.crash_and_recover("crash"),
            FaultKind::Straggler { worker, factor_milli, steps } => {
                self.straggler = Some((factor_milli.max(DILATION_ONE), steps));
                format!("worker {worker} dilated {factor_milli}/1000 for {steps} steps")
            }
            FaultKind::Preemption { gpus } => {
                let before = self.current_gpus();
                let alloc = self.intra.apply_preemption(self.cfg.gpu, gpus);
                let after: u32 = alloc.iter().map(|&(_, n)| n).sum();
                // Revoked GPUs go to the reclaimer (serving side), not back
                // to the elastic free pool.
                self.rescale_to_current();
                format!("revoked {gpus}: {before} → {after} GPUs")
            }
            FaultKind::ScaleOut { gpus } => {
                let before = self.current_gpus();
                let proposals = self.intra.proposals(&self.free, gpus as usize);
                let decisions = self.inter.decide(proposals, &mut self.free);
                match decisions.iter().find(|d| d.job == self.intra.job()) {
                    Some(d) => {
                        let mut alloc = self.intra.current().clone();
                        match alloc.iter_mut().find(|(t, _)| *t == d.gpu) {
                            Some(slot) => slot.1 += d.count,
                            None => alloc.push((d.gpu, d.count)),
                        }
                        let granted = d.count;
                        self.intra.apply_allocation(alloc);
                        self.rescale_to_current();
                        format!("granted {granted}: {before} → {} GPUs", self.current_gpus())
                    }
                    None => "grant denied (no beneficial proposal or no free GPUs)".to_string(),
                }
            }
            FaultKind::ScaleIn { gpus } => {
                let before = self.current_gpus();
                let after = before.saturating_sub(gpus).max(1);
                if after == before {
                    "already at one GPU; nothing to release".to_string()
                } else {
                    *self.free.entry(self.cfg.gpu).or_insert(0) += before - after;
                    self.intra.apply_allocation(vec![(self.cfg.gpu, after)]);
                    self.rescale_to_current();
                    format!("released {}: {before} → {after} GPUs", before - after)
                }
            }
            FaultKind::CommFailure { failures } => {
                let engine = self.engine.as_mut().expect("live engine");
                engine.inject_comm_faults(comm::FaultScript::failures(failures));
                format!("armed {failures} transient allreduce failures")
            }
            FaultKind::TornCheckpoint { keep_frac_milli } => {
                // The checkpoint write is interrupted partway and the
                // process dies with it: the newest file on disk is torn.
                let engine = self.engine.as_ref().expect("live engine");
                self.store.save_torn(&engine.checkpoint(), keep_frac_milli).expect("store io");
                self.crash_and_recover("torn checkpoint write")
            }
            FaultKind::BitFlippedCheckpoint { bit_index } => {
                if let Some(&newest) = self.store.list_steps().expect("store io").last() {
                    self.store.inject_bitflip(newest, bit_index).expect("store io");
                }
                self.crash_and_recover("bit-flipped checkpoint")
            }
        };
        self.record(step, kind, outcome);
    }

    /// Drive the run to completion and return the report.
    pub fn run(mut self) -> RunReport {
        // Step-0 durable checkpoint: even a crash on the very first step
        // has something to recover from.
        self.store
            .save(&self.engine.as_ref().expect("live engine").checkpoint())
            .expect("store io");

        loop {
            let step = self.engine.as_ref().expect("live engine").global_step();
            if step >= self.cfg.total_steps {
                break;
            }
            // Fire every event due at this step. The index only advances,
            // so post-crash replays never re-fire an event.
            while self.next_event < self.schedule.events.len()
                && self.schedule.events[self.next_event].step <= step
            {
                let ev = self.schedule.events[self.next_event].clone();
                self.next_event += 1;
                self.apply_event(ev);
            }
            // A fired event may have rewound the step counter (crash) —
            // re-read before stepping.
            let engine = self.engine.as_mut().expect("live engine");
            let comm_pending = engine.pending_comm_faults();
            match engine.try_step() {
                Ok(_) => {
                    // Armed comm faults below the retry budget were absorbed
                    // in-step; account their backoff in simulated time.
                    if comm_pending > 0 {
                        let policy = comm::RetryPolicy::default();
                        for retry in 1..=comm_pending.min(policy.max_attempts - 1) {
                            self.clock.advance_us(policy.backoff_us(retry));
                        }
                        obs::counter_add("faultsim.comm_faults_absorbed", 1);
                    }
                    let base = self.step_time_us();
                    match self.straggler {
                        Some((factor, left)) => {
                            self.clock.advance_dilated(base, factor);
                            self.straggler = (left > 1).then_some((factor, left - 1));
                        }
                        None => {
                            self.clock.advance_us(base);
                        }
                    }
                    let done = self.engine.as_ref().expect("live engine").global_step();
                    if done.is_multiple_of(self.cfg.checkpoint_every) {
                        let ckpt = self.engine.as_ref().expect("live engine").checkpoint();
                        self.store.save(&ckpt).expect("store io");
                    }
                }
                Err(e) => {
                    // Retries exhausted: the engine is poisoned (paper
                    // §2.1's worker-death case). Take the crash path.
                    let outcome = self.crash_and_recover("comm retries exhausted");
                    self.record(step, "comm_exhausted", format!("{e}; {outcome}"));
                    obs::counter_add("faultsim.comm_exhausted", 1);
                }
            }
        }

        let engine = self.engine.take().expect("live engine");
        self.report.final_gpus = self.current_gpus();
        self.report.sim_elapsed_us = self.clock.now_us();
        self.report.final_params = engine.flat_params();
        obs::gauge_set("faultsim.sim_elapsed_us", self.report.sim_elapsed_us as f64);
        self.report
    }
}

/// The fault-free reference: same job, same initial placement, no store, no
/// faults. Its final parameters are the byte-identity target every chaos
/// run is compared against.
pub fn run_fault_free(cfg: &HarnessConfig) -> Vec<f32> {
    let mut engine = Engine::new(
        cfg.job.clone(),
        Placement::homogeneous(cfg.job.n_ests, cfg.initial_gpus.min(cfg.job.n_ests), cfg.gpu),
    );
    engine.run(cfg.total_steps);
    engine.flat_params()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("easyscale-faultsim-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fault_free_schedule_matches_reference() {
        let dir = tmp("nofault");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let report = FaultHarness::new(cfg, FaultSchedule::fault_free()).run();
        assert_eq!(report.final_params, reference);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.replayed_steps, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_replays_and_converges() {
        let dir = tmp("crash");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let schedule =
            FaultSchedule::from_events(vec![FaultEvent { step: 3, kind: FaultKind::WorkerCrash }]);
        let report = FaultHarness::new(cfg, schedule).run();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.replayed_steps, 1, "crash at step 3 rewinds to the step-2 checkpoint");
        assert_eq!(report.final_params, reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn straggler_dilates_time_but_not_bits() {
        let dir_a = tmp("straggler-a");
        let dir_b = tmp("straggler-b");
        let cfg_a = HarnessConfig::default_chaos(dir_a.clone());
        let cfg_b = HarnessConfig::default_chaos(dir_b.clone());
        let clean = FaultHarness::new(cfg_a, FaultSchedule::fault_free()).run();
        let slow = FaultHarness::new(
            cfg_b,
            FaultSchedule::from_events(vec![FaultEvent {
                step: 1,
                kind: FaultKind::Straggler { worker: 0, factor_milli: 3000, steps: 4 },
            }]),
        )
        .run();
        assert_eq!(clean.params_bits(), slow.params_bits());
        assert!(
            slow.sim_elapsed_us > clean.sim_elapsed_us,
            "dilation must cost simulated time: {} vs {}",
            slow.sim_elapsed_us,
            clean.sim_elapsed_us
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn scale_out_is_granted_when_gpus_are_free() {
        let dir = tmp("scaleout");
        let cfg = HarnessConfig::default_chaos(dir.clone());
        let reference = run_fault_free(&cfg);
        let schedule = FaultSchedule::from_events(vec![FaultEvent {
            step: 2,
            kind: FaultKind::ScaleOut { gpus: 2 },
        }]);
        let report = FaultHarness::new(cfg, schedule).run();
        assert!(report.final_gpus > 2, "2 free GPUs existed; the grant must land");
        assert_eq!(report.final_params, reference, "scale-out is bitwise invisible");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The chaos matrix: every fault schedule converges to the fault-free bits.
//!
//! Each case drives a real engine (NeuMF, nEST=4, D1+D2) through a fault
//! schedule — seeded or hand-authored — and asserts the repo's strongest
//! claim: the final model parameters are **byte-identical** to the
//! fault-free run. The hand-authored schedules guarantee every
//! [`FaultKind`] is covered even if the seeded draws happen to miss one;
//! the seeded schedules cover interactions between faults.

use std::path::PathBuf;

use faultsim::{
    run_fault_free, FaultEvent, FaultHarness, FaultKind, FaultSchedule, HarnessConfig, RunReport,
};

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("easyscale-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run one schedule and assert byte-identity against the fault-free
/// reference. Returns the report for additional per-case assertions.
fn assert_converges(tag: &str, schedule: FaultSchedule) -> RunReport {
    let dir = store_dir(tag);
    let cfg = HarnessConfig::default_chaos(dir.clone());
    let reference: Vec<u32> = run_fault_free(&cfg).iter().map(|p| p.to_bits()).collect();
    let report = FaultHarness::new(cfg, schedule.clone()).run();
    assert_eq!(
        report.params_bits(),
        reference,
        "schedule (seed {}, kinds {:?}) must converge to the fault-free bits",
        schedule.seed,
        schedule.kinds()
    );
    let _ = std::fs::remove_dir_all(&dir);
    report
}

// ---- hand-authored schedules: guaranteed coverage of every fault kind ----

#[test]
fn chaos_crash_and_checkpoint_damage() {
    // Crash, then a torn checkpoint write, then at-rest bit rot — all three
    // recovery paths through the durable store in one run.
    let report = assert_converges(
        "ckpt-damage",
        FaultSchedule::from_events(vec![
            FaultEvent { step: 2, kind: FaultKind::WorkerCrash },
            FaultEvent { step: 5, kind: FaultKind::TornCheckpoint { keep_frac_milli: 400 } },
            // Bit 100 lands in the envelope header (`version`/`job_name`
            // region), where any flip is detectably corrupt. A flip deep in
            // a float's low-significance digits can parse back to the same
            // value — genuinely harmless, but useless for this assertion.
            FaultEvent { step: 8, kind: FaultKind::BitFlippedCheckpoint { bit_index: 100 } },
        ]),
    );
    assert_eq!(report.crashes, 3);
    assert_eq!(report.recoveries, 3);
    assert!(
        report.torn_files_skipped >= 2,
        "torn + bit-flipped newest files must both be skipped, got {}",
        report.torn_files_skipped
    );
}

#[test]
fn chaos_elasticity_round_trip() {
    // Scale out onto the free GPUs, get preempted below the start size,
    // scale back in to a single survivor.
    let report = assert_converges(
        "elastic",
        FaultSchedule::from_events(vec![
            FaultEvent { step: 2, kind: FaultKind::ScaleOut { gpus: 2 } },
            FaultEvent { step: 5, kind: FaultKind::Preemption { gpus: 3 } },
            FaultEvent { step: 8, kind: FaultKind::ScaleIn { gpus: 2 } },
        ]),
    );
    assert_eq!(report.final_gpus, 1, "preempted to 1, scale-in floors at 1");
    assert_eq!(report.crashes, 0, "elastic events are planned, not crashes");
}

#[test]
fn chaos_comm_faults_transient_and_fatal() {
    // Two transient failures (inside the 4-attempt budget: absorbed by
    // retry, bitwise invisible) and one fatal burst (5 ≥ budget: the step
    // fails and the crash path runs), with a straggler dilating the middle.
    let report = assert_converges(
        "comm",
        FaultSchedule::from_events(vec![
            FaultEvent { step: 2, kind: FaultKind::CommFailure { failures: 2 } },
            FaultEvent {
                step: 4,
                kind: FaultKind::Straggler { worker: 1, factor_milli: 2500, steps: 2 },
            },
            FaultEvent { step: 7, kind: FaultKind::CommFailure { failures: 5 } },
        ]),
    );
    assert_eq!(report.crashes, 1, "only the exhausted burst kills the worker");
    assert_eq!(report.recoveries, 1);
    assert!(
        report.injected.iter().any(|e| e.kind == "comm_exhausted"),
        "the fatal burst must be recorded: {:?}",
        report.injected
    );
}

// ---- seeded schedules: fault interactions under random composition ----

#[test]
fn chaos_seeded_matrix() {
    // Six seeded schedules, 6 events each over 10 steps. Together with the
    // three hand-authored cases above this is a 9-schedule matrix; the
    // hand-authored ones already guarantee per-kind coverage, so the seeds
    // are free to land anywhere.
    for seed in [11, 22, 33, 44, 55, 66] {
        let schedule = FaultSchedule::generate(seed, 10, 6);
        let report = assert_converges(&format!("seed{seed}"), schedule.clone());
        assert_eq!(
            report.injected.len(),
            schedule.events.len()
                + report.injected.iter().filter(|e| e.kind == "comm_exhausted").count(),
            "every scheduled event fires exactly once (plus derived \
             comm-exhaustion records): {:?}",
            report.injected
        );
    }
}

#[test]
fn chaos_same_seed_reproduces_exactly() {
    let a = assert_converges("repro-a", FaultSchedule::generate(99, 10, 5));
    let b = assert_converges("repro-b", FaultSchedule::generate(99, 10, 5));
    assert_eq!(a.params_bits(), b.params_bits());
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.replayed_steps, b.replayed_steps);
    assert_eq!(a.sim_elapsed_us, b.sim_elapsed_us, "simulated time is deterministic too");
}

#[test]
fn chaos_schedule_json_roundtrip_drives_identical_run() {
    // A schedule replayed from its JSON artifact behaves exactly like the
    // original — the property CI relies on to make failures replayable.
    let original = FaultSchedule::generate(123, 10, 6);
    let replayed = FaultSchedule::from_json(&original.to_json()).expect("roundtrip");
    assert_eq!(original, replayed);
    let a = assert_converges("json-a", original);
    let b = assert_converges("json-b", replayed);
    assert_eq!(a.params_bits(), b.params_bits());
    assert_eq!(a.sim_elapsed_us, b.sim_elapsed_us);
}

#[test]
fn chaos_events_are_observable() {
    // Injected and recovered events land in the obs registry. The registry
    // is process-global and tests run in parallel, so assert growth (>=)
    // rather than absolute counts.
    let sink = obs::sink::MemorySink::shared();
    obs::enable(Box::new(sink));
    let before_injected = obs::counter_value("faultsim.injected_total").unwrap_or(0);
    let before_recovered = obs::counter_value("faultsim.recoveries").unwrap_or(0);

    let report = assert_converges(
        "observable",
        FaultSchedule::from_events(vec![
            FaultEvent { step: 2, kind: FaultKind::WorkerCrash },
            FaultEvent { step: 5, kind: FaultKind::TornCheckpoint { keep_frac_milli: 300 } },
        ]),
    );
    assert_eq!(report.crashes, 2);

    let injected = obs::counter_value("faultsim.injected_total").unwrap_or(0);
    let recovered = obs::counter_value("faultsim.recoveries").unwrap_or(0);
    assert!(injected >= before_injected + 2, "both events recorded: {injected}");
    assert!(recovered >= before_recovered + 2, "both recoveries recorded: {recovered}");
    assert!(
        obs::counter_value("faultsim.injected.crash").unwrap_or(0) >= 1,
        "per-kind counters exist"
    );
}

#[test]
fn chaos_replay_never_refires_events() {
    // A crash at step 3 rewinds to the step-2 checkpoint; the scale-out
    // that fired at the same step-3 boundary must NOT fire again when the
    // replay reaches step 3 — otherwise the event count and the allocation
    // would both drift.
    let report = assert_converges(
        "one-shot",
        FaultSchedule::from_events(vec![
            FaultEvent { step: 3, kind: FaultKind::ScaleOut { gpus: 1 } },
            FaultEvent { step: 3, kind: FaultKind::WorkerCrash },
        ]),
    );
    let scale_outs = report.injected.iter().filter(|e| e.kind == "scale_out").count();
    assert_eq!(scale_outs, 1, "one-shot semantics: {:?}", report.injected);
    assert!(report.replayed_steps >= 1);
}

//! The tentpole invariant, end to end: an N-thread run is **byte-identical**
//! to the 1-thread run — params, health log, and simulated time — for every
//! fault schedule in the chaos matrix and for randomized worker counts,
//! fault schedules, and rescale points.
//!
//! Why this is the right correctness statement: the persistent worker pool
//! (`core::pool`) runs local steps and merge-side reductions concurrently,
//! so OS scheduling is free to interleave them any way it likes. Every
//! channel the results cross back on is drained in canonical order
//! (docs/PARALLELISM.md), so the *only* observable difference between
//! `ExecMode::Pool` and `ExecMode::SingleThread` should be wall-clock —
//! which nothing here measures. If any bit of thread-completion order ever
//! leaked into the math, these comparisons would catch it.

use std::path::PathBuf;

use device::GpuType;
use easyscale::{Determinism, ExecMode, JobConfig};
use faultsim::{
    run_fault_free, FaultEvent, FaultHarness, FaultKind, FaultSchedule, HarnessConfig, RunReport,
};
use models::Workload;
use proptest::proptest;
use sched::HealthPolicy;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("easyscale-nthread-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `schedule` twice — once on the persistent N-thread pool, once
/// single-threaded — and assert the runs are byte-identical in every
/// deterministic output: final params, the supervisor's health-event log,
/// and simulated elapsed time.
fn assert_pool_eq_single(
    tag: &str,
    make_cfg: impl Fn(PathBuf) -> HarnessConfig,
    schedule: FaultSchedule,
) {
    let dir_pool = store_dir(&format!("{tag}-pool"));
    let dir_single = store_dir(&format!("{tag}-single"));
    let mut cfg_pool = make_cfg(dir_pool.clone());
    cfg_pool.exec_mode = ExecMode::Pool;
    let mut cfg_single = make_cfg(dir_single.clone());
    cfg_single.exec_mode = ExecMode::SingleThread;

    let pool = FaultHarness::new(cfg_pool, schedule.clone()).run();
    let single = FaultHarness::new(cfg_single, schedule.clone()).run();
    assert_identical(tag, &schedule, &pool, &single);

    let _ = std::fs::remove_dir_all(&dir_pool);
    let _ = std::fs::remove_dir_all(&dir_single);
}

fn assert_identical(tag: &str, schedule: &FaultSchedule, pool: &RunReport, single: &RunReport) {
    assert_eq!(
        pool.params_bits(),
        single.params_bits(),
        "[{tag}] N-thread params must be byte-identical to 1-thread \
         (seed {}, kinds {:?})",
        schedule.seed,
        schedule.kinds()
    );
    // The health log is the detection record; Debug shows every field of
    // every event, so string equality is byte-identity of the log.
    assert_eq!(
        format!("{:?}", pool.health_events),
        format!("{:?}", single.health_events),
        "[{tag}] health logs must match"
    );
    assert_eq!(
        pool.sim_elapsed_us, single.sim_elapsed_us,
        "[{tag}] simulated time must match (it derives from EST loads, not threads)"
    );
    assert_eq!(pool.crashes, single.crashes, "[{tag}] crash counts must match");
    assert_eq!(pool.replayed_steps, single.replayed_steps, "[{tag}] replay counts must match");
}

// ---- the chaos matrix, swept across thread counts ----------------------

#[test]
fn nthread_eq_single_on_hand_authored_schedules() {
    let matrix: [(&str, Vec<FaultEvent>); 3] = [
        (
            "ckpt-damage",
            vec![
                FaultEvent { step: 2, kind: FaultKind::WorkerCrash },
                FaultEvent { step: 5, kind: FaultKind::TornCheckpoint { keep_frac_milli: 400 } },
                FaultEvent { step: 8, kind: FaultKind::BitFlippedCheckpoint { bit_index: 100 } },
            ],
        ),
        (
            "elastic",
            vec![
                FaultEvent { step: 2, kind: FaultKind::ScaleOut { gpus: 2 } },
                FaultEvent { step: 5, kind: FaultKind::Preemption { gpus: 3 } },
                FaultEvent { step: 8, kind: FaultKind::ScaleIn { gpus: 2 } },
            ],
        ),
        (
            "comm",
            vec![
                FaultEvent { step: 2, kind: FaultKind::CommFailure { failures: 2 } },
                FaultEvent {
                    step: 4,
                    kind: FaultKind::Straggler { worker: 1, factor_milli: 2500, steps: 2 },
                },
                FaultEvent { step: 7, kind: FaultKind::CommFailure { failures: 5 } },
            ],
        ),
    ];
    for (tag, events) in matrix {
        assert_pool_eq_single(
            tag,
            HarnessConfig::default_chaos,
            FaultSchedule::from_events(events),
        );
    }
}

#[test]
fn nthread_eq_single_on_seeded_schedules() {
    for seed in [11, 22, 33, 44, 55, 66] {
        assert_pool_eq_single(
            &format!("seed{seed}"),
            HarnessConfig::default_chaos,
            FaultSchedule::generate(seed, 10, 6),
        );
    }
}

#[test]
fn nthread_pool_also_converges_to_fault_free_reference() {
    // Belt and braces: the pool run doesn't just match the single-thread
    // run — both match the fault-free reference (itself run on the pool).
    let dir = store_dir("pool-vs-reference");
    let cfg = HarnessConfig::default_chaos(dir.clone());
    assert_eq!(cfg.exec_mode, ExecMode::Pool, "the pool is the production default");
    let reference: Vec<u32> = run_fault_free(&cfg).iter().map(|p| p.to_bits()).collect();
    let report = FaultHarness::new(cfg, FaultSchedule::generate(77, 10, 5)).run();
    assert_eq!(report.params_bits(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- randomized worker counts, fault schedules, rescale points ---------

/// A small 8-EST job on an 8-GPU cluster: every worker count from 1 to 8
/// is a legal placement, and a ±1 rescale is always schedulable.
fn wide_cfg(gpus: u32) -> impl Fn(PathBuf) -> HarnessConfig {
    move |store_dir| {
        let job = JobConfig::new(Workload::NeuMF, 4242, 8)
            .with_dataset_len(64)
            .with_determinism(Determinism::d1_d2());
        let lease_us = 2 * HarnessConfig::worst_step_us(&job, GpuType::V100);
        let mut cfg = HarnessConfig::default_chaos(store_dir);
        cfg.job = job;
        cfg.total_steps = 5;
        cfg.initial_gpus = gpus;
        cfg.cluster_gpus = 8;
        cfg.health = HealthPolicy::with_lease(lease_us);
        cfg.start_order = (0..gpus).collect();
        cfg
    }
}

proptest! {
    #[test]
    fn nthread_eq_single_randomized(
        gpus in 1u32..=8,
        fault_seed in 0u64..10_000,
        n_faults in 0usize..=3,
        rescale_step in 1u64..=4,
        scale_out in proptest::strategy::any::<bool>(),
    ) {
        // A seeded fault burst plus one explicit rescale point: the drawn
        // worker count changes at `rescale_step`, so the equivalence holds
        // across a thread-pool teardown/respawn too.
        let mut events = FaultSchedule::generate(fault_seed, 5, n_faults).events;
        let kind = if scale_out {
            FaultKind::ScaleOut { gpus: 1 }
        } else {
            FaultKind::ScaleIn { gpus: 1 }
        };
        events.push(FaultEvent { step: rescale_step, kind });
        events.sort_by_key(|e| e.step);
        let tag = format!("rand-g{gpus}-s{fault_seed}-f{n_faults}-r{rescale_step}");
        assert_pool_eq_single(&tag, wide_cfg(gpus), FaultSchedule::from_events(events));
    }
}

//! PR 9's tentpole, end to end: **real OS-thread faults inside the worker
//! pool are bitwise-invisible.** A pool thread that panics, stalls forever,
//! or silently drops its reply is reaped by the supervised drain deadline,
//! respawned from the engine's param mirror, and its round replayed — so a
//! pool run under any thread-fault schedule is byte-identical to the
//! single-thread run (where thread faults are structural no-ops): final
//! params, the MAIN supervisor health log, and simulated time all match.
//!
//! On top of byte-identity, every consumed fault must be *detected within
//! its computed latency bound* on the dedicated thread-health tracker's
//! virtual timeline (`RunReport::thread_detections`), and each one costs at
//! least one recorded respawn.

use std::path::PathBuf;

use device::GpuType;
use easyscale::{Determinism, ExecMode, JobConfig};
use faultsim::{FaultEvent, FaultHarness, FaultKind, FaultSchedule, HarnessConfig, RunReport};
use models::Workload;
use sched::HealthPolicy;

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("easyscale-threadfault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An 8-EST job on a `gpus`-GPU cluster: worker counts from 2 to 8 are all
/// legal placements, so the matrix can exercise every pool width.
fn wide_cfg(gpus: u32) -> impl Fn(PathBuf) -> HarnessConfig {
    move |store_dir| {
        let job = JobConfig::new(Workload::NeuMF, 4242, 8)
            .with_dataset_len(64)
            .with_determinism(Determinism::d1_d2());
        let lease_us = 2 * HarnessConfig::worst_step_us(&job, GpuType::V100);
        let mut cfg = HarnessConfig::default_chaos(store_dir);
        cfg.job = job;
        cfg.total_steps = 5;
        cfg.initial_gpus = gpus;
        cfg.cluster_gpus = 8;
        cfg.health = HealthPolicy::with_lease(lease_us);
        cfg.start_order = (0..gpus).collect();
        cfg
    }
}

/// Run `schedule` on the pool and single-threaded, assert the deterministic
/// outputs are byte-identical, then assert the pool run's thread-fault
/// detection story: every armed fault tracked, every non-superseded one
/// detected within its bound, every detection backed by a respawn.
fn assert_thread_faults_invisible(
    tag: &str,
    make_cfg: impl Fn(PathBuf) -> HarnessConfig,
    schedule: FaultSchedule,
) {
    let dir_pool = store_dir(&format!("{tag}-pool"));
    let dir_single = store_dir(&format!("{tag}-single"));
    let mut cfg_pool = make_cfg(dir_pool.clone());
    cfg_pool.exec_mode = ExecMode::Pool;
    let mut cfg_single = make_cfg(dir_single.clone());
    cfg_single.exec_mode = ExecMode::SingleThread;

    let pool = FaultHarness::new(cfg_pool, schedule.clone()).run();
    let single = FaultHarness::new(cfg_single, schedule.clone()).run();
    let _ = std::fs::remove_dir_all(&dir_pool);
    let _ = std::fs::remove_dir_all(&dir_single);

    // ---- byte-identity: the fault never happened, as far as bits go ----
    assert_eq!(
        pool.params_bits(),
        single.params_bits(),
        "[{tag}] thread faults must be bitwise-invisible (seed {}, kinds {:?})",
        schedule.seed,
        schedule.kinds()
    );
    assert_eq!(
        format!("{:?}", pool.health_events),
        format!("{:?}", single.health_events),
        "[{tag}] the MAIN health log must never see a thread fault"
    );
    assert_eq!(
        pool.sim_elapsed_us, single.sim_elapsed_us,
        "[{tag}] simulated time must match (recovery is real time, never virtual)"
    );
    assert_eq!(pool.crashes, single.crashes, "[{tag}] no crash path for thread faults");
    assert_eq!(pool.replayed_steps, single.replayed_steps, "[{tag}] no checkpoint rewind either");

    // ---- detection: every consumed fault caught, within its bound ------
    assert_detections(tag, &schedule, &pool);
    // Single-thread engines have no pool threads: nothing to detect.
    assert!(single.thread_detections.is_empty(), "[{tag}] single-thread arms nothing");
    assert_eq!(single.pool_respawns, 0, "[{tag}] single-thread respawns nothing");
}

fn assert_detections(tag: &str, schedule: &FaultSchedule, pool: &RunReport) {
    let armed = schedule.events.iter().filter(|e| e.kind.is_thread_fault()).count();
    assert_eq!(
        pool.thread_detections.len(),
        armed,
        "[{tag}] every thread-fault event arms exactly one detection record"
    );
    assert!(
        pool.all_thread_faults_detected_within_bound(),
        "[{tag}] a thread fault missed its latency bound: {:?}",
        pool.thread_detections
    );
    let live: Vec<_> = pool.thread_detections.iter().filter(|d| !d.superseded).collect();
    for d in &live {
        assert!(d.detected_at_us.is_some(), "[{tag}] undetected live fault: {d:?}");
        assert!(
            d.latency_us.is_some_and(|l| l <= d.bound_us),
            "[{tag}] latency above bound: {d:?}"
        );
    }
    // Each live detection was resolved by a real recovery; spurious
    // deadline hits may add more respawns, never fewer.
    assert!(
        pool.pool_respawns >= live.len() as u64,
        "[{tag}] {} live faults but only {} respawns",
        live.len(),
        pool.pool_respawns
    );
    if !live.is_empty() {
        assert!(
            !pool.thread_health_events.is_empty(),
            "[{tag}] detections must appear on the dedicated thread-health timeline"
        );
    }
}

// ---- hand-authored schedules -------------------------------------------

#[test]
fn hand_one_of_each_fault_kind_is_bitwise_invisible() {
    assert_thread_faults_invisible(
        "one-of-each",
        HarnessConfig::default_chaos,
        FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::ThreadPanic { worker: 0 } },
            FaultEvent { step: 3, kind: FaultKind::ThreadStall { worker: 1 } },
            FaultEvent { step: 5, kind: FaultKind::ReplyDrop { worker: 0 } },
        ]),
    );
}

#[test]
fn hand_wide_pool_survives_faults_on_high_workers() {
    assert_thread_faults_invisible(
        "wide-w8",
        wide_cfg(8),
        FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::ThreadPanic { worker: 3 } },
            FaultEvent { step: 2, kind: FaultKind::ReplyDrop { worker: 7 } },
            FaultEvent { step: 3, kind: FaultKind::ThreadStall { worker: 5 } },
        ]),
    );
}

#[test]
fn hand_thread_faults_compose_with_a_process_crash() {
    // The crash tears the whole pool down mid-run: recoveries already
    // caught must still resolve, the fault armed after the rebuild must
    // still be caught, and the bits must still match the single-thread run
    // taking the same crash.
    assert_thread_faults_invisible(
        "mixed-crash",
        HarnessConfig::default_chaos,
        FaultSchedule::from_events(vec![
            FaultEvent { step: 1, kind: FaultKind::ThreadPanic { worker: 1 } },
            FaultEvent { step: 3, kind: FaultKind::WorkerCrash },
            FaultEvent { step: 5, kind: FaultKind::ThreadStall { worker: 0 } },
        ]),
    );
}

// ---- seeded schedules, worker counts 2..=8 -----------------------------

#[test]
fn seeded_thread_fault_matrix_is_bitwise_invisible() {
    // Seven seeded schedules spanning every pool width from 2 to 8
    // workers; `generate_thread_faults` draws all three fault kinds.
    for seed in 0u64..7 {
        let gpus = 2 + (seed as u32 % 7); // 2..=8
        let schedule = FaultSchedule::generate_thread_faults(seed, 5, 3);
        assert_thread_faults_invisible(&format!("seed{seed}-w{gpus}"), wide_cfg(gpus), schedule);
    }
}

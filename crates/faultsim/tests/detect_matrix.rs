//! The silent-fault detection matrix, as integration tests.
//!
//! Nothing announces these faults: the AIMaster supervisor must discover a
//! dead device from its lapsed heartbeat lease, a creeping straggler from
//! its z-score, and a muted device from its silence — and every case must
//! end with final parameters byte-identical to the fault-free run, with
//! detection inside the precomputed SimClock latency bound.
//!
//! The determinism tests pin the health-event log itself: serialized
//! byte-for-byte equal across repeat runs and across shuffled worker
//! start orders.

use faultsim::{
    run_case, run_fault_free, silent_matrix, FaultEvent, FaultHarness, FaultKind, FaultSchedule,
    HarnessConfig,
};
use sched::{HealthState, TransitionCause};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("easyscale-detect-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline assertion: every matrix case — three hand-authored
/// schedules covering each silent kind plus three seeded ones — is
/// detected within its latency bound AND converges byte-identically.
#[test]
fn silent_fault_matrix_detects_within_bounds_and_stays_bitwise() {
    let cases = silent_matrix();
    assert!(cases.len() >= 6, "the matrix must hold at least 6 schedules");
    let mut kinds_seen = std::collections::BTreeSet::new();
    for case in &cases {
        for ev in &case.schedule.events {
            assert!(ev.kind.is_silent(), "{}: only silent kinds belong here", case.name);
            kinds_seen.insert(ev.kind.name());
        }
    }
    assert_eq!(
        kinds_seen.into_iter().collect::<Vec<_>>(),
        vec!["creeping_straggler", "heartbeat_drop", "silent_crash"],
        "the matrix must cover every silent kind"
    );

    for case in &cases {
        let dir = tmp(&format!("matrix-{}", case.name));
        let outcome = run_case(case, &dir);
        assert!(
            outcome.bitwise_identical,
            "{}: final params diverged from the fault-free run",
            case.name
        );
        assert!(
            outcome.all_detected_within_bound,
            "{}: a detection missed its latency bound: {:?}",
            case.name, outcome.detections
        );
        assert!(
            !outcome.detections.is_empty(),
            "{}: every case must arm at least one detection",
            case.name
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A silent crash is discovered through its lapsed lease: the device is
/// quarantined with `LeaseMiss` as the cause, evicted with a crash
/// assumed (checkpoint fallback), and never readmitted.
#[test]
fn silent_crash_is_quarantined_on_lease_miss_and_rolled_back() {
    let dir = tmp("crash-cause");
    let cfg = HarnessConfig::default_detect(dir.clone());
    let reference = run_fault_free(&cfg);
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        step: 3,
        kind: FaultKind::SilentCrash { worker: 0 },
    }]);
    let report = FaultHarness::new(cfg, schedule).run();
    assert_eq!(report.final_params, reference);
    let quarantine = report
        .health_events
        .iter()
        .find(|e| e.to == HealthState::Quarantined)
        .expect("the corpse must be quarantined");
    assert!(
        matches!(quarantine.cause, TransitionCause::LeaseMiss { .. }),
        "a silent crash is a lease story, got {:?}",
        quarantine.cause
    );
    assert_eq!(report.evictions, 1);
    assert_eq!(report.readmissions, 0, "a dead device never comes back");
    assert!(report.crashes >= 1, "lost lease ⇒ fall back to the last-good checkpoint");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A creeping straggler is discovered through its z-score: quarantined
/// with `StragglerScore` as the cause, evicted *without* a rollback
/// (it is slow, not dead), and flap-damped — each failed probation doubles
/// the backoff until the quarantine becomes permanent.
#[test]
fn creeping_straggler_is_scored_out_and_flap_damped() {
    let dir = tmp("creep-cause");
    let cfg = HarnessConfig::default_detect(dir.clone());
    let reference = run_fault_free(&cfg);
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        step: 2,
        kind: FaultKind::CreepingStraggler { worker: 0, start_milli: 1200, ramp_milli: 400 },
    }]);
    let report = FaultHarness::new(cfg, schedule).run();
    assert_eq!(report.final_params, reference);
    assert!(
        report.health_events.iter().any(|e| e.to == HealthState::Quarantined
            && matches!(e.cause, TransitionCause::StragglerScore { .. })),
        "a creeper is a score story: {:?}",
        report.health_events
    );
    assert_eq!(report.crashes, 0, "a straggler is alive: no checkpoint fallback");
    assert!(report.evictions >= 1);
    assert!(
        report.readmissions >= 1,
        "backoff elapses, the creeper gets a probation it then fails"
    );
    assert!(
        report.evictions > report.readmissions,
        "every readmission of a still-creeping device fails probation and re-evicts"
    );
    assert!(
        report.health_events.iter().any(|e| matches!(e.cause, TransitionCause::FlapLimit)),
        "repeated failed probations must end in a permanent quarantine"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A long heartbeat drop trips the lease into Suspect; when the beats
/// resume the device recovers (`HeartbeatResumed`). A benign two-beat drop
/// must not be quarantined. Both runs stay byte-identical trivially —
/// detection never touches the numeric path.
#[test]
fn heartbeat_drop_goes_suspect_then_recovers() {
    let dir = tmp("drop-cause");
    let cfg = HarnessConfig::default_detect(dir.clone());
    let reference = run_fault_free(&cfg);
    // Injected at step 0 so the mute ends with rounds to spare: the beats
    // must actually resume for the recovery transition to exist.
    let schedule = FaultSchedule::from_events(vec![
        FaultEvent { step: 0, kind: FaultKind::HeartbeatDrop { worker: 1, beats: 12 } },
        FaultEvent { step: 8, kind: FaultKind::HeartbeatDrop { worker: 0, beats: 2 } },
    ]);
    let report = FaultHarness::new(cfg, schedule).run();
    assert_eq!(report.final_params, reference);
    let muted = report
        .health_events
        .iter()
        .find(|e| e.to == HealthState::Suspect)
        .expect("a 12-beat mute must at least raise suspicion");
    assert!(
        report.health_events.iter().any(|e| e.device == muted.device
            && e.to == HealthState::Healthy
            && matches!(e.cause, TransitionCause::HeartbeatResumed)),
        "once beats resume, the device must be cleared: {:?}",
        report.health_events
    );
    // The benign 2-beat drop targets the *other* device; it must never be
    // quarantined for it.
    assert!(
        !report
            .health_events
            .iter()
            .any(|e| e.device != muted.device && e.to == HealthState::Quarantined),
        "a 2-beat drop is benign: {:?}",
        report.health_events
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The health-event log is a pure function of `(config, schedule)`:
/// running the same case twice yields serialized logs equal byte for byte.
#[test]
fn health_event_log_is_byte_identical_across_repeat_runs() {
    for case in silent_matrix() {
        let dir_a = tmp(&format!("repeat-a-{}", case.name));
        let dir_b = tmp(&format!("repeat-b-{}", case.name));
        let a = run_case(&case, &dir_a);
        let b = run_case(&case, &dir_b);
        assert_eq!(
            serde_json::to_vec(&a.health_events).unwrap(),
            serde_json::to_vec(&b.health_events).unwrap(),
            "{}: health-event log must be deterministic",
            case.name
        );
        assert_eq!(
            serde_json::to_vec(&a.detections).unwrap(),
            serde_json::to_vec(&b.detections).unwrap(),
            "{}: detection records must be deterministic",
            case.name
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}

/// The order workers announce themselves in is a race in real clusters;
/// here it must be invisible: any permutation of `start_order` yields the
/// same health-event log, byte for byte (the heartbeat bus canonicalizes
/// and the tracker iterates in device order).
#[test]
fn health_event_log_is_invariant_under_shuffled_start_order() {
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        step: 3,
        kind: FaultKind::SilentCrash { worker: 1 },
    }]);
    let mut logs = Vec::new();
    for (tag, order) in [("fwd", vec![0, 1]), ("rev", vec![1, 0])] {
        let dir = tmp(&format!("order-{tag}"));
        let mut cfg = HarnessConfig::default_detect(dir.clone());
        cfg.start_order = order;
        let report = FaultHarness::new(cfg, schedule.clone()).run();
        logs.push((serde_json::to_vec(&report.health_events).unwrap(), report.params_bits()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(logs[0].0, logs[1].0, "start order must not leak into the health log");
    assert_eq!(logs[0].1, logs[1].1, "nor, of course, into the bits");
}

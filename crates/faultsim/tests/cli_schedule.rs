//! CLI contract for `faultsim --schedule`: a malformed artifact — unknown
//! fault kind, out-of-range field, unreadable file — must fail with a
//! one-line error on stderr and exit status 2, never a panic. A valid
//! artifact must load, replay, and report the byte-identity verdict.

use std::path::{Path, PathBuf};
use std::process::Command;

fn faultsim_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_faultsim"))
}

fn tmp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("easyscale-cli-schedule-{tag}-{}.json", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

/// Run `faultsim --schedule <path>` and return (status code, stderr).
fn run_with_schedule(path: &Path) -> (i32, String) {
    let out = faultsim_bin()
        .args(["--schedule", path.to_str().unwrap(), "--steps", "4"])
        .output()
        .expect("faultsim binary runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn unknown_fault_kind_is_a_clear_error_not_a_panic() {
    let path =
        tmp_file("unknown-kind", r#"{"seed": 0, "events": [{"step": 1, "kind": "MeteorStrike"}]}"#);
    let (code, stderr) = run_with_schedule(&path);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 2, "malformed schedule must exit 2, stderr: {stderr}");
    assert!(stderr.contains("invalid schedule"), "stderr names the problem: {stderr}");
    assert!(stderr.contains("cannot parse"), "parse failures say so: {stderr}");
    assert!(!stderr.contains("panicked"), "never a panic: {stderr}");
}

#[test]
fn out_of_range_field_is_a_clear_error_not_a_panic() {
    // Parses fine (serde-valid), but keep_frac_milli is out of range: only
    // schedule validation can catch it.
    let path = tmp_file(
        "out-of-range",
        r#"{"seed": 0, "events": [{"step": 1, "kind": {"TornCheckpoint": {"keep_frac_milli": 5000}}}]}"#,
    );
    let (code, stderr) = run_with_schedule(&path);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 2, "invalid field must exit 2, stderr: {stderr}");
    assert!(stderr.contains("invalid schedule"), "stderr names the problem: {stderr}");
    assert!(stderr.contains("keep_frac_milli"), "stderr names the field: {stderr}");
    assert!(!stderr.contains("panicked"), "never a panic: {stderr}");
}

#[test]
fn missing_schedule_file_is_a_clear_error_not_a_panic() {
    let path = std::env::temp_dir().join("easyscale-cli-schedule-does-not-exist.json");
    let (code, stderr) = run_with_schedule(&path);
    assert_eq!(code, 2, "unreadable schedule must exit 2, stderr: {stderr}");
    assert!(stderr.contains("cannot read"), "stderr says why: {stderr}");
    assert!(!stderr.contains("panicked"), "never a panic: {stderr}");
}

#[test]
fn valid_thread_fault_schedule_replays_through_the_cli() {
    let schedule = faultsim::FaultSchedule::from_events(vec![faultsim::FaultEvent {
        step: 1,
        kind: faultsim::FaultKind::ThreadPanic { worker: 0 },
    }]);
    let path = tmp_file("valid", &schedule.to_json());
    let out = faultsim_bin()
        .args(["--schedule", path.to_str().unwrap(), "--steps", "4", "--json"])
        .output()
        .expect("faultsim binary runs");
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "valid schedule passes: {stdout}");
    assert!(stdout.contains("\"bitwise_identical\": true"), "invariant held: {stdout}");
    assert!(stdout.contains("thread_panic"), "summary lists the kind: {stdout}");
}

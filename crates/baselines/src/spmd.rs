//! A plain fixed-world SPMD data-parallel trainer — "PyTorch DDP" without
//! any EasyScale machinery.
//!
//! One logical worker per physical GPU; the world size *is* the GPU count.
//! Per-rank implicit state (BatchNorm stats) and dropout streams, a shared
//! parameter/optimizer replica, ring all-reduce over physical ranks.
//! Deliberately implemented without `easyscale::Engine` so that
//! `Engine` (with one EST per GPU) and `SpmdTrainer` can be checked against
//! each other bit-for-bit.

use comm::ElasticDdp;
use data::{AugmentConfig, Augmenter, Dataset, DistributedSampler, ShardedLoader};
use device::GpuType;
use easyscale::{Determinism, JobConfig};
use esrng::{EsRng, RngState, StreamKey, StreamKind};
use models::model::ExecCtx;
use models::zoo::{self, build_proxy, InputKind};
use models::{ImplicitState, Model, Workload};
use optim::Sgd;

use tensor::ops::{cross_entropy, softmax_rows};
use tensor::KernelProfile;

/// Configuration of a fixed-world SPMD job.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Workload proxy.
    pub workload: Workload,
    /// Global seed.
    pub seed: u64,
    /// World size (== GPU count).
    pub world: u32,
    /// Per-rank batch size.
    pub batch_size: usize,
    /// Dataset size.
    pub dataset_len: usize,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// GPU type all ranks run on.
    pub gpu: GpuType,
    /// Kernel determinism (DDP-homo uses deterministic vendor kernels;
    /// DDP-heter additionally uses hardware-agnostic ones).
    pub determinism: Determinism,
    /// Gradient bucket capacity.
    pub bucket_cap_bytes: usize,
    /// Data augmentation.
    pub augment: bool,
}

impl SpmdConfig {
    /// Defaults matching `easyscale::JobConfig::new` so the cross-validation
    /// tests compare like for like.
    pub fn new(workload: Workload, seed: u64, world: u32) -> Self {
        let j = JobConfig::new(workload, seed, world);
        SpmdConfig {
            workload,
            seed,
            world,
            batch_size: j.batch_size,
            dataset_len: j.dataset_len,
            momentum: j.momentum,
            weight_decay: j.weight_decay,
            gpu: GpuType::V100,
            determinism: j.determinism,
            bucket_cap_bytes: j.bucket_cap_bytes,
            augment: j.augment,
        }
    }

    /// Override the dataset length.
    pub fn with_dataset_len(mut self, len: usize) -> Self {
        self.dataset_len = len;
        self
    }

    /// Override the per-rank batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }
}

struct RankState {
    implicit: ImplicitState,
    dropout: RngState,
}

/// Fixed-world SPMD data-parallel trainer.
pub struct SpmdTrainer {
    config: SpmdConfig,
    model: Model,
    loader: ShardedLoader,
    ranks: Vec<RankState>,
    ddp: ElasticDdp,
    opt: Sgd,
    profile: KernelProfile,
    step: u64,
    steps_per_epoch: u64,
}

impl SpmdTrainer {
    /// Fresh trainer.
    pub fn new(config: SpmdConfig) -> Self {
        let model = build_proxy(config.workload, config.seed);
        // Same dataset constructor EasyScale uses: baselines must train on
        // the identical task or the comparison figures mean nothing.
        let dataset = easyscale::worker::make_dataset(
            &JobConfig::new(config.workload, config.seed, config.world)
                .with_dataset_len(config.dataset_len),
        );
        let augmenter = if config.augment && zoo::input_kind(config.workload) == InputKind::Image {
            Some(Augmenter::new(AugmentConfig::default()))
        } else {
            None
        };
        let loader = ShardedLoader::new(
            dataset,
            config.world,
            config.batch_size,
            config.seed,
            true,
            augmenter,
        );
        let implicit = model.implicit_state();
        let ranks = (0..config.world)
            .map(|r| RankState {
                implicit: implicit.clone(),
                dropout: EsRng::for_stream(config.seed, StreamKey::ranked(StreamKind::Dropout, r))
                    .state(),
            })
            .collect();
        let sizes = model.param_sizes();
        let ddp = ElasticDdp::new(&sizes, config.world, config.bucket_cap_bytes);
        let opt = Sgd::new(sizes.iter().sum(), config.momentum, config.weight_decay);
        let profile = config.determinism.profile_for(config.gpu);
        let steps_per_epoch =
            DistributedSampler::new(config.dataset_len, config.world, config.seed, true)
                .batches_per_epoch(config.batch_size) as u64;
        SpmdTrainer { config, model, loader, ranks, ddp, opt, profile, step: 0, steps_per_epoch }
    }

    /// Fresh trainer that *continues* another job's parameters and optimizer
    /// state — the restart path elastic baselines use when the world size
    /// changes. Note everything else (sampler position, BN stats, bucket
    /// layout) is rebuilt from scratch: exactly the state loss that makes
    /// these baselines accuracy-inconsistent.
    pub fn restarted(config: SpmdConfig, params: &[f32], velocity: &[f32]) -> Self {
        let mut t = Self::new(config);
        t.model.load_flat_params(params);
        t.opt.restore_state(velocity);
        t
    }

    /// World size.
    pub fn world(&self) -> u32 {
        self.config.world
    }

    /// Steps per epoch at the current world size.
    pub fn steps_per_epoch(&self) -> u64 {
        self.steps_per_epoch
    }

    /// Global steps completed.
    pub fn global_step(&self) -> u64 {
        self.step
    }

    /// Flat parameters.
    pub fn flat_params(&self) -> Vec<f32> {
        self.model.flat_params()
    }

    /// Optimizer velocity.
    pub fn opt_velocity(&self) -> Vec<f32> {
        self.opt.state().to_vec()
    }

    /// One global step at learning rate `lr`; returns the mean loss.
    pub fn step(&mut self, lr: f32) -> f32 {
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(self.config.world as usize);
        let mut losses = Vec::with_capacity(self.config.world as usize);
        for r in 0..self.config.world {
            let state = &mut self.ranks[r as usize];
            self.model.set_implicit_state(&state.implicit);
            let mut dropout = EsRng::restore(state.dropout);
            let batch = self.loader.next_batch(r);
            let mut ctx = ExecCtx { profile: self.profile, training: true, dropout: &mut dropout };
            let logits = self.model.forward(&batch.features, &mut ctx);
            let probs = softmax_rows(&logits, &self.profile);
            let (loss, grad_logits) = cross_entropy(&probs, &batch.labels, &self.profile);
            self.model.backward(&grad_logits, &mut ctx);
            grads.push(self.model.flat_grads());
            self.model.zero_grads();
            state.implicit = self.model.implicit_state();
            state.dropout = dropout.state();
            losses.push(loss);
        }
        let avg = self.ddp.allreduce_avg(&grads);
        let params = self.model.flat_params();
        let delta = self.opt.step(&params, &avg, lr);
        self.model.apply_flat_delta(&delta);
        if !self.ddp.is_rebuilt() {
            let order = easyscale::determinism::fresh_ready_order(self.model.param_sizes().len());
            self.ddp.rebuild_from_ready_order(&order, self.config.bucket_cap_bytes);
        }
        self.step += 1;
        losses.iter().sum::<f32>() / losses.len() as f32
    }

    /// Evaluate overall and per-class accuracy with rank 0's implicit state.
    pub fn evaluate(&mut self, dataset: &dyn Dataset, batch_size: usize) -> (f64, Vec<f64>) {
        self.model.set_implicit_state(&self.ranks[0].implicit.clone());
        let classes = dataset.num_classes() as usize;
        let mut correct = vec![0u64; classes];
        let mut total = vec![0u64; classes];
        let feat_shape = dataset.feature_shape();
        let feat_len: usize = feat_shape.iter().product();
        let mut dropout = EsRng::restore(self.ranks[0].dropout);
        let n = dataset.len();
        let mut i = 0;
        while i < n {
            let end = (i + batch_size).min(n);
            let b = end - i;
            let mut features = Vec::with_capacity(b * feat_len);
            let mut labels = Vec::with_capacity(b);
            for idx in i..end {
                let (x, y) = dataset.sample(idx as u32);
                features.extend_from_slice(x.data());
                labels.push(y);
            }
            let mut shape = vec![b];
            shape.extend_from_slice(&feat_shape);
            let x = tensor::Tensor::from_vec(features, &shape);
            let mut ctx = ExecCtx { profile: self.profile, training: false, dropout: &mut dropout };
            let logits = self.model.forward(&x, &mut ctx);
            let ld = logits.data();
            for (j, &label) in labels.iter().enumerate() {
                let row = &ld[j * classes..(j + 1) * classes];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(k, _)| k)
                    .unwrap();
                total[label as usize] += 1;
                if pred == label as usize {
                    correct[label as usize] += 1;
                }
            }
            i = end;
        }
        let overall = correct.iter().sum::<u64>() as f64 / total.iter().sum::<u64>().max(1) as f64;
        let per_class = correct
            .iter()
            .zip(&total)
            .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f64 / t as f64 })
            .collect();
        (overall, per_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_world_runs_are_reproducible() {
        let mk =
            || SpmdTrainer::new(SpmdConfig::new(Workload::ResNet18, 5, 2).with_dataset_len(128));
        let mut a = mk();
        let mut b = mk();
        for _ in 0..3 {
            let la = a.step(0.05);
            let lb = b.step(0.05);
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn different_world_sizes_differ() {
        let mut w2 =
            SpmdTrainer::new(SpmdConfig::new(Workload::ResNet18, 5, 2).with_dataset_len(128));
        let mut w4 =
            SpmdTrainer::new(SpmdConfig::new(Workload::ResNet18, 5, 4).with_dataset_len(128));
        for _ in 0..2 {
            w2.step(0.05);
            w4.step(0.05);
        }
        assert_ne!(
            w2.flat_params(),
            w4.flat_params(),
            "global batch differs with world size: trajectories diverge"
        );
    }

    #[test]
    fn restart_carries_params_but_loses_progress_state() {
        let mut t =
            SpmdTrainer::new(SpmdConfig::new(Workload::ResNet18, 5, 4).with_dataset_len(128));
        for _ in 0..3 {
            t.step(0.05);
        }
        let params = t.flat_params();
        let restarted = SpmdTrainer::restarted(
            SpmdConfig::new(Workload::ResNet18, 5, 2).with_dataset_len(128),
            &params,
            &t.opt_velocity(),
        );
        assert_eq!(restarted.flat_params(), params, "parameters survive the restart");
        assert_eq!(restarted.global_step(), 0, "but progress bookkeeping restarts");
    }

    #[test]
    fn spmd_matches_easyscale_engine_bitwise() {
        // Cross-validation: two independent implementations of 2-worker DDP
        // must agree bit for bit.
        use easyscale::{Engine, JobConfig, Placement};
        let mut spmd =
            SpmdTrainer::new(SpmdConfig::new(Workload::ResNet18, 9, 2).with_dataset_len(128));
        let cfg = JobConfig::new(Workload::ResNet18, 9, 2).with_dataset_len(128);
        let lr = cfg.lr;
        let mut engine = Engine::new(cfg, Placement::one_est_per_gpu(2, GpuType::V100));
        for _ in 0..4 {
            let l_spmd = spmd.step(lr.base_lr);
            let r = engine.step();
            assert_eq!(l_spmd.to_bits(), r.mean_loss.to_bits(), "losses must match bitwise");
        }
        let a = spmd.flat_params();
        let b = engine.flat_params();
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}

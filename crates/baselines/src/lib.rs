//! Baseline systems the paper compares against.
//!
//! * [`SpmdTrainer`] — a plain fixed-world data-parallel trainer ("PyTorch
//!   DDP"): world size == physical GPU count, no virtual ranks. Built
//!   independently from `easyscale::Engine` so the two implementations
//!   cross-validate each other (see the integration tests).
//! * [`TorchElasticJob`] — TorchElastic-style elasticity: on a resource
//!   change the job restarts with world = #GPUs, keeps per-GPU batch size,
//!   and linearly rescales the learning rate. Accuracy becomes a function of
//!   the resource schedule — the Fig 2/3 inconsistency.
//! * [`PolluxJob`] — Pollux-style adaptivity: batch size and LR are re-tuned
//!   as resources change (square-root LR scaling, goodput-driven batch
//!   growth), trading accuracy consistency for throughput — the Fig 4
//!   oscillations.
//! * [`packing`] — Gandiva-style worker packing: N full training processes
//!   multiplexed on one GPU (the Fig 10 memory/throughput comparison).
//! * [`VirtualFlowJob`] — VirtualFlow-style gradient-accumulation
//!   elasticity: mathematically faithful but not bit-faithful (the ~0.4%
//!   accuracy deviation the paper cites).

#![deny(missing_docs)]

pub mod elastic;
pub mod packing;
pub mod spmd;
pub mod virtualflow;

pub use elastic::{PolluxJob, TorchElasticJob};
pub use packing::PackingSim;
pub use spmd::SpmdTrainer;
pub use virtualflow::VirtualFlowJob;

//! Gandiva-style worker packing: run N independent training processes on
//! one GPU, each with its own CUDA context, parameters, optimizer state,
//! activations, and gradients.
//!
//! Packing *is* accuracy-consistent (each logical worker really exists), so
//! it is the honest alternative to EasyScale's EST time-slicing — it just
//! pays N× the memory (Fig 10's rising curve and OOM crosses) in exchange
//! for a modest concurrency throughput bonus (≤1.11×).

use device::memory::WorkloadFootprint;
use device::{GpuType, MemoryModel, OomError, PerfModel, CUDA_CONTEXT_BYTES};
use models::WorkloadSpec;

/// Memory/throughput simulator for worker packing vs EasyScale sharing.
#[derive(Debug, Clone)]
pub struct PackingSim {
    footprint: WorkloadFootprint,
    base_secs: f64,
    gpu: GpuType,
    perf: PerfModel,
}

impl PackingSim {
    /// Simulator for one workload on one GPU type.
    pub fn new(spec: &WorkloadSpec, gpu: GpuType) -> Self {
        PackingSim {
            footprint: spec.footprint,
            base_secs: spec.base_v100_secs,
            gpu,
            perf: PerfModel::default(),
        }
    }

    /// Peak GPU memory with `n` packed workers.
    pub fn packed_memory(&self, n: u64) -> u64 {
        self.footprint.packed_peak(n)
    }

    /// Peak GPU memory with `n` ESTs in one EasyScale worker.
    pub fn easyscale_memory(&self, n: u64) -> u64 {
        self.footprint.easyscale_peak(n)
    }

    /// Attempt to admit `n` packed workers on the device; the error carries
    /// which worker's allocation failed.
    pub fn try_pack(&self, n: u64) -> Result<u64, OomError> {
        let mut mem = MemoryModel::for_gpu(self.gpu);
        for i in 0..n {
            mem.alloc(&format!("worker{i}/cuda_context"), CUDA_CONTEXT_BYTES)?;
            mem.alloc(&format!("worker{i}/params_opt"), self.footprint.params_and_opt)?;
            mem.alloc(&format!("worker{i}/activations"), self.footprint.activations)?;
            mem.alloc(&format!("worker{i}/gradients"), self.footprint.gradients)?;
        }
        Ok(mem.peak())
    }

    /// Largest packed-worker count that fits.
    pub fn max_packed_workers(&self) -> u64 {
        let mut n = 0;
        while self.try_pack(n + 1).is_ok() {
            n += 1;
        }
        n
    }

    /// Logical-worker throughput (mini-batches/s summed over workers) for
    /// `n` packed workers.
    pub fn packed_throughput(&self, n: u32) -> f64 {
        let mb = self.perf.minibatch_time(self.base_secs, self.gpu, 1.0);
        self.perf.packing_throughput(mb, n)
    }

    /// Logical-worker throughput for `n` ESTs time-sliced on one worker.
    pub fn easyscale_throughput(&self, n: u32) -> f64 {
        let mb = self.perf.minibatch_time(self.base_secs, self.gpu, 1.0);
        self.perf.easyscale_throughput(mb, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::Workload;

    fn sim(w: Workload) -> PackingSim {
        PackingSim::new(&w.spec(), GpuType::V100)
    }

    #[test]
    fn resnet50_packs_8_not_9() {
        let s = sim(Workload::ResNet50);
        assert_eq!(s.max_packed_workers(), 8);
        assert!(s.try_pack(9).is_err());
    }

    #[test]
    fn shufflenet_packs_2_not_3() {
        let s = sim(Workload::ShuffleNetV2);
        assert_eq!(s.max_packed_workers(), 2);
    }

    #[test]
    fn easyscale_memory_is_flat() {
        let s = sim(Workload::ResNet50);
        assert_eq!(s.easyscale_memory(2), s.easyscale_memory(16));
        assert!(s.easyscale_memory(16) < s.packed_memory(3));
    }

    #[test]
    fn packing_throughput_bonus_is_bounded() {
        let s = sim(Workload::ResNet50);
        let ratio = s.packed_throughput(8) / s.easyscale_throughput(8);
        assert!(ratio > 1.0 && ratio < 1.12, "packing peaks near 1.11×, got {ratio}");
    }

    #[test]
    fn oom_error_names_the_failing_worker() {
        let s = sim(Workload::ShuffleNetV2);
        let err = s.try_pack(5).unwrap_err();
        assert!(err.what.starts_with("worker"), "{}", err.what);
    }
}

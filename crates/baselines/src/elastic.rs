//! Elastic-training baselines: TorchElastic-like and Pollux-like jobs.
//!
//! Both adapt the *training procedure* to the resource count — which is
//! precisely what makes their accuracy a function of the resource schedule.
//! EasyScale's contribution is refusing to do that; these exist to reproduce
//! the motivation figures (2, 3, 4).

use crate::spmd::{SpmdConfig, SpmdTrainer};
use data::Dataset;
use models::Workload;
use optim::{LrSchedule, StepLr};

/// TorchElastic-style job: world = GPU count, per-GPU batch fixed, LR
/// linearly rescaled with world size (Goyal et al.), full restart on scale.
pub struct TorchElasticJob {
    workload: Workload,
    seed: u64,
    base_workers: u32,
    base_schedule: StepLr,
    trainer: SpmdTrainer,
    /// Fractional epochs completed (worlds of different sizes advance epochs
    /// at different rates).
    epochs: f64,
    dataset_len: usize,
    batch_size: usize,
}

impl TorchElasticJob {
    /// Start with `initial_world` GPUs; hyper-parameters were tuned for
    /// `base_workers`.
    pub fn new(
        workload: Workload,
        seed: u64,
        base_workers: u32,
        initial_world: u32,
        base_schedule: StepLr,
        dataset_len: usize,
        batch_size: usize,
    ) -> Self {
        let cfg = SpmdConfig::new(workload, seed, initial_world)
            .with_dataset_len(dataset_len)
            .with_batch_size(batch_size);
        TorchElasticJob {
            workload,
            seed,
            base_workers,
            base_schedule,
            trainer: SpmdTrainer::new(cfg),
            epochs: 0.0,
            dataset_len,
            batch_size,
        }
    }

    /// Current world size.
    pub fn world(&self) -> u32 {
        self.trainer.world()
    }

    /// Fractional epochs completed.
    pub fn epochs(&self) -> f64 {
        self.epochs
    }

    /// Resource change: restart with a new world size, carrying parameters
    /// and optimizer state — and silently dropping sampler position, BN
    /// stats, and bucket layout, as the real system does.
    pub fn set_world(&mut self, world: u32) {
        if world == self.trainer.world() {
            return;
        }
        let params = self.trainer.flat_params();
        let velocity = self.trainer.opt_velocity();
        let cfg = SpmdConfig::new(self.workload, self.seed, world)
            .with_dataset_len(self.dataset_len)
            .with_batch_size(self.batch_size);
        self.trainer = SpmdTrainer::restarted(cfg, &params, &velocity);
    }

    /// The linear scaling rule's LR at the current world size and epoch.
    pub fn current_lr(&self) -> f32 {
        self.base_schedule.lr(self.epochs as u64) * self.trainer.world() as f32
            / self.base_workers as f32
    }

    /// One global step; returns the mean loss.
    pub fn step(&mut self) -> f32 {
        let lr = self.current_lr();
        let loss = self.trainer.step(lr);
        self.epochs += 1.0 / self.trainer.steps_per_epoch() as f64;
        loss
    }

    /// Run a whole epoch at the current world size.
    pub fn run_epoch(&mut self) -> f32 {
        let steps = self.trainer.steps_per_epoch();
        let mut last = 0.0;
        for _ in 0..steps {
            last = self.step();
        }
        last
    }

    /// Evaluate (overall, per-class) accuracy.
    pub fn evaluate(&mut self, dataset: &dyn Dataset, batch: usize) -> (f64, Vec<f64>) {
        self.trainer.evaluate(dataset, batch)
    }

    /// Flat parameters.
    pub fn flat_params(&self) -> Vec<f32> {
        self.trainer.flat_params()
    }
}

/// Pollux-style job: co-adapts batch size and learning rate to the resource
/// count for goodput, restarting with re-tuned hyper-parameters on scale.
pub struct PolluxJob {
    workload: Workload,
    seed: u64,
    base_workers: u32,
    base_batch: usize,
    base_schedule: StepLr,
    trainer: SpmdTrainer,
    epochs: f64,
    dataset_len: usize,
}

impl PolluxJob {
    /// Start with `initial_world` GPUs.
    pub fn new(
        workload: Workload,
        seed: u64,
        base_workers: u32,
        initial_world: u32,
        base_schedule: StepLr,
        dataset_len: usize,
        base_batch: usize,
    ) -> Self {
        let mut job = PolluxJob {
            workload,
            seed,
            base_workers,
            base_batch,
            base_schedule,
            trainer: SpmdTrainer::new(
                SpmdConfig::new(workload, seed, initial_world)
                    .with_dataset_len(dataset_len)
                    .with_batch_size(base_batch),
            ),
            epochs: 0.0,
            dataset_len,
        };
        job.retune(initial_world);
        job
    }

    /// The per-GPU batch size Pollux's goodput model picks at world size
    /// `w`: it grows the batch on small worlds to keep GPUs saturated and
    /// shrinks toward the base on large worlds (statistical efficiency).
    pub fn tuned_batch(&self, w: u32) -> usize {
        let scale = (self.base_workers as f64 / w as f64).sqrt().clamp(1.0, 4.0);
        ((self.base_batch as f64 * scale) as usize).max(1)
    }

    /// Square-root LR scaling for the effective global batch (AdaScale-ish).
    pub fn current_lr(&self) -> f32 {
        let global = self.trainer.world() as f64 * self.tuned_batch(self.trainer.world()) as f64;
        let base_global = self.base_workers as f64 * self.base_batch as f64;
        self.base_schedule.lr(self.epochs as u64) * (global / base_global).sqrt() as f32
    }

    fn retune(&mut self, world: u32) {
        let batch = self.tuned_batch(world);
        let params = self.trainer.flat_params();
        let velocity = self.trainer.opt_velocity();
        let cfg = SpmdConfig::new(self.workload, self.seed, world)
            .with_dataset_len(self.dataset_len)
            .with_batch_size(batch);
        self.trainer = SpmdTrainer::restarted(cfg, &params, &velocity);
    }

    /// Current world size.
    pub fn world(&self) -> u32 {
        self.trainer.world()
    }

    /// Fractional epochs completed.
    pub fn epochs(&self) -> f64 {
        self.epochs
    }

    /// Resource change: re-tune batch/LR and restart.
    pub fn set_world(&mut self, world: u32) {
        if world == self.trainer.world() {
            return;
        }
        self.retune(world);
    }

    /// One global step.
    pub fn step(&mut self) -> f32 {
        let lr = self.current_lr();
        let loss = self.trainer.step(lr);
        self.epochs += 1.0 / self.trainer.steps_per_epoch() as f64;
        loss
    }

    /// Run one epoch.
    pub fn run_epoch(&mut self) -> f32 {
        let steps = self.trainer.steps_per_epoch();
        let mut last = 0.0;
        for _ in 0..steps {
            last = self.step();
        }
        last
    }

    /// Evaluate (overall, per-class) accuracy.
    pub fn evaluate(&mut self, dataset: &dyn Dataset, batch: usize) -> (f64, Vec<f64>) {
        self.trainer.evaluate(dataset, batch)
    }

    /// Flat parameters.
    pub fn flat_params(&self) -> Vec<f32> {
        self.trainer.flat_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> StepLr {
        StepLr { base_lr: 0.05, gamma: 0.1, step_epochs: 20 }
    }

    #[test]
    fn torchelastic_scales_lr_linearly() {
        let mut job = TorchElasticJob::new(Workload::ResNet18, 3, 4, 4, schedule(), 128, 8);
        assert!((job.current_lr() - 0.05).abs() < 1e-7);
        job.set_world(8);
        assert!((job.current_lr() - 0.10).abs() < 1e-7);
        job.set_world(1);
        assert!((job.current_lr() - 0.0125).abs() < 1e-7);
    }

    #[test]
    fn torchelastic_resource_schedule_changes_accuracy() {
        // Same job, two different resource schedules ⇒ different parameters.
        let mut stable = TorchElasticJob::new(Workload::ResNet18, 3, 4, 4, schedule(), 128, 8);
        let mut bouncy = TorchElasticJob::new(Workload::ResNet18, 3, 4, 4, schedule(), 128, 8);
        for i in 0..12 {
            stable.step();
            if i == 4 {
                bouncy.set_world(2);
            }
            if i == 8 {
                bouncy.set_world(8);
            }
            bouncy.step();
        }
        assert_ne!(stable.flat_params(), bouncy.flat_params());
    }

    #[test]
    fn pollux_retunes_batch_on_scale() {
        let job = PolluxJob::new(Workload::ResNet18, 3, 4, 4, schedule(), 256, 8);
        assert_eq!(job.tuned_batch(4), 8, "base world keeps base batch");
        assert!(job.tuned_batch(1) > 8, "small worlds grow the per-GPU batch");
    }

    #[test]
    fn pollux_sqrt_scaling_is_gentler_than_linear() {
        let mut p = PolluxJob::new(Workload::ResNet18, 3, 4, 4, schedule(), 256, 8);
        let t = TorchElasticJob::new(Workload::ResNet18, 3, 4, 8, schedule(), 256, 8);
        p.set_world(8);
        // Pollux at world 8: global = 8·8 = 64 vs base 32 ⇒ lr·√2.
        // TorchElastic at world 8: lr·2.
        assert!(p.current_lr() < t.current_lr());
        assert!(p.current_lr() > schedule().base_lr);
    }

    #[test]
    fn elastic_baselines_train() {
        let mut job = TorchElasticJob::new(Workload::ResNet18, 3, 2, 2, schedule(), 256, 8);
        let first = job.step();
        for _ in 0..20 {
            job.step();
        }
        let last = job.step();
        assert!(last < first, "TE still learns: {first} → {last}");
    }
}

//! VirtualFlow-like baseline: elasticity via gradient accumulation over
//! "virtual nodes".
//!
//! VirtualFlow (Or et al., MLSys '22) keeps the *global batch* constant by
//! mapping `v` virtual nodes onto each physical GPU: a rank runs `v`
//! micro-batches sequentially, accumulating gradients, then all-reduces.
//! This is much closer to EasyScale than TorchElastic/Pollux — the training
//! *mathematics* are preserved — but the paper reports it still loses ~0.4%
//! accuracy, because the low-level state is not: the accumulation order
//! (sequential sum of v micro-gradients, then ring over W physical ranks)
//! differs bitwise from an nEST-rank ring; BatchNorm sees per-physical-rank
//! statistics; dropout streams are keyed by physical rank; bucket layouts
//! rebuild on every restart. This module reproduces exactly that: *close
//! but not bitwise*, drifting a little further at every scale event.

use comm::ElasticDdp;
use data::{AugmentConfig, Augmenter, ShardedLoader};
use device::GpuType;
use easyscale::{Determinism, JobConfig};
use esrng::{EsRng, StreamKey, StreamKind};
use models::model::ExecCtx;
use models::zoo::{self, build_proxy, InputKind};
use models::{ImplicitState, Model, Workload};
use optim::Sgd;

use tensor::ops::{cross_entropy, softmax_rows};
use tensor::KernelProfile;

/// VirtualFlow-style elastic trainer: fixed `virtual_nodes` total, variable
/// physical world size, gradient accumulation bridging the gap.
pub struct VirtualFlowJob {
    workload: Workload,
    seed: u64,
    /// Total virtual nodes (the constant the global batch is defined by).
    virtual_nodes: u32,
    batch_size: usize,
    dataset_len: usize,
    world: u32,
    model: Model,
    /// Per-PHYSICAL-rank implicit state (the fidelity loss vs per-virtual).
    rank_implicit: Vec<ImplicitState>,
    loader: ShardedLoader,
    ddp: ElasticDdp,
    opt: Sgd,
    profile: KernelProfile,
    step: u64,
}

impl VirtualFlowJob {
    /// Start with `world` physical GPUs; `virtual_nodes` must be divisible
    /// by every world size used.
    pub fn new(
        workload: Workload,
        seed: u64,
        virtual_nodes: u32,
        world: u32,
        dataset_len: usize,
        batch_size: usize,
    ) -> Self {
        assert!(virtual_nodes.is_multiple_of(world), "virtual nodes must divide evenly");
        let j = JobConfig::new(workload, seed, virtual_nodes);
        let model = build_proxy(workload, seed);
        let implicit = model.implicit_state();
        let sizes = model.param_sizes();
        let ddp = ElasticDdp::new(&sizes, world, j.bucket_cap_bytes);
        let opt = Sgd::new(sizes.iter().sum(), j.momentum, j.weight_decay);
        VirtualFlowJob {
            workload,
            seed,
            virtual_nodes,
            batch_size,
            dataset_len,
            world,
            loader: Self::make_loader(workload, seed, virtual_nodes, dataset_len, batch_size),
            rank_implicit: vec![implicit; world as usize],
            ddp,
            opt,
            model,
            profile: Determinism::d0().profile_for(GpuType::V100),
            step: 0,
        }
    }

    fn make_loader(
        workload: Workload,
        seed: u64,
        virtual_nodes: u32,
        dataset_len: usize,
        batch_size: usize,
    ) -> ShardedLoader {
        // Same dataset constructor EasyScale uses (see spmd.rs).
        let dataset = easyscale::worker::make_dataset(
            &JobConfig::new(workload, seed, virtual_nodes).with_dataset_len(dataset_len),
        );
        let augmenter = if zoo::input_kind(workload) == InputKind::Image {
            Some(Augmenter::new(AugmentConfig::default()))
        } else {
            None
        };
        // Data IS sharded by virtual node (VirtualFlow keeps the global
        // batch); what differs from EasyScale is everything below the
        // sharding: RNG keying, BN stats, accumulation and ring orders.
        ShardedLoader::new(dataset, virtual_nodes, batch_size, seed, true, augmenter)
    }

    /// Physical world size.
    pub fn world(&self) -> u32 {
        self.world
    }

    /// Virtual nodes per physical rank at the current world size.
    pub fn accumulation_steps(&self) -> u32 {
        self.virtual_nodes / self.world
    }

    /// Scale to a new physical world size: carry parameters and optimizer
    /// state; rebuild communication (bucket layout re-derived), reset
    /// BN-stat replicas to rank 0's (the usual restart approximation), and
    /// restart the sampler.
    pub fn set_world(&mut self, world: u32) {
        assert!(self.virtual_nodes.is_multiple_of(world), "virtual nodes must divide evenly");
        if world == self.world {
            return;
        }
        let keep = self.rank_implicit[0].clone();
        self.world = world;
        self.rank_implicit = vec![keep; world as usize];
        let sizes = self.model.param_sizes();
        self.ddp = ElasticDdp::new(
            &sizes,
            world,
            JobConfig::new(self.workload, self.seed, self.virtual_nodes).bucket_cap_bytes,
        );
        self.loader = Self::make_loader(
            self.workload,
            self.seed,
            self.virtual_nodes,
            self.dataset_len,
            self.batch_size,
        );
    }

    /// One global step: each physical rank accumulates `accumulation_steps`
    /// micro-batch gradients sequentially, then the ranks all-reduce.
    pub fn step(&mut self, lr: f32) -> f32 {
        let accum = self.accumulation_steps();
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(self.world as usize);
        let mut losses = Vec::new();
        for r in 0..self.world {
            self.model.set_implicit_state(&self.rank_implicit[r as usize]);
            // Dropout keyed by PHYSICAL rank — virtual nodes share a stream,
            // one of the state-fidelity losses vs EasyScale.
            let mut dropout =
                EsRng::for_stream(self.seed ^ self.step, StreamKey::ranked(StreamKind::Dropout, r));
            let mut acc: Option<Vec<f32>> = None;
            for v in 0..accum {
                let vnode = r * accum + v;
                let batch = self.loader.next_batch(vnode);
                let mut ctx =
                    ExecCtx { profile: self.profile, training: true, dropout: &mut dropout };
                let logits = self.model.forward(&batch.features, &mut ctx);
                let probs = softmax_rows(&logits, &self.profile);
                let (loss, grad_logits) = cross_entropy(&probs, &batch.labels, &self.profile);
                self.model.backward(&grad_logits, &mut ctx);
                losses.push(loss);
                let g = self.model.flat_grads();
                self.model.zero_grads();
                // Sequential accumulation (the VirtualFlow order).
                match &mut acc {
                    None => acc = Some(g),
                    Some(a) => {
                        for (x, y) in a.iter_mut().zip(&g) {
                            *x += y;
                        }
                    }
                }
            }
            self.rank_implicit[r as usize] = self.model.implicit_state();
            let mut g = acc.expect("at least one micro-batch");
            let inv = 1.0 / accum as f32;
            for x in &mut g {
                *x *= inv;
            }
            grads.push(g);
        }
        let avg = self.ddp.allreduce_avg(&grads);
        let params = self.model.flat_params();
        let delta = self.opt.step(&params, &avg, lr);
        self.model.apply_flat_delta(&delta);
        self.step += 1;
        losses.iter().sum::<f32>() / losses.len() as f32
    }

    /// Flat parameters.
    pub fn flat_params(&self) -> Vec<f32> {
        self.model.flat_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyscale::{Engine, Placement};

    #[test]
    fn accumulation_preserves_global_batch() {
        let j = VirtualFlowJob::new(Workload::ResNet18, 3, 8, 2, 256, 4);
        assert_eq!(j.accumulation_steps(), 4);
        let mut j = j;
        j.set_world(8);
        assert_eq!(j.accumulation_steps(), 1);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn world_must_divide_virtual_nodes() {
        VirtualFlowJob::new(Workload::ResNet18, 3, 8, 3, 256, 4);
    }

    #[test]
    fn close_to_ddp_but_not_bitwise() {
        // The VirtualFlow claim: math preserved (loss trajectories close),
        // fidelity not (parameters differ bitwise from the nEST reference).
        let mut vf = VirtualFlowJob::new(Workload::ResNet18, 3, 4, 2, 256, 8);
        let cfg = JobConfig::new(Workload::ResNet18, 3, 4).with_dataset_len(256);
        let lr = cfg.lr.base_lr;
        let mut ddp = Engine::new(cfg, Placement::one_est_per_gpu(4, GpuType::V100));
        let mut max_loss_gap = 0.0f32;
        for _ in 0..6 {
            let a = vf.step(lr);
            let b = ddp.step().mean_loss;
            max_loss_gap = max_loss_gap.max((a - b).abs());
        }
        assert!(max_loss_gap < 0.3, "trajectories stay close: gap {max_loss_gap}");
        assert_ne!(
            vf.flat_params(),
            ddp.flat_params(),
            "but bitwise fidelity is lost (BN stats, RNG keying, ring order)"
        );
    }

    #[test]
    fn scaling_perturbs_the_trajectory() {
        let mut stable = VirtualFlowJob::new(Workload::ResNet18, 3, 8, 4, 256, 4);
        let mut scaled = VirtualFlowJob::new(Workload::ResNet18, 3, 8, 4, 256, 4);
        for i in 0..6 {
            stable.step(0.05);
            if i == 2 {
                scaled.set_world(2);
            }
            if i == 4 {
                scaled.set_world(8);
            }
            scaled.step(0.05);
        }
        assert_ne!(stable.flat_params(), scaled.flat_params());
    }

    #[test]
    fn it_learns() {
        let mut j = VirtualFlowJob::new(Workload::ResNet18, 3, 4, 2, 256, 8);
        let first = j.step(0.05);
        for _ in 0..20 {
            j.step(0.05);
        }
        let last = j.step(0.05);
        assert!(last < first, "{first} → {last}");
    }
}

//! Job-trace generation: Poisson arrivals (Philly-style inter-arrival
//! process) with log-normal runtimes (down-sampled production distribution),
//! workloads drawn from the Table 1 catalog, and power-of-two gang sizes
//! weighted toward small jobs as in the Philly analysis.

use device::GpuType;
use esrng::{EsRng, StreamKey, StreamKind};
use models::{Workload, WORKLOADS};
use sched::JobSpec;
use serde::{Deserialize, Serialize};

/// Trace parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs.
    pub n_jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean inter-arrival time, seconds.
    pub mean_interarrival: f64,
    /// Median job runtime at full gang, seconds.
    pub median_runtime: f64,
    /// Log-normal sigma of the runtime distribution.
    pub runtime_sigma: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            n_jobs: 500,
            seed: 2023,
            mean_interarrival: 135.0,
            median_runtime: 900.0,
            runtime_sigma: 1.4,
        }
    }
}

/// Deterministic trace generator.
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Generator for a config.
    pub fn new(config: TraceConfig) -> Self {
        TraceGenerator { config }
    }

    /// Gang sizes follow the Philly observation: most jobs are small, a few
    /// are large. Weights over {1, 2, 4, 8}.
    fn sample_gang(rng: &mut EsRng) -> u32 {
        let u = rng.uniform_f32();
        if u < 0.40 {
            1
        } else if u < 0.65 {
            2
        } else if u < 0.88 {
            4
        } else {
            8
        }
    }

    fn sample_workload(rng: &mut EsRng) -> Workload {
        WORKLOADS[rng.next_below(WORKLOADS.len() as u32) as usize]
    }

    /// Generate the job list (sorted by arrival).
    pub fn generate(&self) -> Vec<JobSpec> {
        let mut arr_rng =
            EsRng::for_stream(self.config.seed, StreamKey::indexed(StreamKind::User, 0, 10));
        let mut job_rng =
            EsRng::for_stream(self.config.seed, StreamKey::indexed(StreamKind::User, 0, 11));
        let mut t = 0.0f64;
        let mu = self.config.median_runtime.ln();
        (0..self.config.n_jobs)
            .map(|i| {
                // Exponential inter-arrival.
                let u = arr_rng.uniform_f32().max(1e-7) as f64;
                t += -self.config.mean_interarrival * u.ln();
                let workload = Self::sample_workload(&mut job_rng);
                let gang = Self::sample_gang(&mut job_rng);
                // Log-normal runtime at the full requested gang.
                let z = job_rng.normal_f32() as f64;
                let runtime = (mu + self.config.runtime_sigma * z).exp().clamp(60.0, 86_400.0);
                // Work in local mini-batches: at the full gang on the
                // requested type, the job would take `runtime` seconds.
                let spec = workload.spec();
                let cap = spec.capability(GpuType::V100, false);
                let work = runtime * gang as f64 * cap;
                // maxP: DL developers leave elastic headroom beyond the
                // nominal gang (EasyScale can scale the job OUT past its
                // YARN-equivalent request when idle GPUs exist).
                let max_p = (gang * 2).min(16);
                JobSpec {
                    id: i as u64,
                    workload,
                    arrival: t,
                    work,
                    max_p,
                    requested_gpus: gang,
                    requested_type: GpuType::V100,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = TraceGenerator::new(TraceConfig::default()).generate();
        let b = TraceGenerator::new(TraceConfig::default()).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.work, y.work);
            assert_eq!(x.workload.name(), y.workload.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(TraceConfig::default()).generate();
        let b = TraceGenerator::new(TraceConfig { seed: 7, ..TraceConfig::default() }).generate();
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival));
    }

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let jobs = TraceGenerator::new(TraceConfig::default()).generate();
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(jobs[0].arrival > 0.0);
    }

    #[test]
    fn gang_sizes_are_powers_of_two_and_mostly_small() {
        let jobs =
            TraceGenerator::new(TraceConfig { n_jobs: 400, ..Default::default() }).generate();
        assert!(jobs.iter().all(|j| [1, 2, 4, 8].contains(&j.requested_gpus)));
        let small = jobs.iter().filter(|j| j.requested_gpus <= 2).count();
        assert!(small * 2 > jobs.len(), "most jobs are small: {small}/{}", jobs.len());
    }

    #[test]
    fn workload_mix_covers_catalog() {
        let jobs =
            TraceGenerator::new(TraceConfig { n_jobs: 400, ..Default::default() }).generate();
        let distinct: std::collections::HashSet<&str> =
            jobs.iter().map(|j| j.workload.name()).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn runtimes_have_heavy_tail() {
        let jobs =
            TraceGenerator::new(TraceConfig { n_jobs: 400, ..Default::default() }).generate();
        let mut runtimes: Vec<f64> = jobs
            .iter()
            .map(|j| {
                j.work
                    / (j.requested_gpus as f64 * j.workload.spec().capability(GpuType::V100, false))
            })
            .collect();
        runtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = runtimes[runtimes.len() / 2];
        let p95 = runtimes[runtimes.len() * 95 / 100];
        assert!(p95 > 3.0 * median, "log-normal tail: median {median}, p95 {p95}");
    }
}

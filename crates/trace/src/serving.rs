//! The online-serving cluster load curve (Fig 1): a diurnal pattern whose
//! peak-to-trough swing leaves ~2,000 GPUs idle off-peak, plus short demand
//! spikes — the elasticity opportunity EasyScale harvests in §5.3.

use device::GpuType;
use esrng::{EsRng, StreamKey, StreamKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Diurnal serving-load model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingLoad {
    /// Total GPUs the serving side may occupy at peak.
    pub peak_gpus: u32,
    /// GPUs occupied at the quietest hour.
    pub trough_gpus: u32,
    /// Seed for the spike noise.
    pub seed: u64,
    /// Fraction of serving demand placed on V100s (rest splits P100/T4).
    pub v100_share: f64,
}

impl ServingLoad {
    /// The production-cluster curve of Fig 1: peak ≈ 3,000, trough ≈ 1,000
    /// (a ~2,000-GPU idle window).
    pub fn production(seed: u64) -> Self {
        ServingLoad { peak_gpus: 3000, trough_gpus: 1000, seed, v100_share: 0.5 }
    }

    /// A small-cluster curve for tests/examples.
    pub fn small(peak: u32, trough: u32, seed: u64) -> Self {
        ServingLoad { peak_gpus: peak, trough_gpus: trough, seed, v100_share: 0.5 }
    }

    /// Total serving GPUs demanded at time `t` (seconds; day period 86,400):
    /// a raised cosine peaking mid-day, plus deterministic pseudo-random
    /// spikes of up to 10% of the swing.
    pub fn demand(&self, t: f64) -> u32 {
        let day = 86_400.0;
        let phase = (t / day) * std::f64::consts::TAU;
        // Peak at noon (phase π), trough at midnight.
        let base = 0.5 * (1.0 - phase.cos());
        let swing = (self.peak_gpus - self.trough_gpus) as f64;
        // Spike noise: keyed by the 5-minute bucket so it is deterministic.
        let bucket = (t / 300.0) as u64;
        let mut rng = EsRng::for_stream(self.seed, StreamKey::indexed(StreamKind::User, 0, bucket));
        let spike = if rng.bernoulli(0.08) { rng.uniform_f32() as f64 * 0.10 * swing } else { 0.0 };
        (self.trough_gpus as f64 + base * swing + spike).round().min(self.peak_gpus as f64) as u32
    }

    /// Demand split by GPU type at time `t`. Ordered so the scheduler-side
    /// consumers (`sched::sim::ServingCurve`) iterate it reproducibly.
    pub fn demand_by_type(&self, t: f64) -> BTreeMap<GpuType, u32> {
        let total = self.demand(t);
        let v100 = (total as f64 * self.v100_share) as u32;
        let rest = total - v100;
        let p100 = rest / 2;
        let t4 = rest - p100;
        [(GpuType::V100, v100), (GpuType::P100, p100), (GpuType::T4, t4)].into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_stays_in_bounds() {
        let s = ServingLoad::production(1);
        for i in 0..288 {
            let d = s.demand(i as f64 * 300.0);
            assert!(d >= s.trough_gpus && d <= s.peak_gpus, "t={i}: {d}");
        }
    }

    #[test]
    fn peak_to_trough_swing_is_about_2000() {
        let s = ServingLoad::production(1);
        let (mut lo, mut hi) = (u32::MAX, 0);
        for i in 0..288 {
            let d = s.demand(i as f64 * 300.0);
            lo = lo.min(d);
            hi = hi.max(d);
        }
        assert!(hi - lo >= 1800, "Fig 1 swing ≈2000 GPUs, got {}", hi - lo);
    }

    #[test]
    fn noon_is_busier_than_midnight() {
        let s = ServingLoad::production(1);
        assert!(s.demand(43_200.0) > s.demand(0.0) + 1000);
    }

    #[test]
    fn demand_is_deterministic() {
        let s = ServingLoad::production(9);
        assert_eq!(s.demand(12_345.0), s.demand(12_345.0));
    }

    #[test]
    fn by_type_sums_to_total() {
        let s = ServingLoad::production(1);
        for t in [0.0, 10_000.0, 50_000.0] {
            let by = s.demand_by_type(t);
            assert_eq!(by.values().sum::<u32>(), s.demand(t));
        }
    }
}

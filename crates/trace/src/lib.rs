//! Workload traces for the scheduling experiments.
//!
//! §5.2 configures job arrivals "according to Microsoft" (the Philly trace)
//! and down-samples job runtimes from production training jobs; §5.3 and
//! Fig 1 use the diurnal GPU demand of an online model-serving cluster.
//! This crate generates deterministic synthetic equivalents of all three.

#![deny(missing_docs)]

pub mod jobs;
pub mod serving;

pub use jobs::{TraceConfig, TraceGenerator};
pub use serving::ServingLoad;

//! Schema validation for the JSON artifacts CI emits.
//!
//! Several artifact families cross process boundaries in this repo: the
//! bench gate's `BENCH_PR*.json` ([`GateReport`], the only one with a typed
//! deserializer and a back-compat story), detlint's per-mode
//! `results/{taint,concur,accum}_report.json` plus the combined-run
//! `results/detlint_modes.json` and `results/detlint.sarif` (SARIF 2.1.0,
//! the interchange format external viewers consume), and the pipeline's own
//! `results/ci_report.json`. Nothing used to check that the
//! shapes the writers emit are the shapes the readers (bench_trend, the
//! gate, EXPERIMENTS tooling, humans with `jq`) assume — a renamed field
//! would surface as a confusing downstream failure PRs later. These tests
//! pin every schema against committed fixtures (`tests/fixtures/`),
//! including the frozen legacy `GateReport` shapes from before PR 6
//! (no `improvements`) and PR 7 (no `host`) that the manual `Deserialize`
//! must keep parsing, and validate the live `results/` artifacts when
//! present with the same checkers.

use bench::gate::{load_baseline, GateReport, HostFingerprint};
use serde::Value;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn read_value(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let parsed: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    parsed
}

fn field<'v>(v: &'v Value, name: &str, what: &str) -> &'v Value {
    v.get_field(name).unwrap_or_else(|| panic!("{what}: missing field `{name}`"))
}

fn as_seq<'v>(v: &'v Value, what: &str) -> &'v [Value] {
    match v {
        Value::Seq(items) => items,
        other => panic!("{what}: expected array, found {}", other.kind()),
    }
}

fn expect_str(v: &Value, name: &str, what: &str) {
    assert!(field(v, name, what).as_str().is_some(), "{what}: field `{name}` must be a string");
}

fn expect_u64(v: &Value, name: &str, what: &str) {
    assert!(
        matches!(field(v, name, what), Value::U64(_)),
        "{what}: field `{name}` must be a non-negative integer"
    );
}

fn expect_number(v: &Value, name: &str, what: &str) {
    assert!(
        matches!(field(v, name, what), Value::F64(_) | Value::U64(_) | Value::I64(_)),
        "{what}: field `{name}` must be a number"
    );
}

// ---------------------------------------------------------------- GateReport

#[test]
fn pre_pr6_gate_report_fixture_parses_with_defaults() {
    // The frozen pre-PR6 shape (what BENCH_PR3..5.json look like): no
    // `improvements`, no `host`. The manual Deserialize must default both.
    let rep = load_baseline(&fixture("gate_report_pre_pr6.json"))
        .expect("parses")
        .expect("fixture exists");
    assert_eq!(rep.suite, "easyscale-bench-gate");
    assert_eq!(rep.benches.len(), 2);
    assert_eq!(rep.benches[0].name, "companion_plan_16_ests_16_gpus");
    assert!(rep.benches.iter().all(|b| b.median_ns_per_iter > 0.0));
    assert!(rep.improvements.is_empty(), "missing improvements defaults to empty");
    assert_eq!(rep.host, HostFingerprint::unknown(), "missing host defaults to unknown");
}

#[test]
fn pre_pr7_gate_report_fixture_parses_with_unknown_host() {
    // The frozen pre-PR7 shape (BENCH_PR6.json): improvements present,
    // host absent.
    let rep = load_baseline(&fixture("gate_report_pre_pr7.json"))
        .expect("parses")
        .expect("fixture exists");
    assert_eq!(rep.improvements.len(), 1);
    assert_eq!(rep.improvements[0].name, "engine_step_pool_w8");
    assert_eq!(rep.host, HostFingerprint::unknown());
}

#[test]
fn current_gate_report_fixture_parses_in_full() {
    let rep = load_baseline(&fixture("gate_report_current.json"))
        .expect("parses")
        .expect("fixture exists");
    assert_eq!(rep.host.hostname, "vm");
    assert_eq!(rep.host.cores, 1);
    assert_eq!(rep.improvements.len(), 1);
    assert!(rep.improvements[0].ratio < 1.0);
    assert!(rep.benches[0].name.starts_with("kernel_"), "per-kernel benches are in-schema");
}

#[test]
fn gate_report_roundtrips_through_serde() {
    let rep = load_baseline(&fixture("gate_report_current.json"))
        .expect("parses")
        .expect("fixture exists");
    let text = serde_json::to_string(&rep).expect("serializes");
    let back: GateReport = serde_json::from_str(&text).expect("reparses");
    assert_eq!(back.suite, rep.suite);
    assert_eq!(back.host, rep.host);
    assert_eq!(back.benches.len(), rep.benches.len());
    for (a, b) in back.benches.iter().zip(&rep.benches) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.median_ns_per_iter.to_bits(), b.median_ns_per_iter.to_bits());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.iters_per_sample, b.iters_per_sample);
    }
    assert_eq!(back.improvements.len(), rep.improvements.len());
}

// ------------------------------------------------- script/detlint artifacts

/// `results/ci_report.json` (written by `scripts/ci.sh`): pipeline id,
/// mode, per-stage status+seconds, overall status.
fn check_ci_report(v: &Value, what: &str) {
    expect_str(v, "pipeline", what);
    assert_eq!(field(v, "pipeline", what).as_str(), Some("easyscale-ci"));
    let mode = field(v, "mode", what).as_str().expect("mode is a string");
    assert!(mode == "quick" || mode == "full", "{what}: unknown mode {mode}");
    let status = field(v, "status", what).as_str().expect("status is a string");
    assert!(status == "ok" || status == "fail", "{what}: unknown status {status}");
    let stages = as_seq(field(v, "stages", what), what);
    assert!(!stages.is_empty(), "{what}: a report with no stages never ran anything");
    for s in stages {
        expect_str(s, "stage", what);
        let st = field(s, "status", what).as_str().expect("stage status is a string");
        assert!(st == "ok" || st == "fail", "{what}: unknown stage status {st}");
        expect_number(s, "seconds", what);
    }
}

/// `results/taint_report.json` (written by `detlint --taint`): count,
/// flows with source/sink/path witnesses, stale suppressions.
fn check_taint_report(v: &Value, what: &str) {
    expect_u64(v, "count", what);
    let flows = as_seq(field(v, "flows", what), what);
    let Value::U64(count) = field(v, "count", what) else { unreachable!() };
    assert_eq!(*count as usize, flows.len(), "{what}: count must equal flows.len()");
    for f in flows {
        let src = field(f, "source", what);
        expect_str(src, "kind", what);
        expect_str(src, "file", what);
        expect_u64(src, "line", what);
        expect_str(src, "fn", what);
        let sink = field(f, "sink", what);
        expect_str(sink, "kind", what);
        expect_str(sink, "fn", what);
        expect_str(sink, "file", what);
        expect_u64(sink, "line", what);
        let path = as_seq(field(f, "path", what), what);
        assert!(!path.is_empty(), "{what}: a flow without a witness path");
        for hop in path {
            expect_str(hop, "fn", what);
            expect_str(hop, "file", what);
            expect_u64(hop, "line", what);
        }
    }
    for s in as_seq(field(v, "unused_suppressions", what), what) {
        expect_str(s, "file", what);
        expect_u64(s, "line", what);
        expect_str(s, "message", what);
    }
}

/// `results/concur_report.json` (written by `detlint --concurrency`):
/// count, findings/warnings with witness paths, role tallies, blocking-op
/// inventory.
fn check_concur_report(v: &Value, what: &str) {
    expect_u64(v, "count", what);
    let findings = as_seq(field(v, "findings", what), what);
    let Value::U64(count) = field(v, "count", what) else { unreachable!() };
    assert_eq!(*count as usize, findings.len(), "{what}: count must equal findings.len()");
    let check_finding = |f: &Value| {
        expect_str(f, "kind", what);
        expect_str(f, "file", what);
        expect_u64(f, "line", what);
        expect_str(f, "message", what);
        for path in as_seq(field(f, "paths", what), what) {
            for hop in as_seq(path, what) {
                expect_str(hop, "fn", what);
                expect_str(hop, "file", what);
                expect_u64(hop, "line", what);
            }
        }
    };
    findings.iter().for_each(check_finding);
    as_seq(field(v, "warnings", what), what).iter().for_each(check_finding);
    let roles = field(v, "roles", what);
    expect_u64(roles, "worker_fns", what);
    expect_u64(roles, "engine_fns", what);
    for op in as_seq(field(v, "blocking", what), what) {
        expect_str(op, "role", what);
        expect_str(op, "op", what);
        expect_str(op, "fn", what);
        expect_str(op, "file", what);
        expect_u64(op, "line", what);
    }
}

/// `results/accum_report.json` (written by `detlint --accum`): count,
/// findings with span witnesses, the loop inventory, oracle checks, stale
/// suppressions.
fn check_accum_report(v: &Value, what: &str) {
    expect_u64(v, "count", what);
    let findings = as_seq(field(v, "findings", what), what);
    let Value::U64(count) = field(v, "count", what) else { unreachable!() };
    assert_eq!(*count as usize, findings.len(), "{what}: count must equal findings.len()");
    for f in findings {
        let kind = field(f, "kind", what).as_str().expect("kind is a string");
        assert!(
            kind == "float-reassoc" || kind == "oracle-unpaired",
            "{what}: unknown finding kind {kind}"
        );
        expect_str(f, "file", what);
        expect_u64(f, "line", what);
        expect_str(f, "message", what);
        for span in as_seq(field(f, "spans", what), what) {
            expect_str(span, "file", what);
            expect_u64(span, "line", what);
            expect_str(span, "label", what);
        }
    }
    for l in as_seq(field(v, "loops", what), what) {
        expect_str(l, "file", what);
        expect_u64(l, "line", what);
        expect_str(l, "fn", what);
        let class = field(l, "class", what).as_str().expect("class is a string");
        assert!(
            class == "single-chain" || class == "lockstep" || class == "reassoc",
            "{what}: unknown loop class {class}"
        );
        for a in as_seq(field(l, "accumulators", what), what) {
            assert!(a.as_str().is_some(), "{what}: accumulator names are strings");
        }
    }
    for o in as_seq(field(v, "oracles", what), what) {
        expect_str(o, "kernel", what);
        expect_str(o, "file", what);
        expect_u64(o, "line", what);
        assert!(matches!(field(o, "scalar_found", what), Value::Bool(_)));
        assert!(matches!(field(o, "tested_together", what), Value::Bool(_)));
    }
    for s in as_seq(field(v, "unused_suppressions", what), what) {
        expect_str(s, "file", what);
        expect_u64(s, "line", what);
        expect_str(s, "message", what);
    }
}

/// `results/detlint_modes.json` (written by `detlint --all`): the per-mode
/// status breakdown ci.sh reads to keep per-stage granularity after the
/// three detlint stages collapsed into one combined run.
fn check_detlint_modes(v: &Value, what: &str) {
    let status = field(v, "status", what).as_str().expect("status is a string");
    assert!(status == "clean" || status == "dirty", "{what}: unknown status {status}");
    let modes = as_seq(field(v, "modes", what), what);
    let names: Vec<&str> =
        modes.iter().map(|m| field(m, "mode", what).as_str().expect("mode is a string")).collect();
    assert_eq!(names, ["leaf", "taint", "concur", "accum"], "{what}: mode set drifted");
    let mut any_dirty = false;
    for m in modes {
        let st = field(m, "status", what).as_str().expect("mode status is a string");
        assert!(st == "clean" || st == "dirty", "{what}: unknown mode status {st}");
        let Value::U64(findings) = field(m, "findings", what) else {
            panic!("{what}: findings must be a non-negative integer");
        };
        assert_eq!(st == "dirty", *findings > 0, "{what}: status must agree with findings");
        any_dirty |= st == "dirty";
    }
    assert_eq!(status == "dirty", any_dirty, "{what}: overall status must agree with modes");
}

/// `results/detlint.sarif` (written by any mode's `--sarif`): a SARIF
/// 2.1.0 document, one run per analysis mode, each result carrying rule id,
/// severity, message, and at least one physical location.
fn check_sarif(v: &Value, what: &str) {
    assert_eq!(
        field(v, "$schema", what).as_str(),
        Some("https://json.schemastore.org/sarif-2.1.0.json"),
        "{what}: wrong $schema"
    );
    assert_eq!(field(v, "version", what).as_str(), Some("2.1.0"), "{what}: wrong version");
    let runs = as_seq(field(v, "runs", what), what);
    assert!(!runs.is_empty(), "{what}: a SARIF document with no runs");
    let check_location = |loc: &Value| {
        let phys = field(loc, "physicalLocation", what);
        expect_str(field(phys, "artifactLocation", what), "uri", what);
        expect_u64(field(phys, "region", what), "startLine", what);
    };
    for run in runs {
        let driver = field(field(run, "tool", what), "driver", what);
        assert_eq!(field(driver, "name", what).as_str(), Some("detlint"), "{what}: tool name");
        expect_str(driver, "version", what);
        let rules = as_seq(field(driver, "rules", what), what);
        assert!(!rules.is_empty(), "{what}: a run must declare its rule catalog");
        let ids: Vec<&str> = rules
            .iter()
            .map(|r| {
                expect_str(field(r, "shortDescription", what), "text", what);
                field(r, "id", what).as_str().expect("rule id is a string")
            })
            .collect();
        let mode =
            field(field(run, "properties", what), "mode", what).as_str().expect("mode is a string");
        assert!(
            ["leaf", "taint", "concur", "accum"].contains(&mode),
            "{what}: unknown run mode {mode}"
        );
        for res in as_seq(field(run, "results", what), what) {
            let rule_id = field(res, "ruleId", what).as_str().expect("ruleId is a string");
            assert!(ids.contains(&rule_id), "{what}: result cites undeclared rule {rule_id}");
            let level = field(res, "level", what).as_str().expect("level is a string");
            assert!(
                level == "note" || level == "warning" || level == "error",
                "{what}: unknown level {level}"
            );
            expect_str(field(res, "message", what), "text", what);
            let locations = as_seq(field(res, "locations", what), what);
            assert!(!locations.is_empty(), "{what}: a result without a location");
            locations.iter().for_each(check_location);
            if let Some(related) = res.get_field("relatedLocations") {
                for loc in as_seq(related, what) {
                    check_location(loc);
                    expect_str(field(loc, "message", what), "text", what);
                }
            }
        }
    }
}

#[test]
fn ci_report_fixture_is_in_schema() {
    check_ci_report(&read_value(&fixture("ci_report.json")), "fixtures/ci_report.json");
}

#[test]
fn taint_report_fixture_is_in_schema() {
    check_taint_report(&read_value(&fixture("taint_report.json")), "fixtures/taint_report.json");
}

#[test]
fn concur_report_fixture_is_in_schema() {
    check_concur_report(&read_value(&fixture("concur_report.json")), "fixtures/concur_report.json");
}

#[test]
fn accum_report_fixture_is_in_schema() {
    // Generated from the planted accum fixture tree, so the findings, span,
    // loop, and oracle branches of the checker all actually execute.
    let v = read_value(&fixture("accum_report.json"));
    check_accum_report(&v, "fixtures/accum_report.json");
    let Value::U64(count) = field(&v, "count", "fixture") else { unreachable!() };
    assert!(*count > 0, "fixture must carry findings or the checker is half-dead");
}

#[test]
fn detlint_modes_fixture_is_in_schema() {
    check_detlint_modes(&read_value(&fixture("detlint_modes.json")), "fixtures/detlint_modes.json");
}

#[test]
fn sarif_fixture_is_in_schema_and_carries_results() {
    let v = read_value(&fixture("detlint.sarif"));
    check_sarif(&v, "fixtures/detlint.sarif");
    let runs = as_seq(field(&v, "runs", "fixture"), "fixture");
    assert_eq!(runs.len(), 4, "a combined --all document has one run per mode");
    let total: usize =
        runs.iter().map(|r| as_seq(field(r, "results", "fixture"), "fixture").len()).sum();
    assert!(total > 0, "fixture must carry results or the checker is half-dead");
}

#[test]
fn live_results_artifacts_are_in_schema_when_present() {
    // The committed/regenerated artifacts under results/ must satisfy the
    // same schema the fixtures pin — this is the test that catches a writer
    // drifting away from the documented shape. Absent files are skipped
    // (a fresh checkout before any CI run has nothing to validate).
    let results = bench::results_dir();
    for (name, check) in [
        ("ci_report.json", check_ci_report as fn(&Value, &str)),
        ("taint_report.json", check_taint_report as fn(&Value, &str)),
        ("concur_report.json", check_concur_report as fn(&Value, &str)),
        ("accum_report.json", check_accum_report as fn(&Value, &str)),
        ("detlint_modes.json", check_detlint_modes as fn(&Value, &str)),
        ("detlint.sarif", check_sarif as fn(&Value, &str)),
    ] {
        let path = results.join(name);
        if path.exists() {
            check(&read_value(&path), &format!("results/{name}"));
        }
    }
    // Every committed BENCH_PR*.json must keep parsing through the typed
    // back-compat deserializer, whatever era's schema it carries.
    let mut root = results.clone();
    root.pop();
    let mut seen = 0;
    if let Ok(entries) = std::fs::read_dir(&root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if bench::trend::pr_number(&name).is_some() {
                let rep = load_baseline(&entry.path())
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
                    .expect("exists");
                assert!(!rep.benches.is_empty(), "{name}: no benches recorded");
                seen += 1;
            }
        }
    }
    assert!(seen >= 1, "repo root must carry at least one committed BENCH_PR*.json");
}

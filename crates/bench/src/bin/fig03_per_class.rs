//! Figure 3: per-class accuracy of ResNet18/CIFAR10-like training at the
//! final epoch, for TorchElastic and Pollux runs executed with different
//! GPU counts (1/2/4/8).
//!
//! Expected shape: the overall accuracy varies across GPU counts, and the
//! per-class accuracy varies more (the paper reports up to 7.4% / 17.3% max
//! per-class variance for TE / Pollux); EasyScale's per-class accuracies
//! are identical across placements.

use baselines::{PolluxJob, TorchElasticJob};
use data::SyntheticImageDataset;
use device::GpuType;
use easyscale::{Engine, JobConfig, Placement};
use models::Workload;
use optim::StepLr;
use serde::Serialize;

const EPOCHS: usize = 12;
const DATASET: usize = 512;
const BATCH: usize = 8;
const SEED: u64 = 42;

fn schedule() -> StepLr {
    StepLr { base_lr: 0.05, gamma: 0.1, step_epochs: 20 }
}

#[derive(Serialize)]
struct RowOut {
    system: String,
    gpus: u32,
    overall: f64,
    per_class: Vec<f64>,
}

fn run_te(gpus: u32) -> RowOut {
    let mut job =
        TorchElasticJob::new(Workload::ResNet18, SEED, 4, gpus, schedule(), DATASET, BATCH);
    for _ in 0..EPOCHS {
        job.run_epoch();
    }
    let eval = SyntheticImageDataset::eval_split(SEED, DATASET, 512);
    let (overall, per_class) = job.evaluate(&eval, 64);
    RowOut { system: "TE".into(), gpus, overall, per_class }
}

fn run_pollux(gpus: u32) -> RowOut {
    let mut job = PolluxJob::new(Workload::ResNet18, SEED, 4, gpus, schedule(), DATASET, BATCH);
    for _ in 0..EPOCHS {
        job.run_epoch();
    }
    let eval = SyntheticImageDataset::eval_split(SEED, DATASET, 512);
    let (overall, per_class) = job.evaluate(&eval, 64);
    RowOut { system: "Pollux".into(), gpus, overall, per_class }
}

fn run_easyscale(gpus: u32) -> RowOut {
    let cfg = JobConfig::new(Workload::ResNet18, SEED, 4)
        .with_dataset_len(DATASET)
        .with_batch_size(BATCH)
        .with_lr(schedule());
    let mut e = Engine::new(cfg, Placement::homogeneous(4, gpus.min(4), GpuType::V100));
    let steps = EPOCHS as u64 * e.steps_per_epoch();
    e.run(steps);
    let eval = SyntheticImageDataset::eval_split(SEED, DATASET, 512);
    let r = e.evaluate(&eval, 64);
    RowOut { system: "EasyScale".into(), gpus, overall: r.overall, per_class: r.per_class }
}

fn print_block(rows: &[RowOut]) -> (f64, f64) {
    print!("{:<10} {:>4} {:>7}", "system", "gpus", "total");
    for c in 0..10 {
        print!("   C{c}");
    }
    println!();
    for r in rows {
        print!("{:<10} {:>4} {:>7.3}", r.system, r.gpus, r.overall);
        for a in &r.per_class {
            print!(" {:>4.0}", a * 100.0);
        }
        println!();
    }
    // Variance: max spread per class across the GPU-count runs, and overall.
    let overall_spread = rows.iter().map(|r| r.overall).fold(f64::NEG_INFINITY, f64::max)
        - rows.iter().map(|r| r.overall).fold(f64::INFINITY, f64::min);
    let mut max_class_spread = 0.0f64;
    for c in 0..10 {
        let vals: Vec<f64> = rows.iter().map(|r| r.per_class[c]).collect();
        let spread = vals.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
            - vals.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        max_class_spread = max_class_spread.max(spread);
    }
    println!(
        "overall spread: {:.1}%   max per-class spread: {:.1}%\n",
        overall_spread * 100.0,
        max_class_spread * 100.0
    );
    (overall_spread, max_class_spread)
}

fn main() {
    bench::header("Figure 3: per-class accuracy variance across GPU counts (final epoch)");
    let gpu_counts = [1u32, 2, 4, 8];

    println!("\n--- TorchElastic ---");
    let te: Vec<RowOut> = gpu_counts.iter().map(|&g| run_te(g)).collect();
    let (te_overall, te_class) = print_block(&te);

    println!("--- Pollux ---");
    let pollux: Vec<RowOut> = gpu_counts.iter().map(|&g| run_pollux(g)).collect();
    let (_, pollux_class) = print_block(&pollux);

    println!("--- EasyScale (nEST=4, varying physical GPUs) ---");
    let es: Vec<RowOut> = [1u32, 2, 4].iter().map(|&g| run_easyscale(g)).collect();
    let (es_overall, es_class) = print_block(&es);

    assert!(te_class > te_overall, "per-class variance exceeds overall variance");
    assert!(pollux_class > 0.0 && te_class > 0.0, "baselines vary across GPU counts");
    assert_eq!(es_overall, 0.0, "EasyScale overall accuracy identical across placements");
    assert_eq!(es_class, 0.0, "EasyScale per-class accuracy identical across placements");
    println!("shape checks passed: baselines vary per class; EasyScale is placement-invariant.");

    let mut all = te;
    all.extend(pollux);
    all.extend(es);
    bench::write_json("fig03_per_class", &all);
}

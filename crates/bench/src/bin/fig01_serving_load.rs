//! Figure 1: two-day GPU allocation variation of an online serving cluster.
//! The peak-to-trough swing (~2,000 GPUs) is the idle capacity elastic
//! training can harvest.

use serde::Serialize;
use trace::ServingLoad;

#[derive(Serialize)]
struct Point {
    minute: u32,
    allocated_gpus: u32,
}

fn main() {
    bench::header("Figure 1: online serving cluster load variation (2 days)");
    let load = ServingLoad::production(2021);
    let mut series = Vec::new();
    let mut min = u32::MAX;
    let mut max = 0;
    for minute in (0..2 * 1440).step_by(10) {
        let gpus = load.demand(minute as f64 * 60.0);
        min = min.min(gpus);
        max = max.max(gpus);
        series.push(Point { minute, allocated_gpus: gpus });
    }
    // A terminal sparkline of the first day.
    println!("minute    gpus");
    for p in series.iter().step_by(12) {
        let bar = "#".repeat((p.allocated_gpus / 60) as usize);
        println!("{:>6}  {:>5}  {bar}", p.minute, p.allocated_gpus);
    }
    println!("\npeak = {max} GPUs, trough = {min} GPUs, swing = {} GPUs", max - min);
    println!("(paper: difference between idle and peak hours up to ~2,000 GPUs)");
    bench::write_json("fig01_serving_load", &series);
}

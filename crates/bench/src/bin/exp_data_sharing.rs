//! §5.1.2 data-worker sharing: the first-mini-batch latency after an
//! elastic restart, with naive per-EST data workers (ESTs × workers-per-
//! trainer processes) vs EasyScale's shared pool (workers-per-trainer
//! processes total).
//!
//! Expected shape: sharing cuts first-mini-batch time by ~67% at 8 ESTs
//! (the paper reduces 32 spawned workers to 4).

use data::{AugmentConfig, Augmenter, DataWorkerPool, ShardedLoader, SyntheticImageDataset};
use device::PerfModel;
use models::Workload;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    n_ests: u32,
    naive_workers: u32,
    shared_workers: u32,
    naive_first_batch_secs: f64,
    shared_first_batch_secs: f64,
    reduction_pct: f64,
}

const WORKERS_PER_TRAINER: u32 = 4;

fn main() {
    bench::header("§5.1.2: data-worker sharing — first-mini-batch latency after restart");
    let perf = PerfModel::default();
    let mb = Workload::ResNet50.spec().base_v100_secs;
    println!(
        "{:>6} {:>14} {:>15} {:>12} {:>13} {:>10}",
        "nESTs", "naive workers", "shared workers", "naive (s)", "shared (s)", "reduction"
    );
    let mut rows = Vec::new();
    for n_ests in [1u32, 2, 4, 8, 16] {
        let naive_workers = n_ests * WORKERS_PER_TRAINER;
        let shared_workers = WORKERS_PER_TRAINER;
        let naive = perf.first_minibatch_latency(mb, naive_workers);
        let shared = perf.first_minibatch_latency(mb, shared_workers);
        let reduction = (1.0 - shared / naive) * 100.0;
        println!(
            "{:>6} {:>14} {:>15} {:>12.2} {:>13.2} {:>9.1}%",
            n_ests, naive_workers, shared_workers, naive, shared, reduction
        );
        rows.push(Row {
            n_ests,
            naive_workers,
            shared_workers,
            naive_first_batch_secs: naive,
            shared_first_batch_secs: shared,
            reduction_pct: reduction,
        });
    }
    let at8 = rows.iter().find(|r| r.n_ests == 8).unwrap();
    println!(
        "\nat 8 ESTs: {} → {} data workers, first-batch time −{:.1}% (paper: −67.1%, 32 → 4 workers)",
        at8.naive_workers, at8.shared_workers, at8.reduction_pct
    );

    // Functional demonstration: the shared pool really does serve 16 ESTs
    // with 4 workers and byte-identical batches.
    let mk_loader = || {
        ShardedLoader::new(
            Arc::new(SyntheticImageDataset::cifar_like(3, 512)),
            16,
            8,
            99,
            true,
            Some(Augmenter::new(AugmentConfig::default())),
        )
    };
    let mut pool = DataWorkerPool::new(mk_loader(), 4, 2);
    let mut bare = mk_loader();
    for r in 0..16 {
        let a = pool.next_batch(r);
        let b = bare.next_batch(r);
        assert!(a.features.bitwise_eq(&b.features));
    }
    println!("functional check: 16 ESTs served by a 4-worker pool, batches bitwise-identical.");
    bench::write_json("exp_data_sharing", &rows);
}

//! Ablation: the companion module's load-balanced EST assignment vs two
//! naive alternatives — uniform ESTs-per-GPU, and proportional-to-capability
//! rounding. Quantifies how much of the Eq 1 throughput the greedy balancer
//! is responsible for on heterogeneous allocations.

use device::GpuType;
use models::Workload;
use sched::Companion;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    alloc: String,
    balanced: f64,
    uniform: f64,
    proportional: f64,
    balanced_gain_pct: f64,
}

fn main() {
    bench::header("Ablation: EST assignment policy on heterogeneous allocations (maxP = 12)");
    let companion = Companion::for_workload(&Workload::Bert.spec(), 12, true);
    let allocations = vec![
        vec![(GpuType::V100, 1), (GpuType::P100, 1)],
        vec![(GpuType::V100, 2), (GpuType::T4, 2)],
        vec![(GpuType::V100, 1), (GpuType::P100, 2), (GpuType::T4, 2)],
        vec![(GpuType::V100, 3), (GpuType::P100, 3)],
        vec![(GpuType::P100, 2), (GpuType::T4, 4)],
    ];
    println!(
        "{:<30} {:>10} {:>10} {:>13} {:>10}",
        "allocation", "balanced", "uniform", "proportional", "gain"
    );
    let mut rows = Vec::new();
    for alloc in allocations {
        let balanced = companion.plan(&alloc).unwrap().throughput;

        // Uniform: the same A on every type.
        let total_gpus: u32 = alloc.iter().map(|&(_, n)| n).sum();
        let a_uni = 12u32.div_ceil(total_gpus);
        let uniform = companion.evaluate(&alloc, &vec![a_uni; alloc.len()]).throughput;

        // Proportional: A_i ∝ C_i, rounded up (classic static heuristic).
        let total_cap: f64 = alloc.iter().map(|&(ty, n)| n as f64 * companion.capability(ty)).sum();
        let a_prop: Vec<u32> = alloc
            .iter()
            .map(|&(ty, _)| ((12.0 * companion.capability(ty) / total_cap).ceil() as u32).max(1))
            .collect();
        let proportional = companion.evaluate(&alloc, &a_prop).throughput;

        let best_naive = uniform.max(proportional);
        let gain = (balanced / best_naive - 1.0) * 100.0;
        let name: Vec<String> = alloc.iter().map(|(t, n)| format!("{n}x{t}")).collect();
        println!(
            "{:<30} {:>10.2} {:>10.2} {:>13.2} {:>9.1}%",
            name.join("+"),
            balanced,
            uniform,
            proportional,
            gain
        );
        rows.push(Row {
            alloc: name.join("+"),
            balanced,
            uniform,
            proportional,
            balanced_gain_pct: gain,
        });
    }
    assert!(
        rows.iter().all(|r| r.balanced >= r.uniform - 1e-9 && r.balanced >= r.proportional - 1e-9),
        "the balancer must never lose to the naive policies"
    );
    assert!(
        rows.iter().any(|r| r.balanced_gain_pct > 5.0),
        "and must win clearly on at least one heterogeneous mix"
    );
    println!("\nbalanced assignment dominates both naive policies on every mix.");
    bench::write_json("abl_est_balance", &rows);
}

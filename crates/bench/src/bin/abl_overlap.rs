//! Ablation: gradient copy-out overlap.
//!
//! §3.2 overlaps the swapped-out gradient's D2H copy with the next EST's
//! compute. This ablation sweeps the *exposed* (un-overlapped) fraction of
//! the copy through the device performance model to show what the design
//! choice buys: at full exposure (no overlap), an 8-EST worker loses ~10%+
//! throughput for copy-heavy models; with full overlap it loses none.

use device::PerfModel;
use models::{Workload, WORKLOADS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    exposed_frac: f64,
    throughput_rel: f64,
}

/// Per-model copy weight: the gradient bytes relative to a mini-batch's
/// compute time determine how much an exposed copy hurts.
fn copy_frac(w: Workload) -> f64 {
    let s = w.spec();
    // D2H at ~12 GB/s effective.
    let copy_secs = s.footprint.gradients as f64 / 12e9;
    copy_secs / s.base_v100_secs
}

fn main() {
    bench::header("Ablation: gradient copy-out overlap (8 ESTs per worker)");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "Model", "copy/mb", "overlap=1.0", "overlap=0.5", "overlap=0.0"
    );
    let mut rows = Vec::new();
    for w in WORKLOADS {
        let cf = copy_frac(w);
        let mut line = format!("{:<16} {:>9.1}%", w.name(), cf * 100.0);
        let full = {
            let m = PerfModel { grad_copy_exposed_frac: 0.0, ..PerfModel::default() };
            m.easyscale_throughput(w.spec().base_v100_secs, 8)
        };
        for exposed in [0.0f64, 0.5, 1.0] {
            let m = PerfModel { grad_copy_exposed_frac: exposed * cf, ..PerfModel::default() };
            let thr = m.easyscale_throughput(w.spec().base_v100_secs, 8);
            let rel = thr / full;
            line.push_str(&format!(" {:>12.3}", rel));
            rows.push(Row { model: w.name(), exposed_frac: exposed, throughput_rel: rel });
        }
        println!("{line}");
    }
    let worst_no_overlap = rows
        .iter()
        .filter(|r| r.exposed_frac == 1.0)
        .map(|r| r.throughput_rel)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nwithout overlap the worst model loses {:.1}% throughput; with overlap, 0%",
        (1.0 - worst_no_overlap) * 100.0
    );
    assert!(worst_no_overlap < 0.97, "the overlap must matter for at least one model");
    bench::write_json("abl_overlap", &rows);
}

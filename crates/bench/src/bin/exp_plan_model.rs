//! Equation 1 in action: the companion module's plan database for one job
//! across candidate allocations — EST assignments, overload factor, waste,
//! and estimated throughput.

use device::GpuType;
use models::Workload;
use sched::Companion;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    alloc: String,
    a: Vec<u32>,
    n_est: u32,
    f_overload: f64,
    waste: f64,
    throughput: f64,
}

fn main() {
    bench::header("Eq 1: companion plan model (Bert proxy, maxP = 8, D2 kernels)");
    let spec = Workload::Bert.spec();
    let companion = Companion::for_workload(&spec, 8, true);
    println!(
        "caps: V100 {:.2} | P100 {:.2} | T4 {:.2} mini-batches/s",
        companion.capability(GpuType::V100),
        companion.capability(GpuType::P100),
        companion.capability(GpuType::T4)
    );
    let candidates = vec![
        vec![(GpuType::V100, 1)],
        vec![(GpuType::V100, 2)],
        vec![(GpuType::V100, 4)],
        vec![(GpuType::V100, 8)],
        vec![(GpuType::P100, 2)],
        vec![(GpuType::P100, 4)],
        vec![(GpuType::T4, 4)],
        vec![(GpuType::V100, 2), (GpuType::P100, 2)],
        vec![(GpuType::V100, 2), (GpuType::T4, 4)],
        vec![(GpuType::V100, 1), (GpuType::P100, 2), (GpuType::T4, 2)],
    ];
    println!(
        "{:<28} {:>12} {:>6} {:>10} {:>8} {:>12}",
        "allocation", "A per type", "nEST", "f_ovl (s)", "waste", "throughput"
    );
    let mut rows = Vec::new();
    for alloc in candidates {
        let plan = companion.plan(&alloc).unwrap();
        let name = alloc.iter().map(|(t, n)| format!("{n}x{t}")).collect::<Vec<_>>().join(" + ");
        println!(
            "{:<28} {:>12} {:>6} {:>10.3} {:>8.2} {:>12.2}",
            name,
            format!("{:?}", plan.a),
            plan.n_est,
            plan.f_overload,
            plan.waste,
            plan.throughput
        );
        // The Eq 1 identity holds for every plan.
        assert!((plan.throughput - 8.0 / plan.f_overload).abs() < 1e-6);
        rows.push(Row {
            alloc: name,
            a: plan.a,
            n_est: plan.n_est,
            f_overload: plan.f_overload,
            waste: plan.waste,
            throughput: plan.throughput,
        });
    }
    println!("\ninvariant verified: throughput = maxP / f_overload for every plan.");
    bench::write_json("exp_plan_model", &rows);
}

//! Figure 14: average JCT and makespan of YARN-CS vs EasyScale-homo vs
//! EasyScale-heter on the 64-GPU trace cluster.
//!
//! Expected shape (paper): EasyScale-homo improves average JCT ~8.3× and
//! makespan ~2.5× over YARN-CS; EasyScale-heter improves ~13.2× and ~2.8×.
//! Exact factors depend on the trace; the ordering and order of magnitude
//! are the reproduced claims.

use device::ClusterSpec;
use sched::{ClusterSim, Policy};
use serde::Serialize;
use trace::{TraceConfig, TraceGenerator};

#[derive(Serialize)]
struct PolicyResult {
    policy: String,
    avg_jct_secs: f64,
    makespan_secs: f64,
    jct_speedup_vs_yarn: f64,
    makespan_speedup_vs_yarn: f64,
    avg_training_gpus: f64,
}

fn main() {
    bench::header("Figure 14: avg JCT and makespan — YARN-CS vs EasyScale (64-GPU cluster)");
    let cluster = ClusterSpec::paper_trace_cluster();
    let jobs = TraceGenerator::new(TraceConfig::default()).generate();
    println!("trace: {} jobs over ~{:.1} h", jobs.len(), jobs.last().unwrap().arrival / 3600.0);

    let policies = [
        ("YARN-CS", Policy::YarnCapacity),
        ("EasyScale_homo", Policy::EasyScaleHomo),
        ("EasyScale_heter", Policy::EasyScaleHeter),
    ];
    let mut outcomes = Vec::new();
    for (name, policy) in policies {
        let out = ClusterSim::new(&cluster, jobs.clone(), policy).run();
        outcomes.push((name, out));
    }
    let yarn_jct = outcomes[0].1.avg_jct;
    let yarn_mk = outcomes[0].1.makespan;

    println!(
        "\n{:<18} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "policy", "avg JCT (s)", "makespan(s)", "JCT spdup", "mkspn spdup", "avg GPUs"
    );
    let mut results = Vec::new();
    for (name, out) in &outcomes {
        let r = PolicyResult {
            policy: name.to_string(),
            avg_jct_secs: out.avg_jct,
            makespan_secs: out.makespan,
            jct_speedup_vs_yarn: yarn_jct / out.avg_jct,
            makespan_speedup_vs_yarn: yarn_mk / out.makespan,
            avg_training_gpus: out.avg_training_gpus(),
        };
        println!(
            "{:<18} {:>12.0} {:>12.0} {:>9.1}x {:>11.1}x {:>10.1}",
            r.policy,
            r.avg_jct_secs,
            r.makespan_secs,
            r.jct_speedup_vs_yarn,
            r.makespan_speedup_vs_yarn,
            r.avg_training_gpus
        );
        results.push(r);
    }

    // Shape checks mirroring the paper's ordering claims.
    assert!(
        results[1].jct_speedup_vs_yarn > 2.0,
        "EasyScale_homo must improve JCT substantially over YARN-CS"
    );
    assert!(
        results[2].jct_speedup_vs_yarn >= results[1].jct_speedup_vs_yarn,
        "heterogeneity must not hurt JCT"
    );
    assert!(results[1].makespan_speedup_vs_yarn > 1.2, "makespan improves under elasticity");
    assert!(
        results[2].avg_training_gpus >= results[1].avg_training_gpus,
        "heter uses at least as many GPUs as homo"
    );
    println!("\nshape checks passed: EasyScale ≫ YARN-CS on JCT and makespan; heter ≥ homo.");
    println!("(paper: homo 8.3x JCT / 2.5x makespan; heter 13.2x / 2.8x)");
    bench::write_json("fig14_trace_jct", &results);
}

//! Figure 13: overhead of gradient copy and synchronization under the EST
//! abstraction — 8 ESTs time-sliced on one GPU vs DDP with 8 workers.
//!
//! ESTs 0–6 pay the gradient copy-out at each context switch; EST 7
//! additionally triggers the global gradient synchronization. Expected
//! shape: per-EST times normalized to a DDP worker stay ≤ ~1: the copy is
//! cheap/overlappable, and when EST 7 reaches the sync every other replica's
//! gradient is already resident, so the sync never waits on a straggler.

use comm::ElasticDdp;
use device::GpuType;
use easyscale::{EasyScaleWorker, JobConfig, Slot};
use models::WORKLOADS;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    /// Mean wall time of ESTs 0..7 on the shared worker, normalized to a
    /// DDP worker's local step + its share of the sync.
    est_normalized: Vec<f64>,
    ddp_step_us: f64,
    sync_us: f64,
}

fn main() {
    bench::header("Figure 13: gradient copy & sync overhead (8 ESTs on 1 GPU vs DDP on 8 GPUs)");
    println!(
        "{:<16} {:>12} {:>12}  per-EST normalized time (EST0..EST7)",
        "Model", "DDP us", "sync us"
    );
    let mut rows = Vec::new();
    for w in WORKLOADS {
        let cfg = JobConfig::new(w, 7, 8).with_dataset_len(512);

        // Shared worker: 8 ESTs on one V100.
        let mut shared =
            EasyScaleWorker::new(&cfg, &Slot { gpu: GpuType::V100, vranks: (0..8).collect() });
        for _ in 0..3 {
            shared.run_local_steps_opts(true); // warm-up
        }
        let reps = 15;
        let mut samples: Vec<Vec<f64>> = (0..8).map(|_| Vec::with_capacity(reps)).collect();
        let mut grads: Vec<Vec<f32>> = Vec::new();
        for _ in 0..reps {
            for (i, (step, d)) in shared.run_local_steps_opts(true).into_iter().enumerate() {
                samples[i].push(d.as_secs_f64() * 1e6);
                if grads.len() < 8 {
                    grads.push(step.grad);
                }
            }
        }
        // Median per EST: robust to scheduler noise on µs-scale steps.
        let est_times: Vec<f64> = samples
            .iter_mut()
            .map(|v| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            })
            .collect();

        // DDP reference: one EST per worker; median per worker, averaged.
        let mut ddp_time = 0.0;
        for r in 0..8u32 {
            let mut ddp = EasyScaleWorker::new(&cfg, &Slot { gpu: GpuType::V100, vranks: vec![r] });
            for _ in 0..3 {
                ddp.run_local_steps_opts(true);
            }
            let mut t: Vec<f64> = (0..reps)
                .map(|_| ddp.run_local_steps_opts(true)[0].1.as_secs_f64() * 1e6)
                .collect();
            t.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ddp_time += t[t.len() / 2];
        }
        ddp_time /= 8.0;

        // Gradient synchronization cost (the all-reduce EST 7 triggers).
        let sizes = shared.model().param_sizes();
        let ddp_comm = ElasticDdp::new(&sizes, 8, cfg.bucket_cap_bytes);
        let t0 = std::time::Instant::now();
        let sync_reps = 20;
        for _ in 0..sync_reps {
            std::hint::black_box(ddp_comm.allreduce_avg(&grads));
        }
        let sync_us = t0.elapsed().as_secs_f64() * 1e6 / sync_reps as f64;

        let denom = ddp_time + sync_us;
        let normalized: Vec<f64> = est_times
            .iter()
            .enumerate()
            .map(|(i, &t)| if i == 7 { (t + sync_us) / denom } else { t / denom })
            .collect();
        print!("{:<16} {:>12.1} {:>12.1}  ", w.name(), ddp_time, sync_us);
        for n in &normalized {
            print!("{n:>6.2}");
        }
        println!();
        rows.push(Row {
            model: w.name(),
            est_normalized: normalized,
            ddp_step_us: ddp_time,
            sync_us,
        });
    }
    let worst =
        rows.iter().flat_map(|r| r.est_normalized.iter()).fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    println!(
        "\nworst per-EST normalized time: {worst:.2} (paper: EST execution competitive with DDP)"
    );
    bench::write_json("fig13_grad_copy", &rows);
}

//! Figure 16: one-day co-location statistics on a production-scale cluster
//! (3,000+ GPUs). Day 1: serving only (pre-EasyScale). Day 2: elastic
//! EasyScale training jobs opportunistically fill the idle GPUs, scaling in
//! within seconds when serving demand spikes.
//!
//! Expected shape (paper): allocation ratio +17.1%, average GPU (SM)
//! utilization +62.1%, hundreds of preemptions, zero failed training jobs.

use device::{ClusterSpec, GpuType};

use sched::{ClusterSim, JobSpec, Policy};
use serde::Serialize;
use trace::ServingLoad;

/// SM utilization of a GPU occupied by inference serving (bursty, low).
const SERVING_UTIL: f64 = 0.30;
/// SM utilization of a GPU running EasyScale training (dense compute).
const TRAINING_UTIL: f64 = 0.92;

#[derive(Serialize)]
struct DayStats {
    day: &'static str,
    alloc_ratio: f64,
    avg_sm_util: f64,
    avg_training_gpus: f64,
    preemptions: usize,
    failures: u64,
}

fn training_jobs(n: usize) -> Vec<JobSpec> {
    // A standing backlog of long elastic jobs (mixed CV/NLP, per §5.3),
    // arriving in the first hour, enough aggregate work to keep idle GPUs
    // busy all day.
    (0..n)
        .map(|i| {
            let workload = models::WORKLOADS[i % 8];
            let cap = workload.spec().capability(GpuType::V100, false);
            JobSpec {
                id: i as u64,
                workload,
                arrival: (i as f64) * 30.0,
                work: cap * 16.0 * 86_400.0 * 2.0, // outlasts the full day
                max_p: 16,
                requested_gpus: 8,
                requested_type: GpuType::V100,
            }
        })
        .collect()
}

fn main() {
    bench::header("Figure 16: one-day co-location on a 3,000+ GPU production cluster");
    let cluster = ClusterSpec::production_cluster();
    let total = cluster.gpu_count() as f64;
    let load = ServingLoad::production(2021);

    // Day 1: serving only. Sample the curve directly.
    let samples = 288; // 5-minute buckets
    let mut serving_sum = 0.0;
    for i in 0..samples {
        serving_sum += load.demand(i as f64 * 300.0) as f64;
    }
    let day1_alloc = serving_sum / samples as f64 / total;
    let day1_util = day1_alloc * SERVING_UTIL;
    let day1 = DayStats {
        day: "day-1 (serving only)",
        alloc_ratio: day1_alloc,
        avg_sm_util: day1_util,
        avg_training_gpus: 0.0,
        preemptions: 0,
        failures: 0,
    };

    // Day 2: EasyScale jobs fill the idle GPUs.
    let load2 = ServingLoad::production(2021);
    let sim = ClusterSim::new(&cluster, training_jobs(160), Policy::EasyScaleHeter)
        .with_serving(move |t| load2.demand_by_type(t));
    let out = sim.run();
    assert!(out.makespan > 86_400.0, "training backlog must outlast the measured day");
    let horizon = 86_400.0;
    // Time-averaged stats over the first day of the simulation.
    let mut train_sum = 0.0;
    let mut serve_sum = 0.0;
    let mut span = 0.0;
    for w in out.timeline.windows(2) {
        if w[0].t >= horizon {
            break;
        }
        let dt = w[1].t.min(horizon) - w[0].t;
        train_sum += w[0].training_gpus as f64 * dt;
        serve_sum += w[0].serving_gpus as f64 * dt;
        span += dt;
    }
    let avg_train = train_sum / span;
    let avg_serve = serve_sum / span;
    let day2_alloc = (avg_train + avg_serve) / total;
    let day2_util = (avg_train * TRAINING_UTIL + avg_serve * SERVING_UTIL) / total;
    let day2 = DayStats {
        day: "day-2 (with EasyScale)",
        alloc_ratio: day2_alloc,
        avg_sm_util: day2_util,
        avg_training_gpus: avg_train,
        preemptions: out.preemptions.len(),
        failures: out.failures,
    };

    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "", "alloc ratio", "SM util", "train GPUs", "preemptions", "failures"
    );
    for d in [&day1, &day2] {
        println!(
            "{:<26} {:>11.1}% {:>11.1}% {:>12.0} {:>12} {:>9}",
            d.day,
            d.alloc_ratio * 100.0,
            d.avg_sm_util * 100.0,
            d.avg_training_gpus,
            d.preemptions,
            d.failures
        );
    }
    let alloc_gain = (day2.alloc_ratio - day1.alloc_ratio) * 100.0;
    let util_gain = (day2.avg_sm_util / day1.avg_sm_util - 1.0) * 100.0;
    println!(
        "\nallocation ratio +{alloc_gain:.1} points (paper: +17.1%), SM utilization +{util_gain:.1}% relative (paper: +62.1%)"
    );
    println!(
        "preemptions: {} (paper: 362), training-job failures: {} (paper: 0), scale-in latency: one event tick (seconds)",
        day2.preemptions, day2.failures
    );
    assert!(day2.alloc_ratio > day1.alloc_ratio + 0.08, "allocation must rise substantially");
    assert!(util_gain > 30.0, "utilization must rise substantially");
    assert_eq!(day2.failures, 0);
    println!("shape checks passed.");
    bench::write_json("fig16_colocation", &[day1, day2]);
}

//! Figure 11: the cost of lightweight context switching — wall time of one
//! local step per EST with and without the context switch (implicit-state
//! swap + RNG capture), per workload.
//!
//! Expected shape: overhead ≤ ~2% (the paper's maximum is 1.9% on Electra),
//! because the EST context is tiny relative to the forward/backward work.

use device::GpuType;
use easyscale::{EasyScaleWorker, JobConfig, Slot};
use models::WORKLOADS;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    with_switch_us: f64,
    without_switch_us: f64,
    overhead_pct: f64,
}

/// Measure both configurations with interleaved rounds (so clock-frequency
/// drift hits both equally) and report (median with, median without).
fn measure(workload: models::Workload) -> (f64, f64) {
    let cfg = JobConfig::new(workload, 7, 8).with_dataset_len(2048).with_batch_size(32);
    let slot = Slot { gpu: GpuType::V100, vranks: (0..8).collect() };
    let mut with = EasyScaleWorker::new(&cfg, &slot);
    let mut without = EasyScaleWorker::new(&cfg, &slot);
    for _ in 0..2 {
        with.run_local_steps_opts(true);
        without.run_local_steps_opts(false);
    }
    let mut s_with: Vec<f64> = Vec::new();
    let mut s_without: Vec<f64> = Vec::new();
    for _ in 0..16 {
        for (_, d) in with.run_local_steps_opts(true) {
            s_with.push(d.as_secs_f64() * 1e6);
        }
        for (_, d) in without.run_local_steps_opts(false) {
            s_without.push(d.as_secs_f64() * 1e6);
        }
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    (med(&mut s_with), med(&mut s_without))
}

fn main() {
    bench::header("Figure 11: lightweight context switching overhead");
    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "Model", "w/ switch (us)", "w/o switch (us)", "overhead"
    );
    let mut rows = Vec::new();
    for w in WORKLOADS {
        let (with, without) = measure(w);
        let overhead = (with / without - 1.0) * 100.0;
        println!("{:<16} {:>16.1} {:>16.1} {:>9.2}%", w.name(), with, without, overhead);
        rows.push(Row {
            model: w.name(),
            with_switch_us: with,
            without_switch_us: without,
            overhead_pct: overhead,
        });
    }
    let max = rows.iter().map(|r| r.overhead_pct).fold(f64::NEG_INFINITY, f64::max);
    println!("\nmax context-switch overhead: {max:.2}% (paper: ≤1.9%)");
    bench::write_json("fig11_ctx_switch", &rows);
}

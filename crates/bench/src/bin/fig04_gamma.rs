//! Figure 4: how the learning-rate decay factor `gamma` shows up in the
//! training loss — clearly ordered under fixed-resource DDP, obscured by
//! oscillations under Pollux with different GPU counts.
//!
//! DDP runs train on fixed 4 GPUs with gamma ∈ {0.1, 0.3, 0.5}; Pollux runs
//! use gamma 0.1/0.3/0.5 on 1/2/4 GPUs with mid-training re-scales. The
//! decay boundary is pulled in (every 3 epochs) so the effect is visible in
//! a short run.

use baselines::spmd::{SpmdConfig, SpmdTrainer};
use baselines::PolluxJob;
use models::Workload;
use optim::{LrSchedule, StepLr};
use serde::Serialize;

const EPOCHS: usize = 9;
const DATASET: usize = 512;
const BATCH: usize = 8;
const SEED: u64 = 42;

fn schedule(gamma: f32) -> StepLr {
    StepLr { base_lr: 0.08, gamma, step_epochs: 3 }
}

#[derive(Serialize)]
struct Curve {
    name: String,
    loss_per_epoch: Vec<f32>,
}

fn ddp(gamma: f32) -> Curve {
    let mut t = SpmdTrainer::new(
        SpmdConfig::new(Workload::ResNet50, SEED, 4)
            .with_dataset_len(DATASET)
            .with_batch_size(BATCH),
    );
    let sched = schedule(gamma);
    let mut losses = Vec::new();
    for e in 0..EPOCHS {
        let mut sum = 0.0;
        for _ in 0..t.steps_per_epoch() {
            sum += t.step(sched.lr(e as u64));
        }
        losses.push(sum / t.steps_per_epoch() as f32);
    }
    Curve { name: format!("DDP-4GPU-{gamma}"), loss_per_epoch: losses }
}

fn pollux(gamma: f32, gpus: u32) -> Curve {
    let mut job =
        PolluxJob::new(Workload::ResNet50, SEED, 4, gpus, schedule(gamma), DATASET, BATCH);
    let mut losses = Vec::new();
    for e in 0..EPOCHS {
        // Pollux re-scales as the cluster fluctuates: bounce the world.
        let w = [gpus, (gpus * 2).min(8), gpus.max(1)][e % 3];
        job.set_world(w);
        let mut sum = 0.0;
        let steps = 8usize;
        for _ in 0..steps {
            sum += job.step();
        }
        losses.push(sum / steps as f32);
    }
    Curve { name: format!("Pollux-{gpus}GPU-{gamma}"), loss_per_epoch: losses }
}

/// Kendall-style monotonicity score of the final-epoch losses w.r.t. gamma:
/// with a visible gamma effect, smaller gamma (faster decay) freezes the
/// model earlier, so late-training loss curves separate consistently.
fn separation(curves: &[Curve]) -> f64 {
    // Mean absolute difference of late-epoch losses between adjacent gammas,
    // normalized by within-curve late-epoch jitter.
    let late = |c: &Curve| -> f32 {
        let n = c.loss_per_epoch.len();
        c.loss_per_epoch[n - 3..].iter().sum::<f32>() / 3.0
    };
    let jitter = |c: &Curve| -> f32 {
        let n = c.loss_per_epoch.len();
        let tail = &c.loss_per_epoch[n - 3..];
        let m = tail.iter().sum::<f32>() / 3.0;
        tail.iter().map(|x| (x - m).abs()).sum::<f32>() / 3.0
    };
    let mut sep = 0.0f64;
    let mut jit = 0.0f64;
    for w in curves.windows(2) {
        sep += (late(&w[0]) - late(&w[1])).abs() as f64;
        jit += (jitter(&w[0]) + jitter(&w[1])) as f64 / 2.0;
    }
    sep / jit.max(1e-9)
}

fn main() {
    bench::header("Figure 4: train loss under different gamma — DDP vs Pollux");
    let gammas = [0.1f32, 0.3, 0.5];

    let ddp_curves: Vec<Curve> = gammas.iter().map(|&g| ddp(g)).collect();
    let pollux_curves: Vec<Curve> =
        gammas.iter().zip([1u32, 2, 4]).map(|(&g, w)| pollux(g, w)).collect();

    print!("{:<20}", "epoch");
    for e in 1..=EPOCHS {
        print!("{e:>8}");
    }
    println!();
    for c in ddp_curves.iter().chain(&pollux_curves) {
        print!("{:<20}", c.name);
        for l in &c.loss_per_epoch {
            print!("{l:>8.4}");
        }
        println!();
    }

    let ddp_sep = separation(&ddp_curves);
    let pollux_sep = separation(&pollux_curves);
    println!("\ngamma separation score (higher = clearer trend): DDP {ddp_sep:.2}, Pollux {pollux_sep:.2}");
    assert!(
        ddp_sep > pollux_sep,
        "fixed-resource DDP must show the gamma effect more clearly than elastic Pollux"
    );
    println!("shape check passed: the gamma trend is legible under DDP and obscured under Pollux.");

    let mut all = ddp_curves;
    all.extend(pollux_curves);
    bench::write_json("fig04_gamma", &all);
}

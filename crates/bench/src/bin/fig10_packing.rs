//! Figure 10: peak GPU memory and training throughput of EasyScale vs
//! Gandiva-style worker packing, for 1..16 workers on a 32 GB V100.
//!
//! Expected shape: packing memory grows linearly and OOMs past 8 workers
//! (ResNet50) / past 2 workers (ShuffleNetV2 at batch 512); EasyScale memory
//! is flat; packing throughput peaks ≈1.11× EasyScale's.

use baselines::PackingSim;
use device::GpuType;
use models::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workers: u32,
    packing_mem_gib: Option<f64>,
    easyscale_mem_gib: f64,
    packing_throughput: Option<f64>,
    easyscale_throughput: f64,
}

#[derive(Serialize)]
struct Series {
    model: &'static str,
    rows: Vec<Row>,
    packing_oom_at: u64,
}

const GIB: f64 = (1u64 << 30) as f64;

fn run(workload: Workload) -> Series {
    let sim = PackingSim::new(&workload.spec(), GpuType::V100);
    let oom_at = sim.max_packed_workers() + 1;
    println!("\n--- {} (V100 32 GB) ---", workload.name());
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "workers", "pack mem GiB", "ES mem GiB", "pack thr", "ES thr"
    );
    let mut rows = Vec::new();
    for n in 1..=16u32 {
        let packed = sim.try_pack(n as u64).ok().map(|b| b as f64 / GIB);
        let es = sim.easyscale_memory(n as u64) as f64 / GIB;
        let pt = packed.is_some().then(|| sim.packed_throughput(n));
        let et = sim.easyscale_throughput(n);
        println!(
            "{:>8} {:>14} {:>14.2} {:>12} {:>12.3}",
            n,
            packed.map(|m| format!("{m:.2}")).unwrap_or_else(|| "OOM".into()),
            es,
            pt.map(|t| format!("{t:.3}")).unwrap_or_else(|| "OOM".into()),
            et
        );
        rows.push(Row {
            workers: n,
            packing_mem_gib: packed,
            easyscale_mem_gib: es,
            packing_throughput: pt,
            easyscale_throughput: et,
        });
    }
    println!(
        "packing OOMs at {oom_at} workers; EasyScale memory flat at {:.2} GiB",
        rows[15].easyscale_mem_gib
    );
    Series { model: workload.name(), rows, packing_oom_at: oom_at }
}

fn main() {
    bench::header("Figure 10: GPU memory and throughput, EasyScale vs worker packing");
    let out = vec![run(Workload::ResNet50), run(Workload::ShuffleNetV2)];
    let ratio = {
        let sim = PackingSim::new(&Workload::ResNet50.spec(), GpuType::V100);
        sim.packed_throughput(8) / sim.easyscale_throughput(8)
    };
    println!("\npacking concurrency bonus at 8 workers: {ratio:.3}x (paper: 1.11x)");
    bench::write_json("fig10_packing", &out);
}

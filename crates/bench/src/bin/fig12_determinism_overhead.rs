//! Figure 12: per-iteration overhead of ensuring accuracy-consistency, per
//! workload and GPU type. D1 (elastic determinism on homogeneous GPUs) is
//! ≈free; D1+D2 (heterogeneous determinism) costs ~236% on average for the
//! conv-kernel models and <1% for the attention/embedding models.
//!
//! Substitution note (DESIGN.md): on real GPUs the D2 cost comes from
//! disabling vendor conv kernels; our CPU kernels cannot reproduce that
//! ratio physically, so the slowdown comes from each workload's calibrated
//! `d2_overhead` factor through the device performance model.

use device::{GpuType, PerfModel};
use models::WORKLOADS;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    gpu: &'static str,
    baseline: f64,
    d1_normalized: f64,
    d1_d2_normalized: f64,
}

fn main() {
    bench::header("Figure 12: overhead of ensuring accuracy-consistency (normalized time)");
    let perf = PerfModel::default();
    println!("{:<16} {:>6} {:>10} {:>10} {:>10}", "Model", "GPU", "baseline", "D1", "D1+D2");
    let mut rows = Vec::new();
    let mut conv_overheads = Vec::new();
    for w in WORKLOADS {
        let s = w.spec();
        for gpu in GpuType::ALL {
            let base = perf.minibatch_time(s.base_v100_secs, gpu, 1.0);
            // D1: deterministic vendor kernels — negligible cost (the paper
            // measures <1%); we charge the context-switch-free determinism
            // bookkeeping at 0.3%.
            let d1 = base * 1.003;
            // D1+D2: hardware-agnostic kernels; the catalog's d2_overhead
            // already encodes ~1.0 for non-conv models.
            let d2_factor = s.d2_overhead;
            let d1d2 = perf.minibatch_time(s.base_v100_secs, gpu, d2_factor) * 1.003;
            println!(
                "{:<16} {:>6} {:>10.4} {:>10.3} {:>10.3}",
                w.name(),
                gpu.name(),
                base,
                d1 / base,
                d1d2 / base
            );
            rows.push(Row {
                model: w.name(),
                gpu: gpu.name(),
                baseline: base,
                d1_normalized: d1 / base,
                d1_d2_normalized: d1d2 / base,
            });
        }
        if s.conv_dependent {
            conv_overheads.push(s.d2_overhead - 1.0);
        }
    }
    let avg = conv_overheads.iter().sum::<f64>() / conv_overheads.len() as f64;
    println!("\naverage D2 overhead on conv models: {:.0}% (paper: 236%)", avg * 100.0);
    println!("attention/embedding models stay <1% under D1+D2 and may use heterogeneous GPUs.");
    bench::write_json("fig12_determinism_overhead", &rows);
}

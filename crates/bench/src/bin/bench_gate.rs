//! bench_gate: fixed micro-benchmarks with a JSON regression gate.
//!
//! The criterion shim prints means for humans; CI needs machine-readable
//! medians it can diff across PRs. This binary times a small, fixed set of
//! scheduler and all-reduce micro-benches (median ns/iter over many
//! samples — the median shrugs off scheduler noise a mean soaks up), writes
//! them as JSON, and — given a baseline file from an earlier PR — fails
//! when any bench regressed past the threshold.
//!
//! ```text
//! bench_gate --out BENCH_PR7.json [--baseline BENCH_PR6.json] [--threshold 1.15]
//! ```
//!
//! The gate is two-sided: besides failing on regressions, medians that
//! *beat* the baseline by the same margin are printed as wins and recorded
//! in the output JSON's `improvements` array (see `bench::gate`).
//!
//! Exit status: 1 when a bench exceeds `baseline * threshold`, 2 on usage
//! errors. Benches present in only one of the two files are reported but
//! never gate (the set is allowed to grow).

use std::time::Instant;

use bench::gate::{
    improvements, load_baseline, regressions, BenchResult, GateReport, HostFingerprint,
};
use comm::ElasticDdp;
use device::GpuType;
use easyscale::{Engine, ExecMode, ExecOptions, JobConfig, Placement};
use models::Workload;
use sched::{Companion, IntraJobScheduler};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Median ns/iter of `samples` timed samples of `iters` iterations each,
/// after `warmup` untimed iterations.
fn measure<F: FnMut()>(samples: u32, iters: u32, warmup: u32, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_iter[per_iter.len() / 2]
}

fn grads(vworld: u32, n: usize) -> Vec<Vec<f32>> {
    (0..vworld).map(|r| (0..n).map(|i| ((i + r as usize) as f32 * 0.7).sin()).collect()).collect()
}

fn run_suite() -> Vec<BenchResult> {
    let mut out = Vec::new();
    let mut record = |name: &str, iters: u32, median: f64| {
        eprintln!("  {name:<40} {median:>12.1} ns/iter");
        out.push(BenchResult {
            name: name.to_string(),
            median_ns_per_iter: median,
            samples: SAMPLES,
            iters_per_sample: iters,
        });
    };
    const SAMPLES: u32 = 31;

    // Mirror benches/scheduler.rs: Eq 1 plan evaluation on a mixed cluster.
    let companion = Companion::for_workload(&Workload::Bert.spec(), 16, true);
    let alloc = vec![(GpuType::V100, 4), (GpuType::P100, 4), (GpuType::T4, 8)];
    record(
        "companion_plan_16_ests_16_gpus",
        200,
        measure(SAMPLES, 200, 50, || {
            black_box(companion.plan(black_box(&alloc)));
        }),
    );

    // Role-2 proposal generation against a full free pool.
    let companion = Companion::for_workload(&Workload::ResNet50.spec(), 16, false);
    let mut sched = IntraJobScheduler::new(0, companion, false);
    sched.apply_allocation(vec![(GpuType::V100, 2)]);
    let free: BTreeMap<GpuType, u32> =
        [(GpuType::V100, 16), (GpuType::P100, 16), (GpuType::T4, 16)].into_iter().collect();
    record(
        "intra_job_proposals",
        200,
        measure(SAMPLES, 200, 50, || {
            black_box(sched.proposals(black_box(&free), 3));
        }),
    );

    // Mirror benches/allreduce.rs: ring all-reduce, 4 virtual ranks, 16k
    // params.
    let sizes = vec![1000usize; 16];
    let ddp = ElasticDdp::new(&sizes, 4, 8192);
    let gr = grads(4, 16_000);
    record(
        "allreduce_vworld4_16k",
        20,
        measure(SAMPLES, 20, 5, || {
            black_box(ddp.allreduce_avg(black_box(&gr)));
        }),
    );

    // Same payload under a small bucket cap (many buckets: stresses the
    // bucketing machinery rather than the reduction).
    let sizes = vec![500usize; 32];
    let ddp = ElasticDdp::new(&sizes, 4, 512);
    let gr = grads(4, 16_000);
    record(
        "allreduce_bucket_cap_512",
        20,
        measure(SAMPLES, 20, 5, || {
            black_box(ddp.allreduce_avg(black_box(&gr)));
        }),
    );

    // One full global step, persistent pool vs per-step scoped threads —
    // the PR6 claim: reusing worker threads beats respawning W of them
    // every step, and the margin grows with W. Identical job, identical
    // placement; only the execution backend differs (and the math is
    // bitwise identical, see faultsim/tests/nthread_eq_single.rs).
    for workers in [4u32, 8] {
        let step_engine = |mode: ExecMode| {
            let cfg = JobConfig::new(Workload::NeuMF, 7, workers)
                .with_dataset_len(512)
                .with_batch_size(1);
            let exec = ExecOptions { mode, device_ids: (0..workers).collect() };
            let mut e =
                Engine::new_opts(cfg, Placement::one_est_per_gpu(workers, GpuType::V100), exec);
            e.step(); // warm: first step rebuilds the bucket layout
            e
        };
        for (mode, tag) in [(ExecMode::Pool, "pool"), (ExecMode::Scoped, "scoped")] {
            let mut e = step_engine(mode);
            record(
                &format!("engine_step_{tag}_w{workers}"),
                10,
                measure(SAMPLES, 10, 3, || {
                    black_box(e.step());
                }),
            );
        }
    }

    out
}

fn usage() -> ! {
    eprintln!("usage: bench_gate --out PATH [--baseline PATH] [--threshold FLOAT]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold: f64 = 1.15;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out_path = Some(take(&mut i)),
            "--baseline" => baseline_path = Some(take(&mut i)),
            "--threshold" => threshold = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    let out_path = out_path.unwrap_or_else(|| usage());

    eprintln!("bench_gate: running the fixed suite");
    let mut report = GateReport {
        suite: "easyscale-bench-gate".to_string(),
        benches: run_suite(),
        improvements: Vec::new(),
        host: HostFingerprint::detect(),
    };

    // A missing baseline is the normal first-PR state, not an error: warn
    // and pass. A corrupt baseline is an error.
    let baseline = match &baseline_path {
        None => None,
        Some(p) => match load_baseline(std::path::Path::new(p)) {
            Ok(Some(b)) => Some(b),
            Ok(None) => {
                eprintln!(
                    "bench_gate: warning: baseline {p} does not exist; \
                     skipping the gate (recording {out_path} for the next PR)"
                );
                None
            }
            Err(e) => panic!("{e}"),
        },
    };
    if let Some(base) = &baseline {
        // Recorded *into* the report, so the BENCH_*.json a PR ships is
        // machine-readable evidence of the speedups it claims.
        report.improvements = improvements(&report, base, threshold);
        // Cross-box comparisons are how PR 6 chased a phantom regression:
        // absolute medians from different hosts are not comparable. Warn
        // loudly, but keep gating — within-file ratios still mean something
        // and CI has no second box to ask.
        if let Some(diff) = report.host.mismatch(&base.host) {
            eprintln!(
                "bench_gate: ================ HOST MISMATCH ================\n\
                 bench_gate: baseline and candidate were recorded on DIFFERENT machines;\n\
                 bench_gate: absolute medians are NOT comparable — trust within-file ratios only.\n\
                 bench_gate: {diff}\n\
                 bench_gate: ==============================================="
            );
        }
    }

    std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("report json"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("bench_gate: wrote {out_path}");

    let Some(baseline) = baseline else {
        if baseline_path.is_none() {
            eprintln!("bench_gate: no baseline given; gate passes trivially");
        }
        return;
    };
    let baseline_name = baseline_path
        .as_deref()
        .map(|p| p.rsplit('/').next().unwrap_or(p).to_string())
        .unwrap_or_default();

    // The wins/regressions table: every bench, two-sided verdict.
    let mut wins = 0u32;
    for cur in &report.benches {
        match baseline.benches.iter().find(|b| b.name == cur.name) {
            Some(base) => {
                let ratio = cur.median_ns_per_iter / base.median_ns_per_iter;
                let verdict = if ratio > threshold {
                    "REGRESSED"
                } else if ratio < 1.0 / threshold {
                    wins += 1;
                    "improved"
                } else {
                    "ok"
                };
                eprintln!("  {:<40} {ratio:>7.3}x vs {baseline_name} ({verdict})", cur.name);
            }
            None => eprintln!("  {:<40} (new bench; not gated)", cur.name),
        }
    }
    let regressed = regressions(&report, &baseline, threshold);
    eprintln!(
        "bench_gate: {wins} win(s) past 1/{threshold}x, {} regression(s) past {threshold}x",
        regressed.len()
    );
    if !regressed.is_empty() {
        eprintln!("bench_gate: regressed bench(es): {}", regressed.join(", "));
        std::process::exit(1);
    }
}
